#include "datalog/parser.h"

#include <cctype>
#include <optional>
#include <vector>

#include "base/string_util.h"

namespace mdqa::datalog {

namespace {

enum class TokKind {
  kIdent,    // bare identifier (variable or constant by capitalization)
  kString,   // quoted string constant
  kNumber,   // numeric constant
  kLParen,
  kRParen,
  kComma,    // ',' and ';' both map here
  kPeriod,
  kArrow,    // ':-' or '<-'
  kBang,     // '!' (constraint head)
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kEnd,
};

struct Token {
  TokKind kind;
  std::string text;
  int line;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    while (true) {
      SkipSpaceAndComments();
      if (pos_ >= text_.size()) break;
      char c = text_[pos_];
      if (c == '(') {
        out.push_back(Make(TokKind::kLParen, "("));
      } else if (c == ')') {
        out.push_back(Make(TokKind::kRParen, ")"));
      } else if (c == ',' || c == ';') {
        out.push_back(Make(TokKind::kComma, ","));
      } else if (c == '.') {
        out.push_back(Make(TokKind::kPeriod, "."));
      } else if (c == '!') {
        if (Peek(1) == '=') {
          out.push_back(Make(TokKind::kNe, "!=", 2));
        } else {
          out.push_back(Make(TokKind::kBang, "!"));
        }
      } else if (c == ':' && Peek(1) == '-') {
        out.push_back(Make(TokKind::kArrow, ":-", 2));
      } else if (c == '<' && Peek(1) == '-') {
        out.push_back(Make(TokKind::kArrow, "<-", 2));
      } else if (c == '<') {
        if (Peek(1) == '=') {
          out.push_back(Make(TokKind::kLe, "<=", 2));
        } else {
          out.push_back(Make(TokKind::kLt, "<"));
        }
      } else if (c == '>') {
        if (Peek(1) == '=') {
          out.push_back(Make(TokKind::kGe, ">=", 2));
        } else {
          out.push_back(Make(TokKind::kGt, ">"));
        }
      } else if (c == '=') {
        out.push_back(Make(TokKind::kEq, "="));
      } else if (c == '"') {
        MDQA_ASSIGN_OR_RETURN(Token t, LexString());
        out.push_back(std::move(t));
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 ((c == '-' || c == '+') &&
                  std::isdigit(static_cast<unsigned char>(Peek(1))))) {
        out.push_back(LexNumber());
      } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        out.push_back(LexIdent());
      } else {
        return Status::InvalidArgument("unexpected character '" +
                                       std::string(1, c) + "' at line " +
                                       std::to_string(line_));
      }
    }
    out.push_back(Token{TokKind::kEnd, "", line_});
    return out;
  }

 private:
  char Peek(size_t ahead) const {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }

  Token Make(TokKind kind, std::string text, size_t advance = 1) {
    pos_ += advance;
    return Token{kind, std::move(text), line_};
  }

  void SkipSpaceAndComments() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '%' || c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  Result<Token> LexString() {
    int start_line = line_;
    ++pos_;  // opening quote
    std::string s;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_];
      if (c == '\\' && pos_ + 1 < text_.size()) {
        ++pos_;
        c = text_[pos_];
      }
      if (c == '\n') ++line_;
      s.push_back(c);
      ++pos_;
    }
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("unterminated string starting at line " +
                                     std::to_string(start_line));
    }
    ++pos_;  // closing quote
    return Token{TokKind::kString, std::move(s), start_line};
  }

  Token LexNumber() {
    size_t start = pos_;
    if (text_[pos_] == '-' || text_[pos_] == '+') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.')) {
      // A '.' ends the number if not followed by a digit (statement period).
      if (text_[pos_] == '.' &&
          !(pos_ + 1 < text_.size() &&
            std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])))) {
        break;
      }
      ++pos_;
    }
    return Token{TokKind::kNumber, std::string(text_.substr(start, pos_ - start)),
                 line_};
  }

  Token LexIdent() {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    return Token{TokKind::kIdent, std::string(text_.substr(start, pos_ - start)),
                 line_};
  }

  std::string_view text_;
  size_t pos_ = 0;
  int line_ = 1;
};

bool IsVariableName(const std::string& name) {
  return !name.empty() &&
         (std::isupper(static_cast<unsigned char>(name[0])) || name[0] == '_');
}

class ParserImpl {
 public:
  ParserImpl(std::vector<Token> tokens, Vocabulary* vocab)
      : tokens_(std::move(tokens)), vocab_(vocab) {}

  Status ParseStatements(Program* program) {
    while (Cur().kind != TokKind::kEnd) {
      MDQA_RETURN_IF_ERROR(ParseStatement(program));
    }
    return Status::Ok();
  }

  Result<ConjunctiveQuery> ParseSingleQuery() {
    ConjunctiveQuery q;
    if (Cur().kind != TokKind::kIdent) {
      return Status::InvalidArgument(ErrHere("query must start with a name"));
    }
    q.name = Cur().text;
    Advance();
    MDQA_RETURN_IF_ERROR(Expect(TokKind::kLParen, "query head '('"));
    if (Cur().kind != TokKind::kRParen) {
      while (true) {
        MDQA_ASSIGN_OR_RETURN(Term t, ParseTerm());
        q.answer.push_back(t);
        if (Cur().kind != TokKind::kComma) break;
        Advance();
      }
    }
    MDQA_RETURN_IF_ERROR(Expect(TokKind::kRParen, "query head ')'"));
    MDQA_RETURN_IF_ERROR(Expect(TokKind::kArrow, "':-' after query head"));
    MDQA_RETURN_IF_ERROR(ParseBody(&q.body, &q.negated, &q.comparisons));
    if (Cur().kind == TokKind::kPeriod) Advance();
    if (Cur().kind != TokKind::kEnd) {
      return Status::InvalidArgument(ErrHere("trailing input after query"));
    }
    MDQA_RETURN_IF_ERROR(q.Validate());
    return q;
  }

  Result<Atom> ParseSingleGroundAtom() {
    MDQA_ASSIGN_OR_RETURN(Atom a, ParseAtom());
    if (Cur().kind == TokKind::kPeriod) Advance();
    if (Cur().kind != TokKind::kEnd) {
      return Status::InvalidArgument(ErrHere("trailing input after atom"));
    }
    if (!a.IsGround()) {
      return Status::InvalidArgument("atom is not ground: " +
                                     vocab_->AtomToString(a));
    }
    return a;
  }

 private:
  const Token& Cur() const { return tokens_[idx_]; }
  const Token& Next() const {
    return tokens_[idx_ + 1 < tokens_.size() ? idx_ + 1 : idx_];
  }
  void Advance() {
    if (idx_ + 1 < tokens_.size()) ++idx_;
  }

  std::string ErrHere(const std::string& what) const {
    return what + " (line " + std::to_string(Cur().line) + ", near '" +
           Cur().text + "')";
  }

  Status Expect(TokKind kind, const std::string& what) {
    if (Cur().kind != kind) {
      return Status::InvalidArgument(ErrHere("expected " + what));
    }
    Advance();
    return Status::Ok();
  }

  Result<Term> ParseTerm() {
    const Token& t = Cur();
    switch (t.kind) {
      case TokKind::kString:
        Advance();
        return vocab_->Const(Value::Str(t.text));
      case TokKind::kNumber:
        Advance();
        return vocab_->Const(Value::FromText(t.text));
      case TokKind::kIdent: {
        Advance();
        if (t.text == "_") {
          return vocab_->FreshVariable();
        }
        // `_n<k>` is the reserved spelling of labeled null ⊥_k (what
        // TermToString prints), so instances round-trip through text.
        if (t.text.size() > 2 && t.text[0] == '_' && t.text[1] == 'n') {
          bool digits = true;
          for (size_t i = 2; i < t.text.size(); ++i) {
            if (!std::isdigit(static_cast<unsigned char>(t.text[i]))) {
              digits = false;
              break;
            }
          }
          if (digits) {
            uint32_t id =
                static_cast<uint32_t>(std::stoul(t.text.substr(2)));
            vocab_->ReserveNullsThrough(id);
            return Term::Null(id);
          }
        }
        if (IsVariableName(t.text)) {
          return vocab_->Var(t.text);
        }
        return vocab_->Const(Value::Str(t.text));
      }
      default:
        return Status::InvalidArgument(ErrHere("expected a term"));
    }
  }

  Result<Atom> ParseAtom() {
    if (Cur().kind != TokKind::kIdent) {
      return Status::InvalidArgument(ErrHere("expected a predicate name"));
    }
    std::string pred_name = Cur().text;
    Advance();
    MDQA_RETURN_IF_ERROR(
        Expect(TokKind::kLParen, "'(' after predicate " + pred_name));
    std::vector<Term> terms;
    if (Cur().kind != TokKind::kRParen) {
      while (true) {
        MDQA_ASSIGN_OR_RETURN(Term t, ParseTerm());
        terms.push_back(t);
        if (Cur().kind != TokKind::kComma) break;
        Advance();
      }
    }
    MDQA_RETURN_IF_ERROR(
        Expect(TokKind::kRParen, "')' closing " + pred_name));
    MDQA_ASSIGN_OR_RETURN(uint32_t pred,
                          vocab_->InternPredicate(pred_name, terms.size()));
    return Atom(pred, std::move(terms));
  }

  static std::optional<CmpOp> AsCmpOp(TokKind kind) {
    switch (kind) {
      case TokKind::kEq:
        return CmpOp::kEq;
      case TokKind::kNe:
        return CmpOp::kNe;
      case TokKind::kLt:
        return CmpOp::kLt;
      case TokKind::kLe:
        return CmpOp::kLe;
      case TokKind::kGt:
        return CmpOp::kGt;
      case TokKind::kGe:
        return CmpOp::kGe;
      default:
        return std::nullopt;
    }
  }

  Status ParseBody(std::vector<Atom>* atoms, std::vector<Atom>* negated,
                   std::vector<Comparison>* comparisons) {
    while (true) {
      // A body literal is `Pred(...)`, `not Pred(...)`, or `term op term`.
      if (Cur().kind == TokKind::kIdent && Cur().text == "not" &&
          Next().kind == TokKind::kIdent) {
        Advance();  // 'not'
        MDQA_ASSIGN_OR_RETURN(Atom a, ParseAtom());
        negated->push_back(std::move(a));
      } else if (Cur().kind == TokKind::kIdent &&
                 Next().kind == TokKind::kLParen) {
        MDQA_ASSIGN_OR_RETURN(Atom a, ParseAtom());
        atoms->push_back(std::move(a));
      } else {
        MDQA_ASSIGN_OR_RETURN(Term lhs, ParseTerm());
        std::optional<CmpOp> op = AsCmpOp(Cur().kind);
        if (!op.has_value()) {
          return Status::InvalidArgument(
              ErrHere("expected a comparison operator"));
        }
        Advance();
        MDQA_ASSIGN_OR_RETURN(Term rhs, ParseTerm());
        comparisons->push_back(Comparison{*op, lhs, rhs});
      }
      if (Cur().kind == TokKind::kComma) {
        Advance();
        continue;
      }
      break;
    }
    if (atoms->empty()) {
      return Status::InvalidArgument(
          ErrHere("body must contain at least one relational atom"));
    }
    return Status::Ok();
  }

  // One statement: fact, TGD, EGD, or constraint, ending with '.'.
  Status ParseStatement(Program* program) {
    // Constraint: `! :- body.`
    if (Cur().kind == TokKind::kBang) {
      Advance();
      MDQA_RETURN_IF_ERROR(Expect(TokKind::kArrow, "':-' after '!'"));
      Rule r;
      r.kind = RuleKind::kConstraint;
      MDQA_RETURN_IF_ERROR(ParseBody(&r.body, &r.negated, &r.comparisons));
      MDQA_RETURN_IF_ERROR(Expect(TokKind::kPeriod, "'.' ending constraint"));
      return program->AddRule(std::move(r));
    }

    // EGD: `X = Y :- body.` — head is `term = term` then arrow.
    if ((Cur().kind == TokKind::kIdent || Cur().kind == TokKind::kString ||
         Cur().kind == TokKind::kNumber) &&
        Next().kind == TokKind::kEq) {
      MDQA_ASSIGN_OR_RETURN(Term lhs, ParseTerm());
      Advance();  // '='
      MDQA_ASSIGN_OR_RETURN(Term rhs, ParseTerm());
      MDQA_RETURN_IF_ERROR(Expect(TokKind::kArrow, "':-' after EGD head"));
      Rule r;
      r.kind = RuleKind::kEgd;
      r.egd_lhs = lhs;
      r.egd_rhs = rhs;
      MDQA_RETURN_IF_ERROR(ParseBody(&r.body, &r.negated, &r.comparisons));
      MDQA_RETURN_IF_ERROR(Expect(TokKind::kPeriod, "'.' ending EGD"));
      return program->AddRule(std::move(r));
    }

    // Fact or TGD: one or more head atoms.
    std::vector<Atom> head;
    while (true) {
      MDQA_ASSIGN_OR_RETURN(Atom a, ParseAtom());
      head.push_back(std::move(a));
      if (Cur().kind == TokKind::kComma) {
        Advance();
        continue;
      }
      break;
    }
    if (Cur().kind == TokKind::kPeriod) {
      Advance();
      for (Atom& a : head) {
        MDQA_RETURN_IF_ERROR(program->AddFact(std::move(a)));
      }
      return Status::Ok();
    }
    MDQA_RETURN_IF_ERROR(Expect(TokKind::kArrow, "':-' or '.' after head"));
    Rule r;
    r.kind = RuleKind::kTgd;
    r.head = std::move(head);
    MDQA_RETURN_IF_ERROR(ParseBody(&r.body, &r.negated, &r.comparisons));
    MDQA_RETURN_IF_ERROR(Expect(TokKind::kPeriod, "'.' ending rule"));
    return program->AddRule(std::move(r));
  }

  std::vector<Token> tokens_;
  size_t idx_ = 0;
  Vocabulary* vocab_;
};

}  // namespace

Result<Program> Parser::ParseProgram(std::string_view text) {
  Program program;
  MDQA_RETURN_IF_ERROR(ParseInto(text, &program));
  return program;
}

Status Parser::ParseInto(std::string_view text, Program* program) {
  Lexer lexer(text);
  MDQA_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  ParserImpl impl(std::move(tokens), program->mutable_vocab());
  return impl.ParseStatements(program);
}

Result<ConjunctiveQuery> Parser::ParseQuery(std::string_view text,
                                            Vocabulary* vocab) {
  Lexer lexer(text);
  MDQA_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  ParserImpl impl(std::move(tokens), vocab);
  return impl.ParseSingleQuery();
}

Result<Atom> Parser::ParseGroundAtom(std::string_view text,
                                     Vocabulary* vocab) {
  Lexer lexer(text);
  MDQA_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  ParserImpl impl(std::move(tokens), vocab);
  return impl.ParseSingleGroundAtom();
}

}  // namespace mdqa::datalog
