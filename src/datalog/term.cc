#include "datalog/term.h"

namespace mdqa::datalog {

// Term is fully inline; this TU anchors the header for the build graph.

}  // namespace mdqa::datalog
