#ifndef MDQA_DATALOG_JOIN_H_
#define MDQA_DATALOG_JOIN_H_

#include <functional>
#include <vector>

#include "base/budget.h"
#include "base/result.h"
#include "datalog/cq_eval.h"
#include "datalog/instance.h"
#include "datalog/unify.h"

namespace mdqa::datalog {

/// Vectorized (block-at-a-time) conjunctive-body join executor over
/// columnar fact tables — the engine behind `CqEvaluator` for
/// whole-relation enumerations (empty initial bindings) when the
/// instance uses `StorageMode::kColumnar`. Seeded point lookups stay on
/// the backtracking path: their per-run work cannot amortize the plan
/// compilation this executor performs up front (see the dispatch note
/// in cq_eval.cc).
///
/// The executor compiles the body once — atom order, per-position roles
/// (constant / bound slot / new slot / intra-atom repeat), and the depth
/// at which each comparison and negated atom first becomes decidable —
/// then pushes *blocks* of partial bindings through the pipeline. Each
/// depth resolves its candidates per binding from the segments'
/// dictionary postings (driver = the most selective bound position,
/// other bound positions verified by 4-byte code comparison), or, when
/// the incoming block is large relative to the table, from a batch hash
/// index built once over the in-window rows keyed on the bound-position
/// tuple — with full term verification of every bucket hit, since the
/// combined 64-bit keys can collide.
///
/// Order contract: the legacy backtracking evaluator's enumeration order
/// is a branch-independent function of (initial bindings, table sizes) —
/// its greedy atom choice never depends on candidate values, and its
/// candidate lists are always ascending row order. The executor fixes the
/// same atom order up front and emits candidates ascending per binding
/// (depth-first chunk flushes preserve lexicographic order), so
/// solutions, `EvalStats` counters, budget charging on the postings
/// path, and therefore every downstream artifact (Answers first-derived
/// order, EGD merge order, AssessmentReports) are identical to the row
/// store's. The row-vs-columnar differential harness
/// (tests/columnar_diff_test.cc) gates this byte-for-byte.
class BlockJoin {
 public:
  BlockJoin(const Instance& instance, EvalStats* stats,
            ExecutionBudget* budget)
      : instance_(instance), stats_(stats), budget_(budget) {}

  /// True when the executor reproduces the legacy enumeration for the
  /// given initial substitution: every binding must resolve to a ground
  /// term (variable-to-variable chains from two-way unification fall
  /// back to the backtracking path).
  static bool Supports(const Subst& initial);

  /// Same contract as CqEvaluator::Enumerate (which validates `windows`
  /// and performs the up-front budget poll before dispatching here).
  Status Run(const std::vector<Atom>& atoms, const std::vector<Atom>& negated,
             const std::vector<Comparison>& comparisons, const Subst& initial,
             const std::vector<AtomLevelWindow>& windows,
             const std::function<bool(const Subst&)>& on_match);

 private:
  const Instance& instance_;
  EvalStats* stats_;         // optional, not owned
  ExecutionBudget* budget_;  // optional, not owned
};

}  // namespace mdqa::datalog

#endif  // MDQA_DATALOG_JOIN_H_
