#include "datalog/containment.h"

#include "datalog/unify.h"

namespace mdqa::datalog {

namespace {

// One-way mapping of q2 terms onto q1 terms: q2 variables bind
// functionally; ground terms must be identical. q1's terms are treated
// as frozen constants (they are never substituted).
bool MapTerm(Term from, Term to, Subst* h, std::vector<uint32_t>* trail) {
  if (from.IsVariable()) {
    auto it = h->find(from.id());
    if (it != h->end()) return it->second == to;
    h->emplace(from.id(), to);
    trail->push_back(from.id());
    return true;
  }
  return from == to;
}

struct SearchState {
  const ConjunctiveQuery* q1;
  const ConjunctiveQuery* q2;
  const Vocabulary* vocab;
  Subst h;
  std::vector<uint32_t> trail;
};

bool ComparisonsJustified(const SearchState& s) {
  for (const Comparison& c : s.q2->comparisons) {
    Term lhs = Resolve(s.h, c.lhs);
    Term rhs = Resolve(s.h, c.rhs);
    if (lhs.IsGround() && rhs.IsGround()) {
      if (EvalComparison(*s.vocab, c.op, lhs, rhs)) continue;
      return false;
    }
    bool found = false;
    for (const Comparison& c1 : s.q1->comparisons) {
      if (c1.op == c.op && c1.lhs == lhs && c1.rhs == rhs) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

bool MapAtoms(SearchState* s, size_t idx) {
  if (idx == s->q2->body.size()) return ComparisonsJustified(*s);
  const Atom& pattern = s->q2->body[idx];
  for (const Atom& target : s->q1->body) {
    if (target.predicate != pattern.predicate ||
        target.arity() != pattern.arity()) {
      continue;
    }
    size_t mark = s->trail.size();
    bool ok = true;
    for (size_t i = 0; i < pattern.terms.size(); ++i) {
      if (!MapTerm(pattern.terms[i], target.terms[i], &s->h, &s->trail)) {
        ok = false;
        break;
      }
    }
    if (ok && MapAtoms(s, idx + 1)) return true;
    UndoTrail(&s->h, &s->trail, mark);
  }
  return false;
}

}  // namespace

bool ContainedIn(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2,
                 const Vocabulary& vocab) {
  if (q1.HasNegation() || q2.HasNegation()) return false;  // conservative
  if (q1.answer.size() != q2.answer.size()) return false;
  SearchState s;
  s.q1 = &q1;
  s.q2 = &q2;
  s.vocab = &vocab;
  // The containment mapping must send q2's answer tuple to q1's.
  for (size_t i = 0; i < q1.answer.size(); ++i) {
    if (!MapTerm(q2.answer[i], q1.answer[i], &s.h, &s.trail)) return false;
  }
  return MapAtoms(&s, 0);
}

ConjunctiveQuery MinimizeQuery(ConjunctiveQuery query,
                               const Vocabulary& vocab) {
  if (query.HasNegation()) return query;  // conservative
  bool changed = true;
  while (changed && query.body.size() > 1) {
    changed = false;
    for (size_t i = 0; i < query.body.size(); ++i) {
      ConjunctiveQuery reduced = query;
      reduced.body.erase(reduced.body.begin() + static_cast<long>(i));
      if (!reduced.Validate().ok()) continue;  // would unbind a variable
      if (ContainedIn(reduced, query, vocab)) {
        query = std::move(reduced);
        changed = true;
        break;
      }
    }
  }
  return query;
}

std::vector<ConjunctiveQuery> MinimizeUcq(std::vector<ConjunctiveQuery> ucq,
                                          const Vocabulary& vocab) {
  std::vector<bool> dropped(ucq.size(), false);
  for (size_t i = 0; i < ucq.size(); ++i) {
    if (dropped[i]) continue;
    for (size_t j = 0; j < ucq.size(); ++j) {
      if (i == j || dropped[j] || dropped[i]) continue;
      if (ContainedIn(ucq[i], ucq[j], vocab)) {
        // q_i's answers are already covered by q_j. Tie-break when the
        // containment is mutual: keep the earlier one.
        if (ContainedIn(ucq[j], ucq[i], vocab) && j > i) {
          dropped[j] = true;
        } else {
          dropped[i] = true;
        }
      }
    }
  }
  std::vector<ConjunctiveQuery> out;
  for (size_t i = 0; i < ucq.size(); ++i) {
    if (!dropped[i]) out.push_back(std::move(ucq[i]));
  }
  return out;
}

}  // namespace mdqa::datalog
