#ifndef MDQA_DATALOG_WHYNOT_H_
#define MDQA_DATALOG_WHYNOT_H_

#include <string>
#include <vector>

#include "base/result.h"
#include "datalog/instance.h"

namespace mdqa::datalog {

/// One attempted derivation path in a why-not diagnosis: a rule whose
/// head unifies with the missing atom, the number of body atoms (in rule
/// order) that *can* be matched jointly under the head bindings, and the
/// first body atom that cannot.
struct FailedDerivation {
  std::string rule;            ///< printed rule
  size_t satisfied_prefix = 0; ///< body atoms jointly satisfiable
  std::string blocking_atom;   ///< instantiated first unsatisfiable atom
                               ///< (empty if the body holds but the head
                               ///< instantiation clashed — cannot happen
                               ///< for absent atoms)
};

struct WhyNotReport {
  bool present = false;  ///< the atom was in the instance after all
  std::vector<FailedDerivation> attempts;

  /// Human-readable rendering.
  std::string ToString() const;
};

/// Best-effort diagnosis of why ground `atom` is absent from the
/// (typically chased) `instance`: for every TGD of `program` whose head
/// unifies with it, finds the longest prefix of the (head-instantiated)
/// body that is jointly satisfiable and names the first body atom that
/// blocks — the missing link in the dimensional navigation or quality
/// condition. Atoms whose predicate heads no rule yield an empty attempt
/// list (purely extensional absence).
Result<WhyNotReport> ExplainAbsence(const Program& program,
                                    const Instance& instance,
                                    const Atom& atom);

}  // namespace mdqa::datalog

#endif  // MDQA_DATALOG_WHYNOT_H_
