#ifndef MDQA_DATALOG_CHASE_H_
#define MDQA_DATALOG_CHASE_H_

#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "base/budget.h"
#include "base/result.h"
#include "base/thread_pool.h"
#include "datalog/cq_eval.h"
#include "datalog/instance.h"

namespace mdqa::datalog {

class ProgramAnalysis;

/// How equality-generating dependencies participate in the chase.
enum class EgdMode {
  kOff,          ///< ignore EGDs entirely
  kPost,         ///< apply EGDs to fixpoint after the TGD chase (valid for
                 ///< separable programs, where EGD and TGD application
                 ///< commute — the paper's Section III condition)
  kInterleaved,  ///< apply EGDs to fixpoint after every TGD round (general)
};

struct ChaseOptions {
  /// Upper bound on chase rounds. A fact's derivation level is the round
  /// that created it (extensional facts are level 0), so this doubles as
  /// the level bound of the level-bounded chase used for weakly-sticky
  /// query answering.
  uint64_t max_rounds = 1'000'000;
  /// Abort (kResourceExhausted) when the instance outgrows this.
  uint64_t max_facts = 10'000'000;
  EgdMode egd_mode = EgdMode::kInterleaved;
  /// Evaluate negative constraints after the chase; a violation makes the
  /// run fail with kInconsistent and a witness.
  bool check_constraints = true;
  /// Use semi-naive (delta) evaluation. Naive mode exists for testing and
  /// as a benchmark ablation.
  bool semi_naive = true;
  /// Restricted chase (default): a trigger fires only when its head is
  /// not already satisfied. Setting this false gives the
  /// *semi-oblivious* chase of the Datalog± literature — every distinct
  /// frontier binding fires exactly once, inventing nulls
  /// unconditionally. Certain answers coincide; the semi-oblivious
  /// result is larger. Terminates on weakly-acyclic programs.
  bool restricted = true;
  /// When non-null, every TGD firing records its ground body witness here
  /// (one extra body evaluation per firing) so derived facts can be
  /// explained as derivation trees. See datalog/provenance.h.
  class ProvenanceStore* provenance = nullptr;
  /// When non-null, the chase charges facts/rounds/memory against this
  /// budget and polls it for deadline expiry, cancellation, and injected
  /// faults. Budget trips stop the run *gracefully*: the out-param
  /// `Run` overload returns OK with `ChaseStats::completeness ==
  /// kTruncated` and the partial (sound) instance in place. Not owned.
  ExecutionBudget* budget = nullptr;
  /// When non-null, each round's trigger matching is partitioned across
  /// the pool's workers (the instance is immutable during matching);
  /// fired triggers are then merged and applied in canonical order on
  /// the calling thread, so the resulting instance — fact set, levels,
  /// null numbering, and ChaseStats counters — is bit-identical to a
  /// serial run. See docs/parallelism.md. Counter-budget trips remain
  /// deterministic; a deadline or cancellation can cut parallel matching
  /// at a thread-dependent point (the partial result is still sound).
  /// Not owned.
  ThreadPool* pool = nullptr;
  /// Minimum candidate (delta) rows in a pass before the pool is used;
  /// smaller passes run inline to avoid scheduling overhead. Tests set
  /// this to 1 to force the parallel path on tiny programs.
  uint64_t min_parallel_seeds = 64;
  /// Declares the program's EGDs *separable* in the paper's §III sense
  /// (EGD and TGD application commute — the ontology layer's
  /// `OntologyProperties::separable_egds` verifies the sufficient
  /// condition). `Chase::Extend` only maintains EGD programs
  /// incrementally when this is set; otherwise it conservatively falls
  /// back to a full re-chase. `Run` ignores the flag.
  bool egds_separable = false;
  /// Physical layout of fact tables built by chase entry points that
  /// construct their own `Instance` (e.g. `qa::ChaseQa`, the assessor).
  /// Columnar (the default) dictionary-encodes every position into
  /// immutable shared segments plus an append-only overlay and unlocks
  /// the vectorized block-join executor; `kRow` keeps the legacy row
  /// store with per-position hash indexes. Results are byte-identical
  /// either way (gated by tests/columnar_diff_test.cc); the flag exists
  /// as an escape hatch and benchmark ablation.
  StorageMode storage = StorageMode::kColumnar;
  /// Pre-computed position/dependency analysis of the program, used by
  /// `Chase::Extend` to *narrow* its conservative fallbacks: EGDs whose
  /// body predicates cannot be reached from the delta, or that provably
  /// never equate labeled nulls, no longer force a full re-chase, and
  /// form-(10) rules only do so when the delta (plus any possible null
  /// merges) can actually feed them. When null, Extend builds a local
  /// analysis on demand. `Run` ignores the field. Not owned; must
  /// describe exactly `program`'s rules.
  const ProgramAnalysis* analysis = nullptr;
};

/// Resume state of a completed chase, captured in `ChaseStats::frontier`:
/// everything `Chase::Extend` needs to restart the semi-naive evaluation
/// seeded with a delta instead of re-chasing from scratch. Valid only
/// while the instance it was captured from is unmodified (the generation
/// check) — `Extend` refuses a stale frontier rather than guessing.
struct ChaseFrontier {
  /// False until a chase run reaches its fixpoint (a truncated run has
  /// no usable frontier: unprocessed triggers are unrecorded).
  bool valid = false;
  /// Last completed chase round == the highest derivation level in the
  /// instance. Delta facts are inserted above it so the level windows of
  /// the semi-naive restart see exactly the delta.
  uint64_t round = 0;
  /// Labeled nulls minted in the shared Vocabulary at capture time.
  uint32_t null_watermark = 0;
  /// Cumulative EGD merges applied to the instance at capture time.
  uint64_t egd_merges = 0;
  /// Instance::generation() at capture; Extend validates against it.
  uint64_t generation = 0;
  /// Per-predicate row counts at capture (the frozen-segment watermark).
  std::unordered_map<uint32_t, uint32_t> watermarks;

  std::string ToString() const;
};

/// Why a chase run stopped before its fixpoint.
enum class ChaseStop {
  kNone,        ///< did not stop early
  kRoundLimit,  ///< legacy ChaseOptions::max_rounds tripped
  kFactLimit,   ///< legacy ChaseOptions::max_facts tripped (hard error in
                ///< the Result-returning overload, for compatibility)
  kBudget,      ///< ExecutionBudget counter/deadline/memory trip
  kCancelled,   ///< CancellationToken fired
};

const char* ChaseStopToString(ChaseStop stop);

struct ChaseStats {
  bool reached_fixpoint = false;
  uint64_t rounds = 0;
  uint64_t tgd_firings = 0;
  uint64_t facts_added = 0;
  uint64_t nulls_created = 0;
  uint64_t egd_merges = 0;
  /// kTruncated when the run stopped before the fixpoint; by chase
  /// monotonicity the instance is then a sound under-approximation.
  Completeness completeness = Completeness::kComplete;
  /// What cut the run short (kNone when completeness == kComplete).
  ChaseStop stop = ChaseStop::kNone;
  /// The status that interrupted the run; OK when the run completed.
  Status interruption;
  /// Resume state for `Chase::Extend`; `frontier.valid` iff the run (or
  /// extension) reached its fixpoint.
  ChaseFrontier frontier;
  /// True when these stats come from `Chase::Extend`.
  bool incremental = false;
  /// True when `Extend` had to fall back to a full re-chase (negation, a
  /// semi-oblivious chase, non-separable EGDs that the delta can reach
  /// with possible null merges, or a form-(10)-shaped rule the delta can
  /// feed); `fallback_reason` says why. Fallbacks are recorded, never
  /// silent — the result is still exact.
  bool extend_fallback = false;
  std::string fallback_reason;

  std::string ToString() const;
};

/// The restricted chase for Datalog± programs: TGDs fire only when the
/// head is not already satisfied (checked against the *current* instance,
/// so one fresh-null tuple satisfies later triggers with the same
/// frontier); EGDs merge labeled nulls via union-find and report
/// constant/constant clashes as kInconsistent; negative constraints are
/// boolean CQs whose satisfaction is kInconsistent.
class Chase {
 public:
  /// Extends `*instance` with all consequences of `program.rules()` (the
  /// program's own facts are NOT loaded here — build the instance with
  /// `Instance::FromProgram` or `LoadDatabase` first).
  ///
  /// `*stats` is always filled with whatever accumulated before the
  /// return — including on error — so callers never lose progress
  /// accounting. Budget/deadline/cancellation trips return OK with
  /// `stats->completeness == kTruncated` and the partial instance in
  /// place; hard failures (kInconsistent, invalid rules) return non-OK.
  static Status Run(const Program& program, Instance* instance,
                    const ChaseOptions& options, ChaseStats* stats);

  /// Compatibility overload. Identical except that the legacy
  /// `max_facts` trip is reported as a kResourceExhausted *error* (with
  /// the accumulated stats discarded), as older callers expect.
  static Result<ChaseStats> Run(const Program& program, Instance* instance,
                                const ChaseOptions& options = ChaseOptions());

  /// Incrementally extends a chased instance with `delta_facts` (new
  /// ground extensional facts): a semi-naive restart seeded with the
  /// delta, resuming from `frontier` (captured by a previous `Run` or
  /// `Extend` in `ChaseStats::frontier`). The delta facts are inserted
  /// by this call — do NOT pre-insert them (that would invalidate the
  /// frontier's generation).
  ///
  /// Exactness: the resulting instance contains the same facts as a
  /// from-scratch chase of base+delta. For programs without existential
  /// variables the rendering (`Instance::ToString`) is byte-identical;
  /// null-inventing programs may number their nulls differently
  /// (compare with `Instance::ToCanonicalString`). Programs whose
  /// features break delta soundness — stratified negation (inserts are
  /// non-monotone) or a semi-oblivious chase (its fired-trigger set is
  /// not part of the frontier) — conservatively fall back to a full
  /// re-chase of `program`+delta, recorded in `stats->extend_fallback` /
  /// `fallback_reason`. EGDs without `options.egds_separable` and
  /// form-(10)-shaped rules (multi-atom head with existentials) fall
  /// back only when the position-dependency analysis
  /// (`ChaseOptions::analysis`, built locally when unset) cannot rule
  /// out an interaction with the delta: a non-separable EGD forces the
  /// fallback only if some EGD body predicate depends on a delta
  /// predicate *and* the EGD can equate labeled nulls (some occurrence
  /// of an equated variable sits at an affected position); a form-(10)
  /// rule only if one of its body predicates depends on the delta
  /// predicates (widened by all affected predicates when such a null
  /// merge is possible). The fallback re-bases
  /// on `program`'s facts, so the caller must keep the program's fact
  /// list in sync with previously applied deltas (ChaseQa::Extend does).
  ///
  /// With separable EGDs the extension runs the TGD restart first, then
  /// re-runs the EGD fixpoint; if merges occurred, full TGD passes run
  /// to the (restricted) fixpoint again.
  ///
  /// kFailedPrecondition when `frontier` is invalid or stale (the
  /// instance's generation moved); budget trips behave as in `Run`.
  static Status Extend(const Program& program, Instance* instance,
                       const ChaseFrontier& frontier,
                       const std::vector<Atom>& delta_facts,
                       const ChaseOptions& options, ChaseStats* stats);

  /// Evaluates every negative constraint of `program` against `instance`;
  /// kInconsistent with a witness if one fires. A non-null `budget` can
  /// interrupt the evaluation (truncation status propagates). A non-null
  /// `dirty` restricts the check to constraints with at least one body
  /// predicate in the set — sound only when the instance already passed a
  /// full check before the facts of those predicates were added (the
  /// incremental-extension case).
  static Status CheckConstraints(
      const Program& program, const Instance& instance,
      ExecutionBudget* budget = nullptr,
      const std::unordered_set<uint32_t>* dirty = nullptr);

  /// Applies `program`'s EGDs to fixpoint on `*instance` (union-find null
  /// merging). Returns the number of merges, or kInconsistent on a
  /// constant/constant clash. A non-null `budget` can interrupt the
  /// evaluation between EGD passes (truncation status propagates; the
  /// instance is left after the last completed pass).
  static Result<uint64_t> ApplyEgds(const Program& program,
                                    Instance* instance,
                                    ExecutionBudget* budget = nullptr);
};

}  // namespace mdqa::datalog

#endif  // MDQA_DATALOG_CHASE_H_
