#ifndef MDQA_DATALOG_PROGRAM_H_
#define MDQA_DATALOG_PROGRAM_H_

#include <memory>
#include <string>
#include <vector>

#ifndef NDEBUG
#include <cassert>
#include <thread>
#endif

#include "base/intern.h"
#include "base/result.h"
#include "datalog/rule.h"
#include "relational/value.h"

namespace mdqa::datalog {

/// Owns the symbol spaces of a Datalog± program and everything derived from
/// it: predicate names (with fixed arities), variable names, interned
/// constants, and the labeled-null counter. `Program`, `Instance`, queries
/// and engines share one vocabulary via `std::shared_ptr`.
///
/// Thread contract (docs/parallelism.md): during pooled phases, worker
/// threads only *read* the vocabulary — all interning and null minting
/// happens on the coordinating thread. Debug builds enforce this: the
/// vocabulary binds to the first thread that mutates it and every later
/// mutation asserts it runs on that thread. A deliberate ownership
/// hand-off (rare) calls `BindToCurrentThread()` first.
class Vocabulary {
 public:
  Vocabulary() = default;

  /// Interns predicate `name` with `arity`. Re-interning with a different
  /// arity is an error.
  Result<uint32_t> InternPredicate(std::string_view name, size_t arity);

  /// Id of `name`, or kNotFound.
  uint32_t FindPredicate(std::string_view name) const {
    return predicates_.Find(name);
  }
  const std::string& PredicateName(uint32_t id) const {
    return predicates_.Get(id);
  }
  size_t PredicateArity(uint32_t id) const { return arities_[id]; }
  size_t NumPredicates() const { return predicates_.size(); }

  /// Interns a variable name ("X", "Day", ...), returning its id.
  uint32_t InternVariable(std::string_view name) {
    AssertOwnerThread();
    return variables_.Intern(name);
  }
  const std::string& VariableName(uint32_t id) const {
    return variables_.Get(id);
  }
  size_t NumVariables() const { return variables_.size(); }

  /// A variable guaranteed distinct from all parsed ones (for renaming
  /// rules apart in resolution/rewriting).
  Term FreshVariable();

  uint32_t InternConstant(const Value& v) {
    AssertOwnerThread();
    return constants_.Intern(v);
  }
  uint32_t FindConstant(const Value& v) const { return constants_.Find(v); }
  const Value& ConstantValue(uint32_t id) const { return constants_.Get(id); }
  size_t NumConstants() const { return constants_.size(); }

  /// Convenience builders used pervasively by tests and the MD layer.
  Term Const(const Value& v) { return Term::Constant(InternConstant(v)); }
  Term Str(std::string_view s) { return Const(Value::Str(s)); }
  Term Int(int64_t v) { return Const(Value::Int(v)); }
  Term Var(std::string_view name) {
    return Term::Variable(InternVariable(name));
  }

  /// Mints a fresh labeled null ⊥_k.
  Term FreshNull() {
    AssertOwnerThread();
    return Term::Null(next_null_++);
  }
  uint32_t NumNulls() const { return next_null_; }

  /// Ensures future FreshNull() ids exceed `id` — used when parsing the
  /// `_n<k>` null literals of a serialized instance.
  void ReserveNullsThrough(uint32_t id) {
    AssertOwnerThread();
    if (next_null_ <= id) next_null_ = id + 1;
  }

  /// Re-binds the debug owner-thread check to the calling thread: the
  /// escape hatch for a deliberate, externally synchronized ownership
  /// hand-off. No-op in release builds.
  void BindToCurrentThread() {
#ifndef NDEBUG
    owner_thread_ = std::this_thread::get_id();
#endif
  }

  std::string TermToString(Term t) const;
  /// Like TermToString but strings are unquoted ("Tom Waits", not
  /// "\"Tom Waits\"") — for rendering answers and table rows.
  std::string TermToDisplayString(Term t) const;
  std::string AtomToString(const Atom& a) const;
  std::string ComparisonToString(const Comparison& c) const;
  std::string RuleToString(const Rule& r) const;
  std::string QueryToString(const ConjunctiveQuery& q) const;

 private:
  // Debug builds: bind to the first mutating thread, assert every later
  // mutation runs there (see the class comment). Lazy binding keeps the
  // common construct-on-A / use-on-B serial pattern legal. The check is
  // best-effort — genuinely concurrent first mutations are already a data
  // race — but it trips loudly on the realistic bug: a pool worker
  // interning through a shared vocabulary mid-phase.
  void AssertOwnerThread() {
#ifndef NDEBUG
    const std::thread::id self = std::this_thread::get_id();
    if (owner_thread_ == std::thread::id{}) {
      owner_thread_ = self;
      return;
    }
    assert(owner_thread_ == self &&
           "Vocabulary mutated from a non-owner thread: pooled workers "
           "must never intern symbols or mint nulls (docs/parallelism.md); "
           "call BindToCurrentThread() for a deliberate hand-off");
#endif
  }

  StringPool predicates_;
  std::vector<size_t> arities_;
  StringPool variables_;
  ValuePool constants_;
  uint32_t next_null_ = 0;
  uint32_t next_fresh_var_ = 0;
#ifndef NDEBUG
  std::thread::id owner_thread_{};
#endif
};

/// A Datalog± program: a shared vocabulary, a set of dependencies (TGDs,
/// EGDs, negative constraints), and extensional facts. The MD ontology
/// layer compiles into this representation; the chase and all query
/// answering engines consume it.
class Program {
 public:
  Program() : vocab_(std::make_shared<Vocabulary>()) {}
  explicit Program(std::shared_ptr<Vocabulary> vocab)
      : vocab_(std::move(vocab)) {}

  const std::shared_ptr<Vocabulary>& vocab() const { return vocab_; }
  Vocabulary* mutable_vocab() { return vocab_.get(); }

  /// Validates and appends a rule.
  Status AddRule(Rule rule);

  /// Appends a ground fact (extensional atom).
  Status AddFact(Atom fact);

  const std::vector<Rule>& rules() const { return rules_; }
  const std::vector<Atom>& facts() const { return facts_; }

  /// Subsets by kind (copies; programs are small relative to data).
  std::vector<Rule> Tgds() const;
  std::vector<Rule> Egds() const;
  std::vector<Rule> Constraints() const;

  /// Re-parseable listing of rules then facts.
  std::string ToString() const;

  /// Mutation counter: bumped by every successful AddRule/AddFact.
  /// Caches keyed on a program's content (e.g. PreparedContext's lazy
  /// EDB statistics) validate against this instead of re-hashing the
  /// fact list. Counts mutations of THIS object only — a copied program
  /// starts from the source's current value and the two then diverge.
  uint64_t generation() const { return generation_; }

 private:
  std::shared_ptr<Vocabulary> vocab_;
  std::vector<Rule> rules_;
  std::vector<Atom> facts_;
  uint64_t generation_ = 0;
};

}  // namespace mdqa::datalog

#endif  // MDQA_DATALOG_PROGRAM_H_
