#include "datalog/analysis.h"

#include <algorithm>
#include <functional>
#include <set>
#include <utility>

namespace mdqa::datalog {

namespace {

Position Pos(uint32_t pred, size_t idx) {
  return Position{pred, static_cast<uint32_t>(idx)};
}

// Body positions of each variable of a rule.
std::unordered_map<uint32_t, std::vector<Position>> BodyPositionsByVar(
    const Rule& rule) {
  std::unordered_map<uint32_t, std::vector<Position>> out;
  for (const Atom& a : rule.body) {
    for (size_t i = 0; i < a.terms.size(); ++i) {
      if (a.terms[i].IsVariable()) {
        out[a.terms[i].id()].push_back(Pos(a.predicate, i));
      }
    }
  }
  return out;
}

std::unordered_map<uint32_t, std::vector<Position>> HeadPositionsByVar(
    const Rule& rule) {
  std::unordered_map<uint32_t, std::vector<Position>> out;
  for (const Atom& a : rule.head) {
    for (size_t i = 0; i < a.terms.size(); ++i) {
      if (a.terms[i].IsVariable()) {
        out[a.terms[i].id()].push_back(Pos(a.predicate, i));
      }
    }
  }
  return out;
}

}  // namespace

Result<std::unordered_map<uint32_t, int>> StratifyProgram(
    const Program& program) {
  std::unordered_map<uint32_t, int> stratum;
  auto get = [&stratum](uint32_t pred) -> int& {
    return stratum.try_emplace(pred, 0).first->second;
  };
  // Seed every predicate mentioned anywhere.
  for (const Rule& r : program.rules()) {
    for (const Atom& a : r.head) get(a.predicate);
    for (const Atom& a : r.body) get(a.predicate);
    for (const Atom& a : r.negated) get(a.predicate);
  }
  const size_t n = stratum.size();
  // Bellman-Ford-style relaxation; more than n rounds of change means a
  // cycle through a negative edge.
  for (size_t iter = 0; iter <= n + 1; ++iter) {
    bool changed = false;
    for (const Rule& r : program.rules()) {
      if (!r.IsTgd()) continue;  // EGDs/constraints have no head stratum
      int floor = 0;
      for (const Atom& a : r.body) floor = std::max(floor, get(a.predicate));
      for (const Atom& a : r.negated) {
        floor = std::max(floor, get(a.predicate) + 1);
      }
      for (const Atom& h : r.head) {
        int& s = get(h.predicate);
        if (s < floor) {
          s = floor;
          changed = true;
        }
      }
    }
    if (!changed) return stratum;
  }
  return Status::InvalidArgument(
      "program is not stratified: negation occurs through recursion");
}

std::unordered_set<uint32_t> DependentPredicates(
    const Program& program, const std::unordered_set<uint32_t>& seeds) {
  std::unordered_set<uint32_t> reach = seeds;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Rule& r : program.rules()) {
      if (!r.IsTgd()) continue;  // EGDs/constraints derive nothing
      bool touches = false;
      for (const Atom& a : r.body) {
        if (reach.count(a.predicate) > 0) {
          touches = true;
          break;
        }
      }
      if (!touches) {
        for (const Atom& a : r.negated) {
          if (reach.count(a.predicate) > 0) {
            touches = true;
            break;
          }
        }
      }
      if (!touches) continue;
      for (const Atom& h : r.head) {
        if (reach.insert(h.predicate).second) changed = true;
      }
    }
  }
  return reach;
}

DeadRuleAnalysis FindDeadRules(const Program& program,
                               const std::unordered_set<uint32_t>& goals) {
  DeadRuleAnalysis out;
  out.relevant = goals;

  // Anchor 1: EGD and constraint bodies — their verdicts are always
  // observable, so everything feeding them is relevant.
  // Anchor 2: TGD head predicates no rule body consumes — presumptive
  // query outputs (the same notion MDQA-I010 calls "query output").
  std::unordered_set<uint32_t> consumed;
  for (const Rule& r : program.rules()) {
    for (const Atom& a : r.body) consumed.insert(a.predicate);
    for (const Atom& a : r.negated) consumed.insert(a.predicate);
  }
  for (const Rule& r : program.rules()) {
    if (r.IsTgd()) {
      for (const Atom& h : r.head) {
        if (consumed.count(h.predicate) == 0) out.relevant.insert(h.predicate);
      }
    } else {
      for (const Atom& a : r.body) out.relevant.insert(a.predicate);
      for (const Atom& a : r.negated) out.relevant.insert(a.predicate);
    }
  }

  // Backward closure: a relevant head makes the whole body relevant
  // (negated occurrences too — absence is observable under closed-world
  // negation).
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Rule& r : program.rules()) {
      if (!r.IsTgd()) continue;
      bool head_relevant = false;
      for (const Atom& h : r.head) {
        if (out.relevant.count(h.predicate) > 0) {
          head_relevant = true;
          break;
        }
      }
      if (!head_relevant) continue;
      for (const Atom& a : r.body) {
        if (out.relevant.insert(a.predicate).second) changed = true;
      }
      for (const Atom& a : r.negated) {
        if (out.relevant.insert(a.predicate).second) changed = true;
      }
    }
  }

  for (size_t i = 0; i < program.rules().size(); ++i) {
    const Rule& r = program.rules()[i];
    if (!r.IsTgd()) continue;
    bool head_relevant = false;
    for (const Atom& h : r.head) {
      if (out.relevant.count(h.predicate) > 0) {
        head_relevant = true;
        break;
      }
    }
    if (!head_relevant) out.dead_rules.push_back(i);
  }
  return out;
}

Program PruneDeadRules(const Program& program,
                       const std::unordered_set<uint32_t>& goals) {
  DeadRuleAnalysis dead = FindDeadRules(program, goals);
  std::unordered_set<size_t> drop(dead.dead_rules.begin(),
                                  dead.dead_rules.end());
  Program out(program.vocab());
  for (size_t i = 0; i < program.rules().size(); ++i) {
    if (drop.count(i) > 0) continue;
    Status added = out.AddRule(program.rules()[i]);
    (void)added;  // rules of a valid program re-validate
  }
  for (const Atom& f : program.facts()) {
    Status added = out.AddFact(f);
    (void)added;
  }
  return out;
}

ProgramAnalysis::ProgramAnalysis(const Program& program)
    : tgds_(program.Tgds()) {
  BuildGraph();
  ComputeRanks();
  ComputeAffected();
  ComputeMarking();
  Classify();
}

void ProgramAnalysis::BuildGraph() {
  auto add_node = [this](Position p) { nodes_.emplace(p.Key(), p); };
  auto add_edge = [this, &add_node](Position from, Position to, bool special) {
    add_node(from);
    add_node(to);
    edges_[from.Key()].push_back(to.Key());
    if (special) special_edges_.emplace_back(from.Key(), to.Key());
  };

  for (const Rule& rule : tgds_) {
    auto body_pos = BodyPositionsByVar(rule);
    auto head_pos = HeadPositionsByVar(rule);
    std::vector<uint32_t> existential = rule.ExistentialVariables();
    std::unordered_set<uint32_t> exist_set(existential.begin(),
                                           existential.end());

    // Collect the head positions of existential variables once.
    std::vector<Position> exist_positions;
    for (uint32_t z : existential) {
      for (Position p : head_pos[z]) exist_positions.push_back(p);
    }

    for (const auto& [var, from_list] : body_pos) {
      auto it = head_pos.find(var);
      for (Position from : from_list) {
        if (it != head_pos.end()) {
          for (Position to : it->second) add_edge(from, to, /*special=*/false);
        }
        // Special edges: from every body position of every frontier
        // variable into every existential head position of the same rule.
        if (it != head_pos.end()) {
          for (Position to : exist_positions) add_edge(from, to, true);
        }
      }
    }
    // Ensure isolated positions still appear as nodes (for reports).
    for (const Atom& a : rule.body) {
      for (size_t i = 0; i < a.terms.size(); ++i) add_node(Pos(a.predicate, i));
    }
    for (const Atom& a : rule.head) {
      for (size_t i = 0; i < a.terms.size(); ++i) add_node(Pos(a.predicate, i));
    }
  }
}

void ProgramAnalysis::ComputeRanks() {
  // Tarjan SCC over the position graph, then: a position has infinite rank
  // iff it is reachable from an SCC that contains a special edge (a cycle
  // through a special edge pumps unboundedly many nulls into everything
  // downstream).
  std::unordered_map<uint64_t, int> index, low, comp;
  std::vector<uint64_t> stack;
  std::unordered_set<uint64_t> on_stack;
  int next_index = 0, next_comp = 0;

  std::function<void(uint64_t)> strongconnect = [&](uint64_t v) {
    index[v] = low[v] = next_index++;
    stack.push_back(v);
    on_stack.insert(v);
    auto it = edges_.find(v);
    if (it != edges_.end()) {
      for (uint64_t w : it->second) {
        if (index.find(w) == index.end()) {
          strongconnect(w);
          low[v] = std::min(low[v], low[w]);
        } else if (on_stack.count(w) > 0) {
          low[v] = std::min(low[v], index[w]);
        }
      }
    }
    if (low[v] == index[v]) {
      while (true) {
        uint64_t w = stack.back();
        stack.pop_back();
        on_stack.erase(w);
        comp[w] = next_comp;
        if (w == v) break;
      }
      ++next_comp;
    }
  };
  for (const auto& [key, _] : nodes_) {
    if (index.find(key) == index.end()) strongconnect(key);
  }

  // SCCs containing a special edge (both ends in the same component).
  std::unordered_set<int> bad_comps;
  for (const auto& [from, to] : special_edges_) {
    if (comp[from] == comp[to]) bad_comps.insert(comp[from]);
  }
  weakly_acyclic_ = bad_comps.empty();

  // Infinite rank = reachable from any node of a bad SCC.
  std::vector<uint64_t> frontier;
  std::unordered_set<uint64_t> infinite;
  for (const auto& [key, _] : nodes_) {
    if (bad_comps.count(comp[key]) > 0) {
      if (infinite.insert(key).second) frontier.push_back(key);
    }
  }
  while (!frontier.empty()) {
    uint64_t v = frontier.back();
    frontier.pop_back();
    auto it = edges_.find(v);
    if (it == edges_.end()) continue;
    for (uint64_t w : it->second) {
      if (infinite.insert(w).second) frontier.push_back(w);
    }
  }
  for (uint64_t key : infinite) infinite_rank_.insert(nodes_[key]);
}

void ProgramAnalysis::ComputeAffected() {
  // Base: head positions of existential variables.
  for (const Rule& rule : tgds_) {
    auto head_pos = HeadPositionsByVar(rule);
    for (uint32_t z : rule.ExistentialVariables()) {
      for (Position p : head_pos[z]) affected_.insert(p);
    }
  }
  // Propagate: a head position of frontier variable x becomes affected
  // when every body occurrence of x is at an affected position.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Rule& rule : tgds_) {
      auto body_pos = BodyPositionsByVar(rule);
      auto head_pos = HeadPositionsByVar(rule);
      for (uint32_t x : rule.FrontierVariables()) {
        bool all_affected = true;
        for (Position p : body_pos[x]) {
          if (affected_.count(p) == 0) {
            all_affected = false;
            break;
          }
        }
        if (!all_affected) continue;
        for (Position p : head_pos[x]) {
          if (affected_.insert(p).second) changed = true;
        }
      }
    }
  }
}

void ProgramAnalysis::ComputeMarking() {
  marked_.assign(tgds_.size(), {});
  // Initial step: variables that do not propagate to the head are marked.
  for (size_t i = 0; i < tgds_.size(); ++i) {
    std::vector<uint32_t> head_vars = tgds_[i].HeadVariables();
    std::unordered_set<uint32_t> head_set(head_vars.begin(), head_vars.end());
    for (uint32_t v : tgds_[i].BodyVariables()) {
      if (head_set.count(v) == 0) marked_[i].insert(v);
    }
  }
  // Propagation: if a frontier variable lands (in the head) on a position
  // where *any* rule has a marked body occurrence, it becomes marked too.
  bool changed = true;
  while (changed) {
    changed = false;
    // Positions carrying a marked occurrence in some body.
    std::unordered_set<uint64_t> marked_positions;
    for (size_t i = 0; i < tgds_.size(); ++i) {
      auto body_pos = BodyPositionsByVar(tgds_[i]);
      for (uint32_t v : marked_[i]) {
        for (Position p : body_pos[v]) marked_positions.insert(p.Key());
      }
    }
    for (size_t i = 0; i < tgds_.size(); ++i) {
      auto head_pos = HeadPositionsByVar(tgds_[i]);
      for (uint32_t x : tgds_[i].FrontierVariables()) {
        if (marked_[i].count(x) > 0) continue;
        for (Position p : head_pos[x]) {
          if (marked_positions.count(p.Key()) > 0) {
            marked_[i].insert(x);
            changed = true;
            break;
          }
        }
      }
    }
  }
}

void ProgramAnalysis::Classify() {
  linear_ = true;
  guarded_ = true;
  weakly_guarded_ = true;
  sticky_ = true;
  weakly_sticky_ = true;

  for (size_t i = 0; i < tgds_.size(); ++i) {
    const Rule& rule = tgds_[i];
    if (rule.body.size() != 1) linear_ = false;

    // Guarded: some body atom contains every body variable.
    // Weakly guarded: some body atom contains every *harmful* body
    // variable — one occurring only at affected positions.
    std::vector<uint32_t> body_vars = rule.BodyVariables();
    auto body_pos = BodyPositionsByVar(rule);
    std::vector<uint32_t> harmful;
    for (uint32_t v : body_vars) {
      bool all_affected = true;
      for (Position p : body_pos[v]) {
        if (affected_.count(p) == 0) {
          all_affected = false;
          break;
        }
      }
      if (all_affected) harmful.push_back(v);
    }
    bool has_guard = false;
    bool has_weak_guard = false;
    for (const Atom& a : rule.body) {
      std::unordered_set<uint32_t> in_atom;
      for (Term t : a.terms) {
        if (t.IsVariable()) in_atom.insert(t.id());
      }
      auto contains_all = [&in_atom](const std::vector<uint32_t>& vars) {
        return std::all_of(vars.begin(), vars.end(), [&](uint32_t v) {
          return in_atom.count(v) > 0;
        });
      };
      if (contains_all(body_vars)) has_guard = true;
      if (contains_all(harmful)) has_weak_guard = true;
    }
    if (!has_guard) guarded_ = false;
    if (!has_weak_guard) weakly_guarded_ = false;

    for (uint32_t v : body_vars) {
      if (rule.BodyOccurrences(v) < 2) continue;
      if (marked_[i].count(v) == 0) continue;
      // Repeated marked variable: breaks stickiness.
      sticky_ = false;
      // Weak stickiness survives if some occurrence sits at a finite-rank
      // position.
      bool touches_finite = false;
      for (Position p : body_pos[v]) {
        if (infinite_rank_.count(p) == 0) {
          touches_finite = true;
          break;
        }
      }
      if (!touches_finite) weakly_sticky_ = false;
      StickinessViolation violation;
      violation.rule_index = i;
      violation.variable = v;
      violation.breaks_weak_stickiness = !touches_finite;
      violation.positions = body_pos[v];
      stickiness_violations_.push_back(std::move(violation));
    }
  }
}

std::string ProgramAnalysis::ClassName() const {
  std::vector<std::string> names;
  if (linear_) names.push_back("linear");
  if (guarded_ && !linear_) names.push_back("guarded");
  if (weakly_guarded_ && !guarded_) names.push_back("weakly-guarded");
  if (sticky_) names.push_back("sticky");
  if (weakly_sticky_ && !sticky_) names.push_back("weakly-sticky");
  if (weakly_acyclic_) names.push_back("weakly-acyclic");
  if (names.empty()) return "(none of the tractable classes)";
  std::string out;
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out += "+";
    out += names[i];
  }
  return out;
}

std::vector<Position> ProgramAnalysis::InfiniteRankPositions() const {
  std::vector<Position> out(infinite_rank_.begin(), infinite_rank_.end());
  std::sort(out.begin(), out.end(), [](Position a, Position b) {
    return a.Key() < b.Key();
  });
  return out;
}

std::vector<Position> ProgramAnalysis::AffectedPositions() const {
  std::vector<Position> out(affected_.begin(), affected_.end());
  std::sort(out.begin(), out.end(), [](Position a, Position b) {
    return a.Key() < b.Key();
  });
  return out;
}

std::unordered_set<uint32_t> ProgramAnalysis::AffectedPredicates() const {
  std::unordered_set<uint32_t> out;
  for (Position p : affected_) out.insert(p.predicate);
  return out;
}

bool ProgramAnalysis::EgdIsNullFree(const Rule& egd) const {
  for (Term side : {egd.egd_lhs, egd.egd_rhs}) {
    if (!side.IsVariable()) continue;  // a constant side is trivially fixed
    bool pinned = false;
    for (const Atom& a : egd.body) {
      for (size_t i = 0; i < a.terms.size(); ++i) {
        if (a.terms[i].IsVariable() && a.terms[i].id() == side.id() &&
            affected_.count(Pos(a.predicate, i)) == 0) {
          pinned = true;
          break;
        }
      }
      if (pinned) break;
    }
    if (!pinned) return false;
  }
  return true;
}

bool ProgramAnalysis::IsMarkedIn(size_t tgd_index, uint32_t var) const {
  return tgd_index < marked_.size() && marked_[tgd_index].count(var) > 0;
}

std::string ProgramAnalysis::Report(const Vocabulary& vocab) const {
  auto pos_str = [&vocab](Position p) {
    return vocab.PredicateName(p.predicate) + "[" + std::to_string(p.index) +
           "]";
  };
  std::string out;
  if (tgds_.empty()) {
    // Without TGDs every class holds vacuously; say so instead of
    // printing a misleading wall of yes-flags.
    out += "class: (no TGDs — every class holds vacuously)\n";
    return out;
  }
  out += "class: " + ClassName() + "\n";
  out += "linear=" + std::string(linear_ ? "yes" : "no");
  out += " guarded=" + std::string(guarded_ ? "yes" : "no");
  out += " weakly-guarded=" + std::string(weakly_guarded_ ? "yes" : "no");
  out += " weakly-acyclic=" + std::string(weakly_acyclic_ ? "yes" : "no");
  out += " sticky=" + std::string(sticky_ ? "yes" : "no");
  out += " weakly-sticky=" + std::string(weakly_sticky_ ? "yes" : "no");
  out += "\n";
  out += "infinite-rank positions:";
  for (Position p : InfiniteRankPositions()) out += " " + pos_str(p);
  out += "\naffected positions:";
  for (Position p : AffectedPositions()) out += " " + pos_str(p);
  out += "\n";
  for (const StickinessViolation& v : stickiness_violations_) {
    out += "violation: rule #" + std::to_string(v.rule_index) + " (" +
           vocab.RuleToString(tgds_[v.rule_index]) +
           "): repeated marked variable " + vocab.VariableName(v.variable) +
           " at";
    for (Position p : v.positions) out += " " + pos_str(p);
    out += v.breaks_weak_stickiness
               ? " — all infinite-rank: breaks weak stickiness\n"
               : " — touches a finite-rank position: breaks stickiness "
                 "only\n";
  }
  return out;
}

std::string ProgramAnalysis::GraphDump(const Vocabulary& vocab) const {
  auto pos_str = [&vocab](Position p) {
    return vocab.PredicateName(p.predicate) + "[" + std::to_string(p.index) +
           "]";
  };
  std::set<std::pair<uint64_t, uint64_t>> special(special_edges_.begin(),
                                                  special_edges_.end());
  std::vector<std::string> lines;
  std::unordered_set<std::string> seen;
  for (const auto& [from_key, to_keys] : edges_) {
    Position from = nodes_.at(from_key);
    for (uint64_t to_key : to_keys) {
      Position to = nodes_.at(to_key);
      const bool is_special = special.count({from_key, to_key}) > 0;
      std::string line = "  " + pos_str(from) +
                         (is_special ? " =>* " : " -> ") + pos_str(to);
      if (seen.insert(line).second) lines.push_back(std::move(line));
    }
  }
  std::sort(lines.begin(), lines.end());
  std::string out = "position dependency graph: " +
                    std::to_string(nodes_.size()) + " positions, " +
                    std::to_string(lines.size()) +
                    " distinct edges (=>* marks special edges into "
                    "existential positions)\n";
  for (const std::string& line : lines) out += line + "\n";
  return out;
}

}  // namespace mdqa::datalog
