#include "datalog/whynot.h"

#include "datalog/cq_eval.h"
#include "datalog/unify.h"

namespace mdqa::datalog {

std::string WhyNotReport::ToString() const {
  if (present) return "the fact is present\n";
  if (attempts.empty()) {
    return "no rule derives this predicate; the fact would have to be "
           "extensional\n";
  }
  std::string out;
  for (const FailedDerivation& a : attempts) {
    out += "via " + a.rule + "\n";
    out += "  body atoms jointly satisfiable: " +
           std::to_string(a.satisfied_prefix) + "\n";
    if (!a.blocking_atom.empty()) {
      out += "  blocked at: " + a.blocking_atom + "\n";
    } else {
      out += "  (whole body satisfiable — the fact may differ from the "
             "derivable one only in invented nulls, or the instance was "
             "not chased)\n";
    }
  }
  return out;
}

Result<WhyNotReport> ExplainAbsence(const Program& program,
                                    const Instance& instance,
                                    const Atom& atom) {
  if (!atom.IsGround()) {
    return Status::InvalidArgument("why-not diagnosis needs a ground atom");
  }
  WhyNotReport report;
  if (instance.Contains(atom)) {
    report.present = true;
    return report;
  }
  const Vocabulary& vocab = *program.vocab();
  CqEvaluator eval(instance);

  for (const Rule& rule : program.rules()) {
    if (!rule.IsTgd()) continue;
    for (const Atom& head : rule.head) {
      if (head.predicate != atom.predicate) continue;
      std::optional<Subst> mgu = UnifyAtoms(head, atom);
      if (!mgu.has_value()) continue;

      // Existential head variables can never produce the given constants
      // — unless the atom's term there is itself a null, which a fresh
      // firing still would not reproduce. Either way the rule cannot
      // re-derive this exact atom if an existential got bound; report it
      // as blocked at the head.
      bool existential_bound = false;
      for (uint32_t z : rule.ExistentialVariables()) {
        Term img = Resolve(*mgu, Term::Variable(z));
        if (img.IsGround()) existential_bound = true;
      }

      FailedDerivation attempt;
      attempt.rule = vocab.RuleToString(rule);
      if (existential_bound) {
        attempt.satisfied_prefix = 0;
        attempt.blocking_atom =
            "(head existential cannot equal the given value)";
        report.attempts.push_back(std::move(attempt));
        continue;
      }

      // Longest jointly satisfiable body prefix under the head bindings.
      size_t satisfied = 0;
      std::string blocking;
      for (size_t k = 1; k <= rule.body.size(); ++k) {
        std::vector<Atom> prefix(rule.body.begin(),
                                 rule.body.begin() + static_cast<long>(k));
        // Comparisons/negation are checked only when fully applicable;
        // include them so a comparison-blocked rule reports correctly.
        std::vector<Comparison> comparisons;
        for (const Comparison& c : rule.comparisons) {
          bool in_prefix = true;
          for (Term t : {c.lhs, c.rhs}) {
            if (!t.IsVariable()) continue;
            bool found = false;
            for (const Atom& a : prefix) {
              for (Term pt : a.terms) {
                if (pt == t) found = true;
              }
            }
            if (!found && Resolve(*mgu, t).IsVariable()) in_prefix = false;
          }
          if (in_prefix) comparisons.push_back(c);
        }
        bool satisfiable = false;
        MDQA_RETURN_IF_ERROR(eval.Enumerate(prefix, {}, comparisons, *mgu,
                                            {},
                                            [&satisfiable](const Subst&) {
                                              satisfiable = true;
                                              return false;
                                            }));
        if (!satisfiable) {
          // Instantiate the blocking atom with a witness for the
          // preceding prefix, so the reader sees concrete values.
          Subst witness = *mgu;
          if (k >= 2) {
            std::vector<Atom> prev(rule.body.begin(),
                                   rule.body.begin() + static_cast<long>(k) -
                                       1);
            MDQA_RETURN_IF_ERROR(eval.Enumerate(
                prev, {}, {}, *mgu, {}, [&witness](const Subst& theta) {
                  witness = theta;
                  return false;
                }));
          }
          blocking =
              vocab.AtomToString(SubstAtom(witness, rule.body[k - 1]));
          break;
        }
        satisfied = k;
      }
      attempt.satisfied_prefix = satisfied;
      attempt.blocking_atom = blocking;
      report.attempts.push_back(std::move(attempt));
    }
  }
  return report;
}

}  // namespace mdqa::datalog
