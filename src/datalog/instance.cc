#include "datalog/instance.h"

#include <algorithm>

namespace mdqa::datalog {

size_t FactTable::HashRow(const Term* row, size_t arity) {
  size_t seed = arity;
  for (size_t i = 0; i < arity; ++i) {
    HashCombine(&seed, TermHash{}(row[i]));
  }
  return seed;
}

int64_t FactTable::FindRow(const Term* row) const {
  auto it = dedup_.find(HashRow(row, arity_));
  if (it == dedup_.end()) return -1;
  for (uint32_t idx : it->second) {
    if (std::equal(row, row + arity_, Row(idx))) return idx;
  }
  return -1;
}

bool FactTable::Insert(const Term* row, uint32_t level) {
  int64_t existing = FindRow(row);
  if (existing >= 0) {
    uint32_t& lvl = levels_[static_cast<uint32_t>(existing)];
    lvl = std::min(lvl, level);
    return false;
  }
  uint32_t idx = static_cast<uint32_t>(size());
  data_.insert(data_.end(), row, row + arity_);
  levels_.push_back(level);
  dedup_[HashRow(row, arity_)].push_back(idx);
  for (size_t pos = 0; pos < arity_; ++pos) {
    index_[pos][row[pos].Key()].push_back(idx);
  }
  return true;
}

const std::vector<uint32_t>& FactTable::Probe(size_t pos, Term t) const {
  static const std::vector<uint32_t> kEmpty;
  const auto& m = index_[pos];
  auto it = m.find(t.Key());
  return it == m.end() ? kEmpty : it->second;
}

uint64_t FactTable::MemoryEstimateBytes() const {
  uint64_t bytes = data_.capacity() * sizeof(Term) +
                   levels_.capacity() * sizeof(uint32_t);
  // Hash maps: count buckets plus the per-entry row vectors. This is an
  // estimate for budget accounting, not an allocator-exact figure.
  bytes += dedup_.bucket_count() *
           (sizeof(size_t) + sizeof(std::vector<uint32_t>));
  for (const auto& [_, rows] : dedup_) {
    bytes += rows.capacity() * sizeof(uint32_t);
  }
  for (const auto& m : index_) {
    bytes += m.bucket_count() *
             (sizeof(uint64_t) + sizeof(std::vector<uint32_t>));
    for (const auto& [_, rows] : m) {
      bytes += rows.capacity() * sizeof(uint32_t);
    }
  }
  return bytes;
}

Instance Instance::FromProgram(const Program& program) {
  Instance inst(program.vocab());
  for (const Atom& f : program.facts()) {
    inst.AddFact(f, /*level=*/0);
  }
  return inst;
}

FactTable* Instance::EnsureOwnedTable(uint32_t pred, size_t arity) {
  auto it = tables_.find(pred);
  if (it == tables_.end()) {
    it = tables_.emplace(pred, std::make_shared<FactTable>(arity)).first;
  } else if (it->second.use_count() > 1) {
    // Copy-on-write: the table is shared with a snapshot; clone before
    // the first mutation so the snapshot keeps its frozen view.
    it->second = std::make_shared<FactTable>(*it->second);
  }
  return it->second.get();
}

bool Instance::AddFact(const Atom& fact, uint32_t level) {
  return MutableTable(fact.predicate, fact.arity())
      ->Insert(fact.terms.data(), level);
}

bool Instance::Contains(const Atom& fact) const {
  const FactTable* table = Table(fact.predicate);
  return table != nullptr && table->Contains(fact.terms.data());
}

const FactTable* Instance::Table(uint32_t pred) const {
  auto it = tables_.find(pred);
  return it == tables_.end() ? nullptr : it->second.get();
}

FactTable* Instance::MutableTable(uint32_t pred, size_t arity) {
  ++generation_;
  return EnsureOwnedTable(pred, arity);
}

void Instance::Freeze() {
  // A pure watermark update on tables this view owns logically; it does
  // not count as a mutation of the fact set, but it must not write into
  // a table shared with a snapshot either — cloning would defeat the
  // point, so shared tables are frozen in place (the watermark is
  // monotone and both views agree on the rows it covers).
  for (auto& [_, table] : tables_) table->MarkFrozen();
}

bool Instance::SharesTableWith(const Instance& other, uint32_t pred) const {
  auto a = tables_.find(pred);
  auto b = other.tables_.find(pred);
  if (a == tables_.end() || b == other.tables_.end()) return false;
  return a->second.get() == b->second.get();
}

std::vector<uint32_t> Instance::Predicates() const {
  std::vector<uint32_t> out;
  out.reserve(tables_.size());
  for (const auto& [pred, table] : tables_) {
    if (table->size() > 0) out.push_back(pred);
  }
  std::sort(out.begin(), out.end());
  return out;
}

size_t Instance::TotalFacts() const {
  size_t n = 0;
  for (const auto& [_, table] : tables_) n += table->size();
  return n;
}

uint64_t Instance::MemoryEstimateBytes() const {
  uint64_t bytes = 0;
  for (const auto& [_, table] : tables_) {
    bytes += table->MemoryEstimateBytes();
  }
  return bytes;
}

size_t Instance::CountFacts(uint32_t pred) const {
  const FactTable* table = Table(pred);
  return table == nullptr ? 0 : table->size();
}

InstanceStatistics Instance::CollectStatistics() const {
  InstanceStatistics stats;
  stats.tables.reserve(tables_.size());
  for (const auto& [pred, table] : tables_) {
    TableStatistics t;
    t.rows = table->size();
    t.distinct.reserve(table->arity());
    for (size_t i = 0; i < table->arity(); ++i) {
      t.distinct.push_back(table->DistinctAt(i));
    }
    stats.total_facts += t.rows;
    stats.max_rows = std::max(stats.max_rows, t.rows);
    stats.tables.emplace(pred, std::move(t));
  }
  return stats;
}

std::vector<Atom> Instance::Facts(uint32_t pred) const {
  std::vector<Atom> out;
  const FactTable* table = Table(pred);
  if (table == nullptr) return out;
  out.reserve(table->size());
  for (uint32_t i = 0; i < table->size(); ++i) {
    const Term* row = table->Row(i);
    out.emplace_back(pred, std::vector<Term>(row, row + table->arity()));
  }
  return out;
}

Status Instance::LoadRelation(const Relation& rel) {
  MDQA_ASSIGN_OR_RETURN(uint32_t pred,
                        vocab_->InternPredicate(rel.name(), rel.arity()));
  for (const Tuple& row : rel.rows()) {
    std::vector<Term> terms;
    terms.reserve(row.size());
    for (const Value& v : row) terms.push_back(vocab_->Const(v));
    AddFact(Atom(pred, std::move(terms)), /*level=*/0);
  }
  return Status::Ok();
}

Status Instance::LoadDatabase(const Database& db) {
  for (const std::string& name : db.RelationNames()) {
    MDQA_ASSIGN_OR_RETURN(const Relation* rel, db.GetRelation(name));
    MDQA_RETURN_IF_ERROR(LoadRelation(*rel));
  }
  return Status::Ok();
}

Result<Relation> Instance::ExportRelation(uint32_t pred,
                                          const std::string& name,
                                          std::vector<std::string> attr_names,
                                          bool keep_nulls) const {
  const size_t arity = vocab_->PredicateArity(pred);
  if (attr_names.empty()) {
    for (size_t i = 0; i < arity; ++i) {
      attr_names.push_back("a" + std::to_string(i));
    }
  }
  if (attr_names.size() != arity) {
    return Status::InvalidArgument("attribute-name count does not match arity of " +
                                   vocab_->PredicateName(pred));
  }
  MDQA_ASSIGN_OR_RETURN(RelationSchema schema,
                        RelationSchema::Create(name, std::move(attr_names)));
  Relation out(std::move(schema));
  const FactTable* table = Table(pred);
  if (table == nullptr) return out;
  for (uint32_t i = 0; i < table->size(); ++i) {
    const Term* row = table->Row(i);
    Tuple tuple;
    tuple.reserve(arity);
    bool has_null = false;
    for (size_t j = 0; j < arity; ++j) {
      if (row[j].IsNull()) {
        has_null = true;
        tuple.push_back(Value::Str(vocab_->TermToString(row[j])));
      } else {
        tuple.push_back(vocab_->ConstantValue(row[j].id()));
      }
    }
    if (has_null && !keep_nulls) continue;
    MDQA_RETURN_IF_ERROR(out.Insert(std::move(tuple)));
  }
  return out;
}

std::string Instance::ToString() const {
  std::vector<std::string> lines;
  for (uint32_t pred : Predicates()) {
    for (const Atom& a : Facts(pred)) {
      lines.push_back(vocab_->AtomToString(a) + ".");
    }
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

std::string Instance::ToCanonicalString() const {
  // Collect facts once; renaming only touches null ids.
  std::vector<Atom> atoms;
  bool any_null = false;
  for (uint32_t pred : Predicates()) {
    for (Atom& a : Facts(pred)) {
      for (Term t : a.terms) any_null = any_null || t.IsNull();
      atoms.push_back(std::move(a));
    }
  }
  if (!any_null) return ToString();

  // Greedy canonical renaming: repeatedly render every fact with the
  // nulls assigned so far (unassigned ones as the placeholder "_?"),
  // and assign the next canonical id to the first unassigned null of
  // the lexicographically smallest line containing one. Deterministic
  // whenever co-occurring constants / already-named nulls distinguish
  // the nulls; automorphic groups tie-break by scan order.
  std::unordered_map<uint32_t, uint32_t> canon;  // null id -> canonical id
  auto render = [&](const Atom& a) {
    std::string s = vocab_->PredicateName(a.predicate) + "(";
    for (size_t i = 0; i < a.terms.size(); ++i) {
      if (i > 0) s += ", ";
      Term t = a.terms[i];
      if (t.IsNull()) {
        auto it = canon.find(t.id());
        s += it == canon.end() ? std::string("_?")
                               : "_n" + std::to_string(it->second);
      } else {
        s += vocab_->TermToString(t);
      }
    }
    s += ").";
    return s;
  };
  while (true) {
    const Atom* best = nullptr;
    std::string best_line;
    for (const Atom& a : atoms) {
      bool unassigned = false;
      for (Term t : a.terms) {
        if (t.IsNull() && canon.find(t.id()) == canon.end()) {
          unassigned = true;
          break;
        }
      }
      if (!unassigned) continue;
      std::string line = render(a);
      if (best == nullptr || line < best_line) {
        best = &a;
        best_line = std::move(line);
      }
    }
    if (best == nullptr) break;
    for (Term t : best->terms) {
      if (t.IsNull() && canon.find(t.id()) == canon.end()) {
        canon.emplace(t.id(), static_cast<uint32_t>(canon.size()));
        break;  // one assignment per pass: later lines may re-rank
      }
    }
  }
  std::vector<std::string> lines;
  lines.reserve(atoms.size());
  for (const Atom& a : atoms) lines.push_back(render(a));
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

}  // namespace mdqa::datalog
