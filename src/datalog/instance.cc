#include "datalog/instance.h"

#include <algorithm>

namespace mdqa::datalog {

const char* StorageModeToString(StorageMode mode) {
  switch (mode) {
    case StorageMode::kRow:
      return "row";
    case StorageMode::kColumnar:
      return "columnar";
  }
  return "unknown";
}

size_t FactTable::HashRow(const Term* row) const {
  size_t seed = arity_;
  for (size_t i = 0; i < arity_; ++i) {
    HashCombine(&seed, TermHash{}(row[i]));
  }
  return seed & hash_mask_;
}

int64_t FactTable::FindRow(const Term* row) const {
  auto it = dedup_.find(HashRow(row));
  if (it == dedup_.end()) return -1;
  // The bucket is keyed by a lossy hash: verify full-row equality before
  // trusting a candidate (two distinct rows must never alias).
  for (uint32_t idx : it->second) {
    if (std::equal(row, row + arity_, Row(idx))) return idx;
  }
  return -1;
}

bool FactTable::InSealedDict(size_t pos, Term t) const {
  for (const auto& seg : sealed_) {
    if (seg->column(pos).CodeOf(t) != Column::kNoCode) return true;
  }
  return false;
}

bool FactTable::Insert(const Term* row, uint32_t level) {
  int64_t existing = FindRow(row);
  if (existing >= 0) {
    uint32_t& lvl = levels_[static_cast<uint32_t>(existing)];
    lvl = std::min(lvl, level);
    return false;
  }
  uint32_t idx = static_cast<uint32_t>(size());
  data_.insert(data_.end(), row, row + arity_);
  levels_.push_back(level);
  dedup_[HashRow(row)].push_back(idx);
  if (mode_ == StorageMode::kRow) {
    for (size_t pos = 0; pos < arity_; ++pos) {
      auto& bucket = index_[pos][TermHash{}(row[pos]) & hash_mask_];
      std::vector<uint32_t>* rows = nullptr;
      for (auto& [term, term_rows] : bucket) {
        if (term == row[pos]) {
          rows = &term_rows;
          break;
        }
      }
      if (rows == nullptr) {
        bucket.emplace_back(row[pos], std::vector<uint32_t>());
        rows = &bucket.back().second;
        ++distinct_[pos];
      }
      rows->push_back(idx);
    }
  } else {
    fresh_scratch_.assign(arity_, 0);
    overlay_.Append(row, fresh_scratch_.data());
    for (size_t pos = 0; pos < arity_; ++pos) {
      // New to the table iff new to the overlay dictionary and absent
      // from every sealed dictionary (checked only on overlay misses).
      if (fresh_scratch_[pos] != 0 && !InSealedDict(pos, row[pos])) {
        ++distinct_[pos];
      }
    }
  }
  return true;
}

std::vector<uint32_t> FactTable::Probe(size_t pos, Term t) const {
  if (const std::vector<uint32_t>* rows = ProbeRef(pos, t)) return *rows;
  // Columnar multi-segment gather: per-segment postings are ascending and
  // segment row ranges are disjoint in base order, so concatenation with
  // the base offset is globally ascending without a merge.
  std::vector<uint32_t> out;
  for (size_t k = 0; k < NumSegments(); ++k) {
    const SegmentView view = SegmentAt(k);
    const uint32_t code = view.segment->column(pos).CodeOf(t);
    if (code == Column::kNoCode) continue;
    for (uint32_t local : view.segment->column(pos).Postings(code)) {
      out.push_back(view.base + local);
    }
  }
  return out;
}

const std::vector<uint32_t>* FactTable::ProbeRef(size_t pos, Term t) const {
  static const std::vector<uint32_t> kEmpty;
  if (mode_ == StorageMode::kRow) {
    const auto& m = index_[pos];
    auto it = m.find(TermHash{}(t) & hash_mask_);
    if (it == m.end()) return &kEmpty;
    // Verified probe: only the bucket entry whose term equals `t` counts
    // (hash collisions share a bucket).
    for (const auto& [term, rows] : it->second) {
      if (term == t) return &rows;
    }
    return &kEmpty;
  }
  // Columnar: the postings of a single segment based at row 0 are the
  // global row list verbatim; anything else needs an offset gather.
  const std::vector<uint32_t>* single = nullptr;
  for (size_t k = 0; k < NumSegments(); ++k) {
    const SegmentView view = SegmentAt(k);
    const uint32_t code = view.segment->column(pos).CodeOf(t);
    if (code == Column::kNoCode) continue;
    if (single != nullptr || view.base != 0) return nullptr;
    single = &view.segment->column(pos).Postings(code);
  }
  return single == nullptr ? &kEmpty : single;
}

size_t FactTable::ProbeCount(size_t pos, Term t) const {
  if (mode_ == StorageMode::kRow) {
    const std::vector<uint32_t>* rows = ProbeRef(pos, t);
    return rows == nullptr ? 0 : rows->size();
  }
  size_t n = 0;
  for (size_t k = 0; k < NumSegments(); ++k) {
    const SegmentView view = SegmentAt(k);
    const uint32_t code = view.segment->column(pos).CodeOf(t);
    if (code != Column::kNoCode) {
      n += view.segment->column(pos).Postings(code).size();
    }
  }
  return n;
}

void FactTable::SealOverlay() {
  if (mode_ != StorageMode::kColumnar || overlay_.rows() == 0) return;
  sealed_base_.push_back(overlay_base_);
  overlay_base_ += overlay_.rows();
  sealed_.push_back(std::make_shared<const Segment>(std::move(overlay_)));
  overlay_ = Segment(arity_);
  if (hash_mask_ != ~0ull) overlay_.set_hash_mask_for_test(hash_mask_);
}

void FactTable::set_hash_mask_for_test(uint64_t mask) {
  hash_mask_ = mask;
  overlay_.set_hash_mask_for_test(mask);
}

uint64_t FactTable::MemoryEstimateBytes() const {
  uint64_t bytes = data_.capacity() * sizeof(Term) +
                   levels_.capacity() * sizeof(uint32_t);
  // Hash maps: count buckets plus the per-entry row vectors. This is an
  // estimate for budget accounting, not an allocator-exact figure.
  bytes += dedup_.bucket_count() *
           (sizeof(size_t) + sizeof(std::vector<uint32_t>));
  for (const auto& [_, rows] : dedup_) {
    bytes += rows.capacity() * sizeof(uint32_t);
  }
  for (const auto& m : index_) {
    bytes += m.bucket_count() *
             (sizeof(uint64_t) +
              sizeof(std::vector<std::pair<Term, std::vector<uint32_t>>>));
    for (const auto& [_, bucket] : m) {
      bytes += bucket.capacity() * sizeof(std::pair<Term, std::vector<uint32_t>>);
      for (const auto& [term, rows] : bucket) {
        (void)term;
        bytes += rows.capacity() * sizeof(uint32_t);
      }
    }
  }
  if (mode_ == StorageMode::kColumnar) {
    for (const auto& seg : sealed_) bytes += seg->MemoryEstimateBytes();
    bytes += overlay_.MemoryEstimateBytes();
  }
  return bytes;
}

Instance Instance::FromProgram(const Program& program, StorageMode storage) {
  Instance inst(program.vocab(), storage);
  for (const Atom& f : program.facts()) {
    inst.AddFact(f, /*level=*/0);
  }
  return inst;
}

FactTable* Instance::EnsureOwnedTable(uint32_t pred, size_t arity) {
  auto it = tables_.find(pred);
  if (it == tables_.end()) {
    it = tables_.emplace(pred, std::make_shared<FactTable>(arity, storage_))
             .first;
  } else if (it->second.use_count() > 1) {
    // Copy-on-write: the table is shared with a snapshot; clone before
    // the first mutation so the snapshot keeps its frozen view.
    it->second = std::make_shared<FactTable>(*it->second);
  }
  return it->second.get();
}

bool Instance::AddFact(const Atom& fact, uint32_t level) {
  return MutableTable(fact.predicate, fact.arity())
      ->Insert(fact.terms.data(), level);
}

bool Instance::Contains(const Atom& fact) const {
  const FactTable* table = Table(fact.predicate);
  return table != nullptr && table->Contains(fact.terms.data());
}

const FactTable* Instance::Table(uint32_t pred) const {
  auto it = tables_.find(pred);
  return it == tables_.end() ? nullptr : it->second.get();
}

FactTable* Instance::MutableTable(uint32_t pred, size_t arity) {
  ++generation_;
  return EnsureOwnedTable(pred, arity);
}

void Instance::Freeze() {
  // A pure watermark update on tables this view owns logically; it does
  // not count as a mutation of the fact set, but it must not write into
  // a table shared with a snapshot either — cloning would defeat the
  // point, so shared tables are frozen in place (the watermark is
  // monotone and both views agree on the rows it covers). Columnar
  // tables that are NOT shared additionally seal their overlay into the
  // immutable segment chain, so later copy-on-write clones share the
  // frozen base's dictionaries and postings; a shared table's chain must
  // stay untouched — a concurrent snapshot reader may be probing it.
  for (auto& [_, table] : tables_) {
    table->MarkFrozen();
    if (table.use_count() == 1) table->SealOverlay();
  }
}

bool Instance::SharesTableWith(const Instance& other, uint32_t pred) const {
  auto a = tables_.find(pred);
  auto b = other.tables_.find(pred);
  if (a == tables_.end() || b == other.tables_.end()) return false;
  return a->second.get() == b->second.get();
}

std::vector<uint32_t> Instance::Predicates() const {
  std::vector<uint32_t> out;
  out.reserve(tables_.size());
  for (const auto& [pred, table] : tables_) {
    if (table->size() > 0) out.push_back(pred);
  }
  std::sort(out.begin(), out.end());
  return out;
}

size_t Instance::TotalFacts() const {
  size_t n = 0;
  for (const auto& [_, table] : tables_) n += table->size();
  return n;
}

uint64_t Instance::MemoryEstimateBytes() const {
  uint64_t bytes = 0;
  for (const auto& [_, table] : tables_) {
    bytes += table->MemoryEstimateBytes();
  }
  return bytes;
}

size_t Instance::CountFacts(uint32_t pred) const {
  const FactTable* table = Table(pred);
  return table == nullptr ? 0 : table->size();
}

InstanceStatistics Instance::CollectStatistics() const {
  InstanceStatistics stats;
  stats.tables.reserve(tables_.size());
  for (const auto& [pred, table] : tables_) {
    TableStatistics t;
    t.rows = table->size();
    t.distinct.reserve(table->arity());
    for (size_t i = 0; i < table->arity(); ++i) {
      t.distinct.push_back(table->DistinctAt(i));
    }
    stats.total_facts += t.rows;
    stats.max_rows = std::max(stats.max_rows, t.rows);
    stats.tables.emplace(pred, std::move(t));
  }
  return stats;
}

std::vector<Atom> Instance::Facts(uint32_t pred) const {
  std::vector<Atom> out;
  const FactTable* table = Table(pred);
  if (table == nullptr) return out;
  out.reserve(table->size());
  for (uint32_t i = 0; i < table->size(); ++i) {
    const Term* row = table->Row(i);
    out.emplace_back(pred, std::vector<Term>(row, row + table->arity()));
  }
  return out;
}

Status Instance::LoadRelation(const Relation& rel) {
  MDQA_ASSIGN_OR_RETURN(uint32_t pred,
                        vocab_->InternPredicate(rel.name(), rel.arity()));
  for (const Tuple& row : rel.rows()) {
    std::vector<Term> terms;
    terms.reserve(row.size());
    for (const Value& v : row) terms.push_back(vocab_->Const(v));
    AddFact(Atom(pred, std::move(terms)), /*level=*/0);
  }
  return Status::Ok();
}

Status Instance::LoadDatabase(const Database& db) {
  for (const std::string& name : db.RelationNames()) {
    MDQA_ASSIGN_OR_RETURN(const Relation* rel, db.GetRelation(name));
    MDQA_RETURN_IF_ERROR(LoadRelation(*rel));
  }
  return Status::Ok();
}

Result<Relation> Instance::ExportRelation(uint32_t pred,
                                          const std::string& name,
                                          std::vector<std::string> attr_names,
                                          bool keep_nulls) const {
  const size_t arity = vocab_->PredicateArity(pred);
  if (attr_names.empty()) {
    for (size_t i = 0; i < arity; ++i) {
      attr_names.push_back("a" + std::to_string(i));
    }
  }
  if (attr_names.size() != arity) {
    return Status::InvalidArgument("attribute-name count does not match arity of " +
                                   vocab_->PredicateName(pred));
  }
  MDQA_ASSIGN_OR_RETURN(RelationSchema schema,
                        RelationSchema::Create(name, std::move(attr_names)));
  Relation out(std::move(schema));
  const FactTable* table = Table(pred);
  if (table == nullptr) return out;
  for (uint32_t i = 0; i < table->size(); ++i) {
    const Term* row = table->Row(i);
    Tuple tuple;
    tuple.reserve(arity);
    bool has_null = false;
    for (size_t j = 0; j < arity; ++j) {
      if (row[j].IsNull()) {
        has_null = true;
        tuple.push_back(Value::Str(vocab_->TermToString(row[j])));
      } else {
        tuple.push_back(vocab_->ConstantValue(row[j].id()));
      }
    }
    if (has_null && !keep_nulls) continue;
    MDQA_RETURN_IF_ERROR(out.Insert(std::move(tuple)));
  }
  return out;
}

std::string Instance::ToString() const {
  std::vector<std::string> lines;
  for (uint32_t pred : Predicates()) {
    for (const Atom& a : Facts(pred)) {
      lines.push_back(vocab_->AtomToString(a) + ".");
    }
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

std::string Instance::ToCanonicalString() const {
  // Collect facts once; renaming only touches null ids.
  std::vector<Atom> atoms;
  bool any_null = false;
  for (uint32_t pred : Predicates()) {
    for (Atom& a : Facts(pred)) {
      for (Term t : a.terms) any_null = any_null || t.IsNull();
      atoms.push_back(std::move(a));
    }
  }
  if (!any_null) return ToString();

  // Greedy canonical renaming: repeatedly render every fact with the
  // nulls assigned so far (unassigned ones as the placeholder "_?"),
  // and assign the next canonical id to the first unassigned null of
  // the lexicographically smallest line containing one. Deterministic
  // whenever co-occurring constants / already-named nulls distinguish
  // the nulls; automorphic groups tie-break by scan order.
  std::unordered_map<uint32_t, uint32_t> canon;  // null id -> canonical id
  auto render = [&](const Atom& a) {
    std::string s = vocab_->PredicateName(a.predicate) + "(";
    for (size_t i = 0; i < a.terms.size(); ++i) {
      if (i > 0) s += ", ";
      Term t = a.terms[i];
      if (t.IsNull()) {
        auto it = canon.find(t.id());
        s += it == canon.end() ? std::string("_?")
                               : "_n" + std::to_string(it->second);
      } else {
        s += vocab_->TermToString(t);
      }
    }
    s += ").";
    return s;
  };
  while (true) {
    const Atom* best = nullptr;
    std::string best_line;
    for (const Atom& a : atoms) {
      bool unassigned = false;
      for (Term t : a.terms) {
        if (t.IsNull() && canon.find(t.id()) == canon.end()) {
          unassigned = true;
          break;
        }
      }
      if (!unassigned) continue;
      std::string line = render(a);
      if (best == nullptr || line < best_line) {
        best = &a;
        best_line = std::move(line);
      }
    }
    if (best == nullptr) break;
    for (Term t : best->terms) {
      if (t.IsNull() && canon.find(t.id()) == canon.end()) {
        canon.emplace(t.id(), static_cast<uint32_t>(canon.size()));
        break;  // one assignment per pass: later lines may re-rank
      }
    }
  }
  std::vector<std::string> lines;
  lines.reserve(atoms.size());
  for (const Atom& a : atoms) lines.push_back(render(a));
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

}  // namespace mdqa::datalog
