#include "datalog/chase.h"

#include <algorithm>
#include <optional>
#include <unordered_set>

#include "datalog/analysis.h"
#include "datalog/provenance.h"

namespace mdqa::datalog {

namespace {

// A pending TGD trigger: the body homomorphism restricted to the frontier
// (head) variables, canonically ordered so triggers dedup per round.
struct Trigger {
  std::vector<Term> frontier_bindings;  // parallel to rule's frontier vars

  friend bool operator==(const Trigger& a, const Trigger& b) {
    return a.frontier_bindings == b.frontier_bindings;
  }
};

struct TriggerHash {
  size_t operator()(const Trigger& t) const {
    size_t seed = t.frontier_bindings.size();
    for (Term x : t.frontier_bindings) HashCombine(&seed, TermHash{}(x));
    return seed;
  }
};

// An on_match callback that records the frontier projection of each body
// homomorphism into `*set`.
std::function<bool(const Subst&)> MakeCollector(
    const std::vector<uint32_t>& frontier,
    std::unordered_set<Trigger, TriggerHash>* set) {
  return [&frontier, set](const Subst& subst) {
    Trigger t;
    t.frontier_bindings.reserve(frontier.size());
    for (uint32_t v : frontier) {
      t.frontier_bindings.push_back(Resolve(subst, Term::Variable(v)));
    }
    set->insert(std::move(t));
    return true;
  };
}

// Collects the triggers of one enumeration pass (one delta pass or one
// full pass) into `*out`.
//
// Serial path (`pool == nullptr`, pivot table missing, or fewer candidate
// rows than `min_parallel_seeds`): a single Enumerate on `eval` — exactly
// the legacy evaluation.
//
// Parallel path: the pivot atom's in-window rows are strided across
// shards run on `pool`. Each shard grounds the pivot atom against its
// rows (MatchAtom) and enumerates the *full* body under the same windows
// with that ground seed, so every homomorphism it finds has the pivot
// bound to exactly that row; the union of the shard trigger sets is
// therefore the serial trigger set. The instance is read-only throughout
// and the budget's counters are atomic, so shards share both safely. A
// counter trip can land on any shard — the first non-OK status in shard
// order is returned, and the merged set is then a subset of the serial
// one (sound: a truncated chase is an under-approximation either way).
Status CollectPassTriggers(const Instance& instance, const Rule& rule,
                           const std::vector<uint32_t>& frontier,
                           const std::vector<AtomLevelWindow>& windows,
                           size_t pivot, const CqEvaluator& eval,
                           ThreadPool* pool, uint64_t min_parallel_seeds,
                           ExecutionBudget* budget,
                           std::unordered_set<Trigger, TriggerHash>* out) {
  auto serial = [&]() {
    return eval.Enumerate(rule.body, rule.negated, rule.comparisons, Subst{},
                          windows, MakeCollector(frontier, out));
  };
  if (pool == nullptr || rule.body.empty()) return serial();
  const Atom& pivot_atom = rule.body[pivot];
  const FactTable* table = instance.Table(pivot_atom.predicate);
  if (table == nullptr) return serial();  // empty body relation: no matches

  uint32_t min_level = 0;
  uint32_t max_level = std::numeric_limits<uint32_t>::max();
  if (!windows.empty()) {
    min_level = windows[pivot].min_level;
    max_level = windows[pivot].max_level;
  }
  std::vector<uint32_t> seeds;
  seeds.reserve(table->size());
  for (uint32_t r = 0; r < table->size(); ++r) {
    const uint32_t lvl = table->Level(r);
    if (lvl >= min_level && lvl <= max_level) seeds.push_back(r);
  }
  if (seeds.size() < std::max<uint64_t>(min_parallel_seeds, 1)) {
    return serial();
  }

  // A few shards per worker so uneven seed costs still balance.
  const size_t shards = std::min(seeds.size(), pool->size() * 4);
  std::vector<std::unordered_set<Trigger, TriggerHash>> local(shards);
  std::vector<Status> shard_status(shards, Status::Ok());
  pool->ParallelFor(shards, [&](size_t s) {
    CqEvaluator shard_eval(instance, nullptr, budget);
    auto collect = MakeCollector(frontier, &local[s]);
    Subst subst;
    std::vector<uint32_t> trail;
    for (size_t k = s; k < seeds.size(); k += shards) {
      subst.clear();
      trail.clear();
      if (!MatchAtom(pivot_atom, table->Row(seeds[k]), &subst, &trail)) {
        continue;  // pivot constants don't match this row
      }
      Status es = shard_eval.Enumerate(rule.body, rule.negated,
                                       rule.comparisons, subst, windows,
                                       collect);
      if (!es.ok()) {
        shard_status[s] = std::move(es);
        return;
      }
    }
  });
  for (size_t s = 0; s < shards; ++s) {
    MDQA_RETURN_IF_ERROR(shard_status[s]);
  }
  for (auto& l : local) out->merge(l);
  return Status::Ok();
}

// Union-find over terms for EGD application. Constants are always roots;
// merging two constants is the caller's inconsistency case.
class TermUnionFind {
 public:
  Term Find(Term t) {
    auto it = parent_.find(t.Key());
    if (it == parent_.end()) return t;
    Term root = Find(it->second);
    it->second = root;  // path compression
    return root;
  }

  // Pre: at least one of a, b is a labeled null (after Find).
  void Union(Term a, Term b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return;
    if (a.IsNull()) {
      parent_[a.Key()] = b;
    } else {
      parent_[b.Key()] = a;
    }
  }

  bool empty() const { return parent_.empty(); }

 private:
  std::unordered_map<uint64_t, Term> parent_;
};

// Rewrites the whole instance through `uf`, keeping the minimum level of
// merged duplicates. Only called when at least one merge happened.
Instance Canonicalize(const Instance& in, TermUnionFind* uf) {
  Instance out(in.vocab(), in.storage_mode());
  for (uint32_t pred : in.Predicates()) {
    const FactTable* table = in.Table(pred);
    const size_t arity = table->arity();
    std::vector<Term> row(arity);
    for (uint32_t i = 0; i < table->size(); ++i) {
      const Term* src = table->Row(i);
      for (size_t j = 0; j < arity; ++j) row[j] = uf->Find(src[j]);
      out.MutableTable(pred, arity)->Insert(row.data(), table->Level(i));
    }
  }
  // The rebuilt instance replaces `in` at the call sites; keep the
  // generation monotone so a frontier captured against `in` can never
  // collide with a later capture against the rebuilt object.
  out.EnsureGenerationAbove(in.generation());
  return out;
}

std::string WitnessString(const Vocabulary& vocab, const Rule& rule,
                          const Subst& subst) {
  std::string out = "rule [" + vocab.RuleToString(rule) + "] with ";
  bool first = true;
  for (const Atom& a : rule.body) {
    out += (first ? "" : ", ");
    out += vocab.AtomToString(SubstAtom(subst, a));
    first = false;
  }
  return out;
}

}  // namespace

const char* ChaseStopToString(ChaseStop stop) {
  switch (stop) {
    case ChaseStop::kNone:
      return "none";
    case ChaseStop::kRoundLimit:
      return "round-limit";
    case ChaseStop::kFactLimit:
      return "fact-limit";
    case ChaseStop::kBudget:
      return "budget";
    case ChaseStop::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

std::string ChaseFrontier::ToString() const {
  if (!valid) return "frontier: invalid";
  return "frontier: round=" + std::to_string(round) +
         " nulls=" + std::to_string(null_watermark) +
         " egd_merges=" + std::to_string(egd_merges) +
         " generation=" + std::to_string(generation) +
         " predicates=" + std::to_string(watermarks.size());
}

std::string ChaseStats::ToString() const {
  std::string out = "rounds=" + std::to_string(rounds) +
                    " firings=" + std::to_string(tgd_firings) +
                    " facts_added=" + std::to_string(facts_added) +
                    " nulls=" + std::to_string(nulls_created) +
                    " egd_merges=" + std::to_string(egd_merges);
  if (completeness == Completeness::kComplete) {
    out += reached_fixpoint ? " (fixpoint, complete)" : " (complete)";
  } else {
    out += " (truncated: ";
    out += ChaseStopToString(stop);
    out += ")";
  }
  if (incremental) {
    out += extend_fallback
               ? " [incremental: full re-chase fallback — " + fallback_reason +
                     "]"
               : " [incremental]";
  }
  return out;
}

namespace {

// Records the resume state of a completed run into `stats->frontier` and
// freezes the instance's segments — the capture point for Chase::Extend.
void CaptureFrontier(Instance* instance, ChaseStats* stats) {
  ChaseFrontier& f = stats->frontier;
  f.valid = true;
  f.round = stats->rounds;
  f.null_watermark = instance->vocab()->NumNulls();
  f.egd_merges = stats->egd_merges;
  f.generation = instance->generation();
  f.watermarks.clear();
  for (uint32_t pred : instance->Predicates()) {
    f.watermarks[pred] = static_cast<uint32_t>(instance->CountFacts(pred));
  }
  instance->Freeze();
}

}  // namespace

Result<ChaseStats> Chase::Run(const Program& program, Instance* instance,
                              const ChaseOptions& options) {
  ChaseStats stats;
  MDQA_RETURN_IF_ERROR(Run(program, instance, options, &stats));
  // The legacy contract: blowing max_facts is a hard error (the new
  // out-param overload reports it as truncation metadata instead).
  if (stats.stop == ChaseStop::kFactLimit) return stats.interruption;
  return stats;
}

Status Chase::Run(const Program& program, Instance* instance,
                  const ChaseOptions& options, ChaseStats* stats) {
  *stats = ChaseStats{};
  ExecutionBudget* budget = options.budget;
  // First truncation seen; non-OK means "stop gracefully, result is a
  // sound partial instance". Hard faults return immediately instead.
  Status interrupt = Status::Ok();
  auto interrupted = [&]() { return !interrupt.ok(); };
  auto note_interrupt = [&](Status s, ChaseStop reason) {
    if (interrupt.ok()) {
      interrupt = std::move(s);
      stats->stop = reason;
    }
  };
  // Routes a budget trip into `interrupt`; returns non-OK only for hard
  // (non-truncation) faults, e.g. an injected kInternal.
  auto absorb = [&](Status s, ChaseStop reason) -> Status {
    if (s.ok() || interrupted()) return Status::Ok();
    if (ExecutionBudget::IsTruncation(s)) {
      note_interrupt(std::move(s), reason);
      return Status::Ok();
    }
    return s;
  };
  auto budget_reason = [](const Status& s) {
    return s.code() == StatusCode::kCancelled ? ChaseStop::kCancelled
                                              : ChaseStop::kBudget;
  };

  Vocabulary* vocab = instance->vocab().get();
  const std::vector<Rule> tgds = program.Tgds();
  for (const Rule& r : tgds) {
    MDQA_RETURN_IF_ERROR(r.Validate());
  }

  // Per-rule cached structure: frontier vars and existential vars.
  struct RuleInfo {
    const Rule* rule;
    size_t index;  // into tgds order (keys the semi-oblivious fired set)
    std::vector<uint32_t> frontier;
    std::vector<uint32_t> existential;
  };
  std::vector<RuleInfo> infos;
  infos.reserve(tgds.size());
  for (size_t i = 0; i < tgds.size(); ++i) {
    infos.push_back(RuleInfo{&tgds[i], i, tgds[i].FrontierVariables(),
                             tgds[i].ExistentialVariables()});
  }
  // Semi-oblivious mode: remember which frontier bindings already fired,
  // across rounds (full passes would otherwise refire them forever).
  std::vector<std::unordered_set<Trigger, TriggerHash>> fired(tgds.size());

  // Stratified negation: group rules by the stratum of their head
  // predicates and run strata to fixpoint in order — a rule only negates
  // predicates from strictly lower (already fixed) strata, keeping the
  // evaluation monotone within each stratum. Negation-free programs get
  // a single stratum and behave exactly as before.
  std::unordered_map<uint32_t, int> strata_of;
  MDQA_ASSIGN_OR_RETURN(strata_of, StratifyProgram(program));
  int max_stratum = 0;
  auto rule_stratum = [&strata_of](const Rule& r) {
    int s = 0;
    for (const Atom& h : r.head) {
      auto it = strata_of.find(h.predicate);
      if (it != strata_of.end()) s = std::max(s, it->second);
    }
    return s;
  };
  for (const Rule& r : tgds) max_stratum = std::max(max_stratum, rule_stratum(r));
  std::vector<std::vector<RuleInfo>> by_stratum(
      static_cast<size_t>(max_stratum) + 1);
  for (const RuleInfo& info : infos) {
    by_stratum[static_cast<size_t>(rule_stratum(*info.rule))].push_back(info);
  }

  if (options.egd_mode == EgdMode::kInterleaved) {
    Result<uint64_t> merges = ApplyEgds(program, instance, budget);
    if (!merges.ok()) {
      const ChaseStop reason = budget_reason(merges.status());
      MDQA_RETURN_IF_ERROR(absorb(merges.status(), reason));
    } else {
      stats->egd_merges += *merges;
    }
  }

  // EGD merges rewrite existing facts in place (keeping their old levels),
  // which delta windows would miss; the round after a merge runs naive.
  bool force_full = false;
  uint64_t round = 0;  // global across strata: levels stay monotone
  bool budget_exhausted = false;

  for (const std::vector<RuleInfo>& stratum_rules : by_stratum) {
  if (budget_exhausted || interrupted()) break;
  bool stratum_start = true;
  while (true) {
    if (++round > options.max_rounds) {
      --round;
      budget_exhausted = true;
      break;
    }
    if (budget != nullptr) {
      Status bs = budget->CheckNow("chase:round");
      if (bs.ok()) bs = budget->ChargeRounds(1);
      const ChaseStop reason = budget_reason(bs);
      MDQA_RETURN_IF_ERROR(absorb(std::move(bs), reason));
      if (interrupted()) break;
    }
    const uint32_t level = static_cast<uint32_t>(round);
    const bool full_pass =
        stratum_start || !options.semi_naive || force_full;
    stratum_start = false;
    force_full = false;
    bool changed = false;

    for (const RuleInfo& info : stratum_rules) {
      if (interrupted()) break;
      const Rule& rule = *info.rule;
      CqEvaluator eval(*instance, nullptr, budget);

      // Collect candidate triggers first (enumeration must not observe
      // concurrent mutation), deduped on frontier bindings. With a pool,
      // each pass's matching is sharded across workers (the instance is
      // immutable here); without one, CollectPassTriggers is exactly the
      // legacy single-threaded Enumerate.
      std::unordered_set<Trigger, TriggerHash> triggers;

      if (full_pass) {
        // Partition on the body atom with the largest table: most seeds,
        // so the cheapest residual join per seed.
        size_t pivot = 0;
        if (options.pool != nullptr) {
          uint32_t best = 0;
          for (size_t j = 0; j < rule.body.size(); ++j) {
            const FactTable* t = instance->Table(rule.body[j].predicate);
            const uint32_t sz = t != nullptr ? t->size() : 0;
            if (sz > best) {
              best = sz;
              pivot = j;
            }
          }
        }
        Status es = CollectPassTriggers(
            *instance, rule, info.frontier, {}, pivot, eval, options.pool,
            options.min_parallel_seeds, budget, &triggers);
        const ChaseStop reason = budget_reason(es);
        MDQA_RETURN_IF_ERROR(absorb(std::move(es), reason));
      } else {
        // Semi-naive: one pass per delta atom d — atom d restricted to the
        // previous round's facts, atoms before d to strictly older ones.
        // The delta atom is the natural partition pivot: its window is
        // exactly the last round's new facts.
        const uint32_t prev = level - 1;
        for (size_t d = 0; d < rule.body.size() && !interrupted(); ++d) {
          std::vector<AtomLevelWindow> windows(rule.body.size());
          for (size_t j = 0; j < rule.body.size(); ++j) {
            if (j < d) {
              windows[j].max_level = prev > 0 ? prev - 1 : 0;
              if (prev == 0) windows[j].min_level = 1;  // empty window
            } else if (j == d) {
              windows[j].min_level = prev;
              windows[j].max_level = prev;
            }  // j > d: unrestricted (everything known so far)
          }
          Status es = CollectPassTriggers(
              *instance, rule, info.frontier, windows, d, eval, options.pool,
              options.min_parallel_seeds, budget, &triggers);
          const ChaseStop reason = budget_reason(es);
          MDQA_RETURN_IF_ERROR(absorb(std::move(es), reason));
        }
      }
      if (interrupted()) break;

      // Canonical apply order: sort the deduped triggers on their frontier
      // bindings (Term::operator< is total). This makes the firing order —
      // and with it null numbering, restricted-chase skips, and the final
      // instance — a function of the trigger *set* alone, independent of
      // enumeration order, hash-set iteration order, and thread count:
      // the parallel chase is bit-identical to the serial one.
      std::vector<const Trigger*> ordered;
      ordered.reserve(triggers.size());
      for (const Trigger& t : triggers) ordered.push_back(&t);
      std::sort(ordered.begin(), ordered.end(),
                [](const Trigger* a, const Trigger* b) {
                  return a->frontier_bindings < b->frontier_bindings;
                });

      // Apply triggers: restricted chase — skip when the head is already
      // satisfied (facts fired earlier this round count, so equivalent
      // triggers cost one null tuple, not many).
      // The probe is polled once per 16 triggers through a local tick
      // (the first trigger always polls, so armed faults and expired
      // deadlines still surface deterministically); ChargeFacts below
      // stays per-fact so fact caps trip exactly.
      uint32_t trigger_tick = 0;
      for (const Trigger* trig_ptr : ordered) {
        const Trigger& trig = *trig_ptr;
        if (budget != nullptr && (trigger_tick++ & 15u) == 0) {
          Status bs = budget->Check("chase:trigger");
          const ChaseStop reason = budget_reason(bs);
          MDQA_RETURN_IF_ERROR(absorb(std::move(bs), reason));
        }
        if (interrupted()) break;
        Subst h;
        for (size_t i = 0; i < info.frontier.size(); ++i) {
          h[info.frontier[i]] = trig.frontier_bindings[i];
        }
        if (options.restricted) {
          CqEvaluator head_eval(*instance, nullptr, budget);
          Result<bool> satisfied = head_eval.Satisfiable(rule.head, {}, h);
          if (!satisfied.ok()) {
            const ChaseStop reason = budget_reason(satisfied.status());
            MDQA_RETURN_IF_ERROR(absorb(satisfied.status(), reason));
            break;
          }
          if (*satisfied) continue;
        } else if (!fired[info.index].insert(trig).second) {
          continue;  // semi-oblivious: this frontier already fired
        }

        // Ground body witness for provenance, found against the
        // pre-firing instance (opt-in: one extra evaluation per firing).
        std::vector<Atom> witness;
        if (options.provenance != nullptr) {
          CqEvaluator witness_eval(*instance, nullptr, budget);
          Status ws = witness_eval.Enumerate(
              rule.body, rule.negated, rule.comparisons, h, {},
              [&](const Subst& theta) {
                witness.reserve(rule.body.size());
                for (const Atom& b : rule.body) {
                  witness.push_back(SubstAtom(theta, b));
                }
                return false;  // first witness suffices
              });
          if (!ws.ok()) {
            const ChaseStop reason = budget_reason(ws);
            MDQA_RETURN_IF_ERROR(absorb(std::move(ws), reason));
            break;
          }
        }

        for (uint32_t z : info.existential) {
          h[z] = vocab->FreshNull();
          ++stats->nulls_created;
        }
        ++stats->tgd_firings;
        for (const Atom& head_atom : rule.head) {
          Atom fact = SubstAtom(h, head_atom);
          if (instance->AddFact(fact, level)) {
            ++stats->facts_added;
            changed = true;
            if (budget != nullptr) {
              Status fs = budget->ChargeFacts(1);
              const ChaseStop reason = budget_reason(fs);
              MDQA_RETURN_IF_ERROR(absorb(std::move(fs), reason));
            }
            if (options.provenance != nullptr) {
              options.provenance->Record(
                  fact, ProvenanceStore::Derivation{rule, witness});
            }
          }
        }
        if (instance->TotalFacts() > options.max_facts) {
          note_interrupt(
              Status::ResourceExhausted(
                  "chase exceeded max_facts=" +
                  std::to_string(options.max_facts) + " at round " +
                  std::to_string(round)),
              ChaseStop::kFactLimit);
          break;
        }
      }
    }
    if (interrupted()) break;

    if (options.egd_mode == EgdMode::kInterleaved) {
      Result<uint64_t> merges = ApplyEgds(program, instance, budget);
      if (!merges.ok()) {
        const ChaseStop reason = budget_reason(merges.status());
        MDQA_RETURN_IF_ERROR(absorb(merges.status(), reason));
        break;
      }
      stats->egd_merges += *merges;
      if (*merges > 0) {
        changed = true;
        force_full = true;
      }
    }
    // Estimating memory walks the whole instance, so only pay for it
    // when a limit was actually configured.
    if (budget != nullptr && budget->has_memory_limit()) {
      Status ms = budget->NoteMemory(instance->MemoryEstimateBytes());
      const ChaseStop reason = budget_reason(ms);
      MDQA_RETURN_IF_ERROR(absorb(std::move(ms), reason));
      if (interrupted()) break;
    }

    stats->rounds = round;
    if (!changed) break;  // this stratum reached its fixpoint
  }
  }
  stats->rounds = round;
  stats->reached_fixpoint = !budget_exhausted && !interrupted();

  // Post-phase EGDs and the constraint check still run on the legacy
  // round-limit path (unchanged behaviour) but not after a budget trip:
  // the caller asked us to stop working.
  if (!interrupted() && options.egd_mode == EgdMode::kPost) {
    Result<uint64_t> merges = ApplyEgds(program, instance, budget);
    if (!merges.ok()) {
      const ChaseStop reason = budget_reason(merges.status());
      MDQA_RETURN_IF_ERROR(absorb(merges.status(), reason));
    } else {
      stats->egd_merges += *merges;
    }
  }
  if (!interrupted() && options.check_constraints) {
    Status cs = CheckConstraints(program, *instance, budget);
    const ChaseStop reason = budget_reason(cs);
    MDQA_RETURN_IF_ERROR(absorb(std::move(cs), reason));
  }

  if (interrupted()) {
    stats->reached_fixpoint = false;
    stats->completeness = Completeness::kTruncated;
    stats->interruption = interrupt;
    return Status::Ok();
  }
  if (budget_exhausted) {
    stats->completeness = Completeness::kTruncated;
    stats->stop = ChaseStop::kRoundLimit;
    stats->interruption = Status::ResourceExhausted(
        "chase stopped at max_rounds=" + std::to_string(options.max_rounds));
    return Status::Ok();
  }
  // Fixpoint reached and nothing cut the run short: the instance is the
  // full chase result, so record the resume state Extend needs.
  CaptureFrontier(instance, stats);
  return Status::Ok();
}

Status Chase::Extend(const Program& program, Instance* instance,
                     const ChaseFrontier& frontier,
                     const std::vector<Atom>& delta_facts,
                     const ChaseOptions& options, ChaseStats* stats) {
  *stats = ChaseStats{};
  stats->incremental = true;
  if (!frontier.valid) {
    return Status::FailedPrecondition(
        "chase frontier is invalid (was the previous run truncated?)");
  }
  if (frontier.generation != instance->generation()) {
    return Status::FailedPrecondition(
        "stale chase frontier: instance generation is " +
        std::to_string(instance->generation()) + " but the frontier was "
        "captured at " + std::to_string(frontier.generation));
  }
  for (const Atom& f : delta_facts) {
    if (!f.IsGround()) {
      return Status::InvalidArgument("delta facts must be ground");
    }
  }

  const std::vector<Rule> egds = program.Egds();
  const bool has_egds = options.egd_mode != EgdMode::kOff && !egds.empty();
  // Conservative fallback matrix (docs/incremental.md): program features
  // that break the soundness of a delta-seeded restart force an exact
  // full re-chase of program+delta instead — recorded, never silent.
  // Negation and the semi-oblivious chase are unconditional; EGDs and
  // form-(10) rules are narrowed by the position-dependency analysis —
  // they fall back only when the delta can actually reach them.
  std::string fallback;
  std::vector<const Rule*> form10_rules;
  for (const Rule& r : program.rules()) {
    if (!r.IsTgd()) continue;
    if (!r.negated.empty()) {
      fallback = "stratified negation (insertion is non-monotone)";
      break;
    }
    if (r.head.size() > 1 && !r.ExistentialVariables().empty()) {
      form10_rules.push_back(&r);
    }
  }
  if (fallback.empty() && !options.restricted) {
    // The semi-oblivious fired-trigger set is not part of the frontier,
    // so an extension cannot tell which frontier bindings already fired.
    fallback = "semi-oblivious chase (fired-trigger state not resumable)";
  }
  if (fallback.empty() && (has_egds || !form10_rules.empty())) {
    std::optional<ProgramAnalysis> local_analysis;
    const ProgramAnalysis* pa = options.analysis;
    if (pa == nullptr) {
      local_analysis.emplace(program);
      pa = &*local_analysis;
    }
    std::unordered_set<uint32_t> delta_preds;
    for (const Atom& f : delta_facts) delta_preds.insert(f.predicate);
    const std::unordered_set<uint32_t> dirty_closure =
        DependentPredicates(program, delta_preds);
    // An EGD matters only if the delta can feed its body AND it can
    // equate labeled nulls (a null-free EGD only no-ops or reports a
    // constant clash — both of which the alternation below reproduces).
    bool merges_possible = false;
    if (has_egds) {
      for (const Rule& egd : egds) {
        bool reachable = false;
        for (const Atom& b : egd.body) {
          if (dirty_closure.count(b.predicate) > 0) {
            reachable = true;
            break;
          }
        }
        if (reachable && !pa->EgdIsNullFree(egd)) {
          merges_possible = true;
          break;
        }
      }
    }
    if (!options.egds_separable && merges_possible) {
      fallback =
          "EGDs not declared separable, and the delta reaches an EGD "
          "that can merge labeled nulls";
    }
    if (fallback.empty() && !form10_rules.empty()) {
      // A form-(10) rule breaks delta soundness only when it can fire on
      // something new: its body must depend on the delta predicates — or,
      // when an EGD null merge is possible, on any predicate whose facts
      // such a merge can rewrite in place.
      std::unordered_set<uint32_t> seeds = delta_preds;
      if (merges_possible) {
        for (uint32_t p : pa->AffectedPredicates()) seeds.insert(p);
      }
      const std::unordered_set<uint32_t> feeds =
          DependentPredicates(program, seeds);
      for (const Rule* r : form10_rules) {
        bool fed = false;
        for (const Atom& b : r->body) {
          if (feeds.count(b.predicate) > 0) {
            fed = true;
            break;
          }
        }
        if (fed) {
          fallback =
              "form-(10)-shaped rule (multi-atom head with existentials) "
              "reachable from the delta";
          break;
        }
      }
    }
  }
  if (!fallback.empty()) {
    ChaseStats inner;
    Instance rebuilt =
        Instance::FromProgram(program, instance->storage_mode());
    for (const Atom& f : delta_facts) rebuilt.AddFact(f, /*level=*/0);
    MDQA_RETURN_IF_ERROR(Run(program, &rebuilt, options, &inner));
    inner.incremental = true;
    inner.extend_fallback = true;
    inner.fallback_reason = std::move(fallback);
    *stats = std::move(inner);
    *instance = std::move(rebuilt);
    return Status::Ok();
  }

  ExecutionBudget* budget = options.budget;
  Status interrupt = Status::Ok();
  auto interrupted = [&]() { return !interrupt.ok(); };
  auto note_interrupt = [&](Status s, ChaseStop reason) {
    if (interrupt.ok()) {
      interrupt = std::move(s);
      stats->stop = reason;
    }
  };
  auto absorb = [&](Status s, ChaseStop reason) -> Status {
    if (s.ok() || interrupted()) return Status::Ok();
    if (ExecutionBudget::IsTruncation(s)) {
      note_interrupt(std::move(s), reason);
      return Status::Ok();
    }
    return s;
  };
  auto budget_reason = [](const Status& s) {
    return s.code() == StatusCode::kCancelled ? ChaseStop::kCancelled
                                              : ChaseStop::kBudget;
  };

  Vocabulary* vocab = instance->vocab().get();
  // No deep copy of the rule set here (unlike Run): every rule was
  // already validated by Program::AddRule, and an extension is supposed
  // to be cheap relative to the program size. Variable classifications
  // are computed lazily, only for rules the delta actually reaches.
  struct RuleInfo {
    const Rule* rule;
    bool prepared = false;
    std::vector<uint32_t> frontier;
    std::vector<uint32_t> existential;
  };
  std::vector<RuleInfo> infos;
  for (const Rule& r : program.rules()) {
    if (r.IsTgd()) infos.push_back(RuleInfo{&r});
  }
  auto prepare = [](RuleInfo* info) {
    if (!info->prepared) {
      info->frontier = info->rule->FrontierVariables();
      info->existential = info->rule->ExistentialVariables();
      info->prepared = true;
    }
  };

  // Seed the delta one level above the frontier: the first delta pass's
  // windows (pinned to `seed_level`) then select exactly these facts.
  // Derivation levels therefore keep growing monotonically across
  // extensions — "level 0 == extensional" holds only for the original
  // base facts, which nothing renders and only the windows consume.
  // Predicate-level dirtiness, the delta-driven pruning that makes small
  // extensions cheap: `added_prev` holds the predicates that gained a
  // fact at the previous level (a rule whose body misses all of them
  // cannot fire in a semi-naive pass — every pivot window is empty), and
  // `dirty_since_egd` accumulates every touched predicate so the EGD
  // fixpoint re-runs only when an EGD body could actually see new facts.
  std::unordered_set<uint32_t> added_prev;
  std::unordered_set<uint32_t> dirty_since_egd;
  // Every predicate that gained a fact over the whole extension, for the
  // final constraint check: a constraint that held at frontier capture
  // can only fire again through one of these.
  std::unordered_set<uint32_t> dirty_total;

  const uint32_t seed_level = static_cast<uint32_t>(frontier.round) + 1;
  for (const Atom& f : delta_facts) {
    if (instance->AddFact(f, seed_level)) {
      ++stats->facts_added;
      added_prev.insert(f.predicate);
      dirty_since_egd.insert(f.predicate);
      dirty_total.insert(f.predicate);
      if (budget != nullptr) {
        Status fs = budget->ChargeFacts(1);
        const ChaseStop reason = budget_reason(fs);
        MDQA_RETURN_IF_ERROR(absorb(std::move(fs), reason));
      }
    }
  }

  uint64_t round = seed_level;  // the seed insertion consumed this round
  bool force_full = false;
  bool budget_exhausted = false;

  while (!interrupted() && !budget_exhausted) {  // TGD/EGD alternation
    while (true) {  // TGD rounds to fixpoint
      if (++round - frontier.round > options.max_rounds) {
        --round;
        budget_exhausted = true;
        break;
      }
      if (budget != nullptr) {
        Status bs = budget->CheckNow("chase:round");
        if (bs.ok()) bs = budget->ChargeRounds(1);
        const ChaseStop reason = budget_reason(bs);
        MDQA_RETURN_IF_ERROR(absorb(std::move(bs), reason));
        if (interrupted()) break;
      }
      const uint32_t level = static_cast<uint32_t>(round);
      const bool full_pass = !options.semi_naive || force_full;
      force_full = false;
      bool changed = false;
      std::unordered_set<uint32_t> added_this;

      for (RuleInfo& info : infos) {
        if (interrupted()) break;
        const Rule& rule = *info.rule;
        if (!full_pass) {
          // Delta-driven skip: no body predicate gained a fact at the
          // previous level, so every pivot window below is empty.
          bool relevant = false;
          for (const Atom& b : rule.body) {
            if (added_prev.count(b.predicate) > 0) {
              relevant = true;
              break;
            }
          }
          if (!relevant) continue;
        }
        prepare(&info);
        CqEvaluator eval(*instance, nullptr, budget);
        std::unordered_set<Trigger, TriggerHash> triggers;

        if (full_pass) {
          size_t pivot = 0;
          if (options.pool != nullptr) {
            uint32_t best = 0;
            for (size_t j = 0; j < rule.body.size(); ++j) {
              const FactTable* t = instance->Table(rule.body[j].predicate);
              const uint32_t sz = t != nullptr ? t->size() : 0;
              if (sz > best) {
                best = sz;
                pivot = j;
              }
            }
          }
          Status es = CollectPassTriggers(
              *instance, rule, info.frontier, {}, pivot, eval, options.pool,
              options.min_parallel_seeds, budget, &triggers);
          const ChaseStop reason = budget_reason(es);
          MDQA_RETURN_IF_ERROR(absorb(std::move(es), reason));
        } else {
          // Semi-naive restart: identical windows to Run's delta passes —
          // in the first extension round `prev == seed_level`, so the
          // delta atom ranges over exactly the seeded facts while earlier
          // atoms stay on strictly older (base) rows.
          const uint32_t prev = level - 1;
          for (size_t d = 0; d < rule.body.size() && !interrupted(); ++d) {
            // The pivot window is pinned to level `prev`; a pivot
            // predicate that gained nothing there selects nothing.
            if (added_prev.count(rule.body[d].predicate) == 0) continue;
            std::vector<AtomLevelWindow> windows(rule.body.size());
            for (size_t j = 0; j < rule.body.size(); ++j) {
              if (j < d) {
                windows[j].max_level = prev > 0 ? prev - 1 : 0;
                if (prev == 0) windows[j].min_level = 1;  // empty window
              } else if (j == d) {
                windows[j].min_level = prev;
                windows[j].max_level = prev;
              }  // j > d: unrestricted
            }
            Status es = CollectPassTriggers(
                *instance, rule, info.frontier, windows, d, eval,
                options.pool, options.min_parallel_seeds, budget, &triggers);
            const ChaseStop reason = budget_reason(es);
            MDQA_RETURN_IF_ERROR(absorb(std::move(es), reason));
          }
        }
        if (interrupted()) break;

        // Canonical apply order, as in Run: sorted on frontier bindings,
        // so the extension is deterministic at any thread count.
        std::vector<const Trigger*> ordered;
        ordered.reserve(triggers.size());
        for (const Trigger& t : triggers) ordered.push_back(&t);
        std::sort(ordered.begin(), ordered.end(),
                  [](const Trigger* a, const Trigger* b) {
                    return a->frontier_bindings < b->frontier_bindings;
                  });

        uint32_t trigger_tick = 0;
        for (const Trigger* trig_ptr : ordered) {
          const Trigger& trig = *trig_ptr;
          if (budget != nullptr && (trigger_tick++ & 15u) == 0) {
            Status bs = budget->Check("chase:trigger");
            const ChaseStop reason = budget_reason(bs);
            MDQA_RETURN_IF_ERROR(absorb(std::move(bs), reason));
          }
          if (interrupted()) break;
          Subst h;
          for (size_t i = 0; i < info.frontier.size(); ++i) {
            h[info.frontier[i]] = trig.frontier_bindings[i];
          }
          // Restricted chase only (the fallback matrix rejects
          // semi-oblivious): skip satisfied heads — this is also what
          // makes re-derivations of base facts free.
          CqEvaluator head_eval(*instance, nullptr, budget);
          Result<bool> satisfied = head_eval.Satisfiable(rule.head, {}, h);
          if (!satisfied.ok()) {
            const ChaseStop reason = budget_reason(satisfied.status());
            MDQA_RETURN_IF_ERROR(absorb(satisfied.status(), reason));
            break;
          }
          if (*satisfied) continue;

          std::vector<Atom> witness;
          if (options.provenance != nullptr) {
            CqEvaluator witness_eval(*instance, nullptr, budget);
            Status ws = witness_eval.Enumerate(
                rule.body, rule.negated, rule.comparisons, h, {},
                [&](const Subst& theta) {
                  witness.reserve(rule.body.size());
                  for (const Atom& b : rule.body) {
                    witness.push_back(SubstAtom(theta, b));
                  }
                  return false;  // first witness suffices
                });
            if (!ws.ok()) {
              const ChaseStop reason = budget_reason(ws);
              MDQA_RETURN_IF_ERROR(absorb(std::move(ws), reason));
              break;
            }
          }

          for (uint32_t z : info.existential) {
            h[z] = vocab->FreshNull();
            ++stats->nulls_created;
          }
          ++stats->tgd_firings;
          for (const Atom& head_atom : rule.head) {
            Atom fact = SubstAtom(h, head_atom);
            if (instance->AddFact(fact, level)) {
              ++stats->facts_added;
              changed = true;
              added_this.insert(fact.predicate);
              dirty_since_egd.insert(fact.predicate);
              dirty_total.insert(fact.predicate);
              if (budget != nullptr) {
                Status fs = budget->ChargeFacts(1);
                const ChaseStop reason = budget_reason(fs);
                MDQA_RETURN_IF_ERROR(absorb(std::move(fs), reason));
              }
              if (options.provenance != nullptr) {
                options.provenance->Record(
                    fact, ProvenanceStore::Derivation{rule, witness});
              }
            }
          }
          if (instance->TotalFacts() > options.max_facts) {
            note_interrupt(
                Status::ResourceExhausted(
                    "chase exceeded max_facts=" +
                    std::to_string(options.max_facts) + " at round " +
                    std::to_string(round)),
                ChaseStop::kFactLimit);
            break;
          }
        }
      }
      if (interrupted()) break;
      if (budget != nullptr && budget->has_memory_limit()) {
        Status ms = budget->NoteMemory(instance->MemoryEstimateBytes());
        const ChaseStop reason = budget_reason(ms);
        MDQA_RETURN_IF_ERROR(absorb(std::move(ms), reason));
        if (interrupted()) break;
      }
      added_prev = std::move(added_this);
      if (!changed) break;  // TGD fixpoint for this alternation
    }
    if (interrupted() || budget_exhausted || !has_egds) break;

    // The EGDs were at fixpoint when the frontier was captured, so they
    // can only fire again if some EGD body predicate gained a fact since
    // the last EGD pass.
    bool egd_relevant = false;
    for (const Rule& egd : egds) {
      for (const Atom& b : egd.body) {
        if (dirty_since_egd.count(b.predicate) > 0) {
          egd_relevant = true;
          break;
        }
      }
      if (egd_relevant) break;
    }
    if (!egd_relevant) break;
    dirty_since_egd.clear();

    // Separable EGDs: re-run the EGD fixpoint after the TGD restart; a
    // merge rewrites facts in place at their old levels (invisible to
    // delta windows), so the next TGD sweep runs full passes.
    Result<uint64_t> merges = ApplyEgds(program, instance, budget);
    if (!merges.ok()) {
      const ChaseStop reason = budget_reason(merges.status());
      MDQA_RETURN_IF_ERROR(absorb(merges.status(), reason));
      break;
    }
    stats->egd_merges += *merges;
    if (*merges == 0) break;
    force_full = true;
  }

  if (!interrupted() && !budget_exhausted && options.check_constraints) {
    // The base run checked every constraint before capturing the
    // frontier, so only constraints reachable from new facts can have
    // flipped. EGD merges rewrite old facts in place, invalidating that
    // reasoning — any merge forces the unrestricted check.
    const std::unordered_set<uint32_t>* filter =
        stats->egd_merges == 0 ? &dirty_total : nullptr;
    Status cs = CheckConstraints(program, *instance, budget, filter);
    const ChaseStop reason = budget_reason(cs);
    MDQA_RETURN_IF_ERROR(absorb(std::move(cs), reason));
  }

  stats->rounds = round;
  stats->reached_fixpoint = !interrupted() && !budget_exhausted;
  if (interrupted()) {
    stats->reached_fixpoint = false;
    stats->completeness = Completeness::kTruncated;
    stats->interruption = interrupt;
    return Status::Ok();
  }
  if (budget_exhausted) {
    stats->completeness = Completeness::kTruncated;
    stats->stop = ChaseStop::kRoundLimit;
    stats->interruption = Status::ResourceExhausted(
        "chase extension stopped after max_rounds=" +
        std::to_string(options.max_rounds) + " additional rounds");
    return Status::Ok();
  }
  CaptureFrontier(instance, stats);
  stats->frontier.egd_merges = frontier.egd_merges + stats->egd_merges;
  return Status::Ok();
}

Status Chase::CheckConstraints(const Program& program,
                               const Instance& instance,
                               ExecutionBudget* budget,
                               const std::unordered_set<uint32_t>* dirty) {
  const Vocabulary& vocab = *instance.vocab();
  CqEvaluator eval(instance, nullptr, budget);
  for (const Rule& nc : program.Constraints()) {
    if (dirty != nullptr) {
      // Incremental mode: the instance passed a full check at frontier
      // capture, so a new violation needs at least one new body fact.
      bool relevant = false;
      for (const Atom& b : nc.body) {
        if (dirty->count(b.predicate) > 0) {
          relevant = true;
          break;
        }
      }
      if (!relevant) continue;
    }
    Status violation = Status::Ok();
    MDQA_RETURN_IF_ERROR(eval.Enumerate(
        nc.body, nc.negated, nc.comparisons, Subst{}, {},
        [&](const Subst& subst) {
          violation = Status::Inconsistent("negative constraint violated: " +
                                           WitnessString(vocab, nc, subst));
          return false;
        }));
    if (!violation.ok()) return violation;
  }
  return Status::Ok();
}

Result<uint64_t> Chase::ApplyEgds(const Program& program, Instance* instance,
                                  ExecutionBudget* budget) {
  const std::vector<Rule> egds = program.Egds();
  if (egds.empty()) return uint64_t{0};
  const Vocabulary& vocab = *instance->vocab();
  uint64_t total_merges = 0;

  while (true) {
    TermUnionFind uf;
    uint64_t merges = 0;
    Status clash = Status::Ok();
    CqEvaluator eval(*instance, nullptr, budget);
    for (const Rule& egd : egds) {
      MDQA_RETURN_IF_ERROR(eval.Enumerate(
          egd.body, egd.negated, egd.comparisons, Subst{}, {},
          [&](const Subst& subst) {
            Term a = uf.Find(Resolve(subst, egd.egd_lhs));
            Term b = uf.Find(Resolve(subst, egd.egd_rhs));
            if (a == b) return true;
            if (a.IsConstant() && b.IsConstant()) {
              clash = Status::Inconsistent(
                  "EGD requires " + vocab.TermToString(a) + " = " +
                  vocab.TermToString(b) + " via " +
                  WitnessString(vocab, egd, subst));
              return false;
            }
            uf.Union(a, b);
            ++merges;
            return true;
          }));
      if (!clash.ok()) return clash;
    }
    if (merges == 0) break;
    *instance = Canonicalize(*instance, &uf);
    total_merges += merges;
  }
  return total_merges;
}

}  // namespace mdqa::datalog
