#ifndef MDQA_DATALOG_ANALYSIS_H_
#define MDQA_DATALOG_ANALYSIS_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "datalog/program.h"

namespace mdqa::datalog {

/// Stratification for programs with negated body atoms: assigns each
/// predicate a stratum such that a rule's head stratum is ≥ every
/// positive body predicate's stratum and > every negated body
/// predicate's stratum. Fails with kInvalidArgument when negation occurs
/// through recursion (no stratification exists). Negation-free programs
/// get the all-zero stratification. Returned as predicate-id → stratum;
/// predicates never used in a rule head stay at stratum 0.
Result<std::unordered_map<uint32_t, int>> StratifyProgram(
    const Program& program);

/// Forward closure of the predicate-dependency graph: every predicate
/// whose derivable facts can change when facts of a `seeds` predicate
/// change — i.e. the seeds plus every head predicate reachable from them
/// through rule bodies (positive *and* negated occurrences). Drives the
/// assessor's selective re-assessment: a quality query whose predicate is
/// outside this set is untouched by the update. EGDs do not participate
/// (their null merges can ripple anywhere; callers handle EGD programs
/// conservatively).
std::unordered_set<uint32_t> DependentPredicates(
    const Program& program, const std::unordered_set<uint32_t>& seeds);

/// Result of the reachability/dead-rule pass. `relevant` is the backward
/// closure of the goal predicates over TGD head→body edges (positive and
/// negated occurrences), additionally anchored by (a) the body predicates
/// of every EGD and negative constraint (their satisfaction is always
/// observable) and (b) every TGD head predicate that no rule body
/// consumes (a presumptive query output). `dead_rules` are the indexes
/// into `program.rules()` of TGDs none of whose head predicates are
/// relevant: no derivation starting from such a rule can influence a goal
/// predicate, a constraint, an EGD, or an output, so dropping them
/// preserves certain answers and consistency verdicts.
struct DeadRuleAnalysis {
  std::unordered_set<uint32_t> relevant;
  std::vector<size_t> dead_rules;
};

/// Computes the dead-rule analysis with the given extra goal predicates
/// (quality predicates, query goals). EGDs and constraints are never
/// dead.
DeadRuleAnalysis FindDeadRules(const Program& program,
                               const std::unordered_set<uint32_t>& goals);

/// A copy of `program` (same vocabulary, same facts, same EGDs and
/// constraints) without the TGDs `FindDeadRules(program, goals)` reports
/// dead. Answer-preserving for every relevant predicate.
Program PruneDeadRules(const Program& program,
                       const std::unordered_set<uint32_t>& goals);

/// A predicate position (predicate id, argument index) — the node type of
/// the TGD dependency graph used by the acyclicity/stickiness analyses.
struct Position {
  uint32_t predicate = 0;
  uint32_t index = 0;

  uint64_t Key() const {
    return (static_cast<uint64_t>(predicate) << 32) | index;
  }
  friend bool operator==(Position a, Position b) {
    return a.predicate == b.predicate && a.index == b.index;
  }
};

struct PositionHash {
  size_t operator()(Position p) const {
    return std::hash<uint64_t>{}(p.Key() * 0x9e3779b97f4a7c15ull);
  }
};

/// One witness against stickiness: a marked variable repeated in the body
/// of a TGD. Every witness breaks stickiness; a witness all of whose body
/// occurrences sit at infinite-rank positions also breaks *weak*
/// stickiness (the class the paper's guarantees need). Reported per rule
/// per variable so tooling can point at the exact culprit.
struct StickinessViolation {
  size_t rule_index = 0;            ///< index into tgds()
  uint32_t variable = 0;            ///< the repeated marked variable
  bool breaks_weak_stickiness = false;
  std::vector<Position> positions;  ///< its body positions, in rule order
};

/// Syntactic analysis of a Datalog± TGD set, implementing the machinery
/// the paper relies on (Sections II–III):
///
///  - the Fagin-et-al. dependency graph over positions, with normal edges
///    (frontier variable propagation) and special edges (into existential
///    positions), giving weak acyclicity and the finite/infinite **rank**
///    partition ΠF / Π∞;
///  - **affected positions** (positions that may carry labeled nulls);
///  - the Calì–Gottlob–Pieris **sticky marking** procedure (occurrence
///    level), giving stickiness and — combined with ranks — **weak
///    stickiness**, the class the paper proves its MD ontologies live in;
///  - linearity and guardedness detection.
///
/// EGDs and negative constraints do not participate (these notions are
/// defined on the TGD set); the paper handles EGDs via separability, which
/// the ontology layer checks (core/md_ontology.h).
class ProgramAnalysis {
 public:
  explicit ProgramAnalysis(const Program& program);

  /// Every TGD has a single body atom.
  bool IsLinear() const { return linear_; }
  /// Every TGD has a body atom containing all its body variables.
  bool IsGuarded() const { return guarded_; }
  /// Every TGD has a body atom containing all its *harmful* body
  /// variables — those occurring only at affected positions (the ones
  /// that may carry labeled nulls). Guarded ⊂ weakly-guarded; this is
  /// the remaining class of the paper's §II list.
  bool IsWeaklyGuarded() const { return weakly_guarded_; }
  /// No dependency-graph cycle goes through a special edge.
  bool IsWeaklyAcyclic() const { return weakly_acyclic_; }
  /// No TGD repeats a marked variable in its body.
  bool IsSticky() const { return sticky_; }
  /// Every repeated body variable is non-marked or touches a finite-rank
  /// position.
  bool IsWeaklySticky() const { return weakly_sticky_; }

  /// The most specific class name, for reports ("linear" ⊂ "guarded",
  /// "sticky" ⊂ "weakly-sticky", joined with '+').
  std::string ClassName() const;

  bool IsInfiniteRank(Position p) const {
    return infinite_rank_.count(p) > 0;
  }
  bool IsAffected(Position p) const { return affected_.count(p) > 0; }

  /// Positions of infinite rank (Π∞); empty iff weakly acyclic.
  std::vector<Position> InfiniteRankPositions() const;
  /// Positions that may carry labeled nulls in the chase.
  std::vector<Position> AffectedPositions() const;

  /// Predicates with at least one affected position — the only predicates
  /// whose facts an EGD null merge can rewrite in place.
  std::unordered_set<uint32_t> AffectedPredicates() const;

  /// Position-granular null-flow check for one EGD: true when each
  /// equated variable has at least one body occurrence at a non-affected
  /// position. Non-affected positions provably never carry labeled nulls,
  /// so such an occurrence pins the variable's binding to a constant —
  /// the EGD can only no-op or report a constant clash, never merge
  /// nulls. This is what lets `Chase::Extend` keep the delta path for
  /// programs whose EGDs cannot interact with nulls.
  bool EgdIsNullFree(const Rule& egd) const;

  /// True if variable `var` has a marked occurrence in the body of TGD
  /// `tgd_index` (index into `tgds()`).
  bool IsMarkedIn(size_t tgd_index, uint32_t var) const;

  /// The analyzed TGDs, in program order.
  const std::vector<Rule>& tgds() const { return tgds_; }

  /// Every stickiness witness found, in (rule, variable) order. Empty iff
  /// the program is sticky; entries with `breaks_weak_stickiness` exist
  /// iff the program is not weakly sticky.
  const std::vector<StickinessViolation>& StickinessViolations() const {
    return stickiness_violations_;
  }

  /// Human-readable multi-line summary (class flags, Π∞, affected, and the
  /// offending rules when a property fails).
  std::string Report(const Vocabulary& vocab) const;

  /// Deterministic listing of the position dependency graph: one line per
  /// distinct edge, sorted, with special edges (into existential
  /// positions) marked. Feeds `mdqa_lint --analyze`.
  std::string GraphDump(const Vocabulary& vocab) const;

 private:
  void BuildGraph();
  void ComputeRanks();
  void ComputeAffected();
  void ComputeMarking();
  void Classify();

  std::vector<Rule> tgds_;

  // Dependency graph: adjacency over position keys; special edges kept
  // separately for the weak-acyclicity test.
  std::unordered_map<uint64_t, Position> nodes_;
  std::unordered_map<uint64_t, std::vector<uint64_t>> edges_;
  std::vector<std::pair<uint64_t, uint64_t>> special_edges_;

  std::unordered_set<Position, PositionHash> infinite_rank_;
  std::unordered_set<Position, PositionHash> affected_;

  // marked_[tgd_index] = set of variables with >=1 marked body occurrence.
  std::vector<std::unordered_set<uint32_t>> marked_;

  bool linear_ = false;
  bool guarded_ = false;
  bool weakly_guarded_ = false;
  bool weakly_acyclic_ = false;
  bool sticky_ = false;
  bool weakly_sticky_ = false;
  std::vector<StickinessViolation> stickiness_violations_;
};

}  // namespace mdqa::datalog

#endif  // MDQA_DATALOG_ANALYSIS_H_
