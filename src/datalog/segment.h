#ifndef MDQA_DATALOG_SEGMENT_H_
#define MDQA_DATALOG_SEGMENT_H_

#include <cstdint>
#include <vector>

#include "datalog/column.h"
#include "datalog/term.h"

namespace mdqa::datalog {

/// A contiguous run of one table's rows held column-wise: `arity` term
/// dictionaries + code columns (see Column), covering the global rows
/// `[base, base + rows())` of the owning FactTable. A table is a chain of
/// *sealed* segments — immutable, shared by reference between
/// copy-on-write snapshots — followed by exactly one append-only mutable
/// *overlay* segment private to each table view. `Instance::Freeze` seals
/// the overlay into the chain when the table is unshared, so a long-lived
/// base (the chased instance behind a PreparedContext) is served from
/// immutable segments while update sessions append into fresh overlays.
///
/// The flattened term rows and per-row levels stay in the FactTable (the
/// `Row()` pointer contract); a segment carries only the columnar
/// encoding, postings and dictionaries that the vectorized join executor
/// probes.
class Segment {
 public:
  explicit Segment(size_t arity) : columns_(arity) {}

  size_t arity() const { return columns_.size(); }
  uint32_t rows() const { return rows_; }

  const Column& column(size_t pos) const { return columns_[pos]; }

  /// Appends a row (table-level dedup is the caller's job). When
  /// `new_terms` is non-null it must have room for `arity()` flags; flag
  /// `p` is set to whether position `p`'s term was new to this segment's
  /// dictionary.
  void Append(const Term* row, uint8_t* new_terms = nullptr) {
    for (size_t p = 0; p < columns_.size(); ++p) {
      bool fresh = false;
      columns_[p].Append(row[p], &fresh);
      if (new_terms != nullptr) new_terms[p] = fresh ? 1 : 0;
    }
    ++rows_;
  }

  uint64_t MemoryEstimateBytes() const;

  /// Test-only; forwards to every column (call before any append).
  void set_hash_mask_for_test(uint64_t mask);

 private:
  uint32_t rows_ = 0;  // explicit: arity-0 segments have no columns
  std::vector<Column> columns_;
};

}  // namespace mdqa::datalog

#endif  // MDQA_DATALOG_SEGMENT_H_
