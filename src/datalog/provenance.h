#ifndef MDQA_DATALOG_PROVENANCE_H_
#define MDQA_DATALOG_PROVENANCE_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "datalog/program.h"

namespace mdqa::datalog {

/// Why-provenance for derived facts: which dependency fired, under which
/// ground body. Populated by the chase (`ChaseOptions::provenance`) and
/// by the deterministic WS engine (`WsQaOptions::provenance`); rendering
/// a fact recursively yields exactly the derivation tree the paper calls
/// a *resolution proof schema* — extensional facts are the leaves.
///
/// One derivation is kept per fact (the first one found); chase
/// derivations are therefore minimal-level witnesses.
class ProvenanceStore {
 public:
  struct Derivation {
    Rule rule;               ///< the dependency that fired (a copy)
    std::vector<Atom> body;  ///< its ground instantiated body
  };

  /// Records a derivation for `fact`; the first recording wins.
  void Record(const Atom& fact, Derivation derivation);

  /// nullptr when `fact` has no recorded derivation (extensional or
  /// never derived).
  const Derivation* Find(const Atom& fact) const;

  size_t size() const { return derivations_.size(); }

  /// Renders the derivation tree of `fact`:
  ///
  /// ```
  /// Shifts("W2", "Sep/9", "Mark", _n0)
  ///   via Shifts(W,D,N,Z) :- WorkingSchedules(U,D,N,T), UnitWard(U,W).
  ///   |- WorkingSchedules("Standard", "Sep/9", "Mark", "non-c.")  [edb]
  ///   |- UnitWard("Standard", "W2")  [edb]
  /// ```
  ///
  /// Facts without a derivation are annotated `[edb]`. Depth is capped
  /// (and repeated facts on one branch elided) so cyclic derivations
  /// terminate.
  std::string Explain(const Atom& fact, const Vocabulary& vocab,
                      size_t max_depth = 32) const;

 private:
  void ExplainRec(const Atom& fact, const Vocabulary& vocab, size_t depth,
                  size_t max_depth, const std::string& indent,
                  std::unordered_set<size_t>* on_branch,
                  std::string* out) const;

  std::unordered_map<Atom, Derivation, AtomHash> derivations_;
};

}  // namespace mdqa::datalog

#endif  // MDQA_DATALOG_PROVENANCE_H_
