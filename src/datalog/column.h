#ifndef MDQA_DATALOG_COLUMN_H_
#define MDQA_DATALOG_COLUMN_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "datalog/term.h"

namespace mdqa::datalog {

/// One position of one storage segment: a dictionary-encoded term column.
/// Every appended term is interned into a segment-local dictionary and the
/// column stores only its 4-byte code, plus a postings list per code (the
/// ascending segment-local rows holding that term). Equality probes and
/// join verification then run on contiguous `uint32_t` code arrays instead
/// of hashed term handles — the VLog-style layout that makes the
/// dimensional-navigation joins of the OMD assessment cheap.
///
/// The encode map is keyed by a *lossy* term hash, so a probe can land in
/// a bucket shared by several distinct terms; `CodeOf` therefore verifies
/// every candidate code against the dictionary term before trusting it —
/// a colliding 64-bit key must never alias two terms (the row-store dedup
/// table has the same discipline). Tests force total collision through
/// `set_hash_mask_for_test` to keep the verification load-bearing.
class Column {
 public:
  /// Sentinel returned by `CodeOf` when the term is not in the dictionary.
  static constexpr uint32_t kNoCode = 0xffffffffu;

  /// Appends `t` as the next row, interning it into the dictionary.
  /// Returns its code; `*new_code` (when non-null) is set to whether the
  /// term was new to this column's dictionary.
  uint32_t Append(Term t, bool* new_code = nullptr);

  /// Rows appended so far.
  size_t size() const { return codes_.size(); }

  uint32_t CodeAt(uint32_t row) const { return codes_[row]; }
  Term TermAt(uint32_t row) const { return dict_[codes_[row]]; }
  Term TermOfCode(uint32_t code) const { return dict_[code]; }

  /// Distinct terms in this column (the dictionary size).
  size_t DistinctTerms() const { return dict_.size(); }

  /// Dictionary code of `t`, or kNoCode when absent. Hash-bucket
  /// candidates are verified against the dictionary (see class comment).
  uint32_t CodeOf(Term t) const;

  /// Ascending segment-local rows whose term has `code`.
  const std::vector<uint32_t>& Postings(uint32_t code) const {
    return postings_[code];
  }

  /// Capacity-based heap estimate (codes, dictionary, postings, encode
  /// map) for the execution budget's memory accounting.
  uint64_t MemoryEstimateBytes() const;

  /// Test-only: masks the encode-map hash so distinct terms collide
  /// (mask 0 puts every term in one bucket). Call on an empty column —
  /// changing the mask after appends would orphan existing buckets.
  void set_hash_mask_for_test(uint64_t mask) { hash_mask_ = mask; }

 private:
  uint64_t HashTerm(Term t) const { return TermHash{}(t) & hash_mask_; }

  std::vector<uint32_t> codes_;                  // row -> code
  std::vector<Term> dict_;                       // code -> term
  std::vector<std::vector<uint32_t>> postings_;  // code -> rows, ascending
  std::unordered_map<uint64_t, std::vector<uint32_t>> encode_;  // hash->codes
  uint64_t hash_mask_ = ~0ull;
};

}  // namespace mdqa::datalog

#endif  // MDQA_DATALOG_COLUMN_H_
