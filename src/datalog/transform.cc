#include "datalog/transform.h"

namespace mdqa::datalog {

Result<Program> SplitMultiAtomHeads(const Program& program) {
  Program out(program.vocab());
  Vocabulary* vocab = out.mutable_vocab();
  size_t next_aux = 0;
  for (const Rule& rule : program.rules()) {
    if (!rule.IsTgd() || rule.head.size() <= 1) {
      MDQA_RETURN_IF_ERROR(out.AddRule(rule));
      continue;
    }
    // Aux carries the frontier followed by the existentials.
    std::vector<uint32_t> frontier = rule.FrontierVariables();
    std::vector<uint32_t> existential = rule.ExistentialVariables();
    std::vector<Term> aux_terms;
    aux_terms.reserve(frontier.size() + existential.size());
    for (uint32_t v : frontier) aux_terms.push_back(Term::Variable(v));
    for (uint32_t v : existential) aux_terms.push_back(Term::Variable(v));

    MDQA_ASSIGN_OR_RETURN(
        uint32_t aux_pred,
        vocab->InternPredicate("$aux" + std::to_string(next_aux++),
                               aux_terms.size()));

    Rule generator;
    generator.kind = RuleKind::kTgd;
    generator.label = rule.label.empty() ? "split-aux" : rule.label + "/aux";
    generator.head.push_back(Atom(aux_pred, aux_terms));
    generator.body = rule.body;
    generator.negated = rule.negated;
    generator.comparisons = rule.comparisons;
    MDQA_RETURN_IF_ERROR(out.AddRule(std::move(generator)));

    for (size_t i = 0; i < rule.head.size(); ++i) {
      Rule projector;
      projector.kind = RuleKind::kTgd;
      projector.label = rule.label.empty()
                            ? "split-head" + std::to_string(i)
                            : rule.label + "/head" + std::to_string(i);
      projector.head.push_back(rule.head[i]);
      projector.body.push_back(Atom(aux_pred, aux_terms));
      MDQA_RETURN_IF_ERROR(out.AddRule(std::move(projector)));
    }
  }
  for (const Atom& f : program.facts()) {
    MDQA_RETURN_IF_ERROR(out.AddFact(f));
  }
  return out;
}

}  // namespace mdqa::datalog
