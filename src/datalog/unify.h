#ifndef MDQA_DATALOG_UNIFY_H_
#define MDQA_DATALOG_UNIFY_H_

#include <optional>
#include <unordered_map>
#include <vector>

#include "datalog/program.h"

namespace mdqa::datalog {

/// A substitution mapping variable ids to terms (ground terms during
/// evaluation; possibly variables during rewriting/unification).
using Subst = std::unordered_map<uint32_t, Term>;

/// Applies `subst` to `t`, following variable chains to a fixpoint (chains
/// arise during two-way unification).
Term Resolve(const Subst& subst, Term t);

/// Applies `subst` to every term of `a`.
Atom SubstAtom(const Subst& subst, const Atom& a);

/// One-way matching of `pattern` (may contain variables, also repeated)
/// against the ground row `fact`. Bindings are appended to `*subst`; on
/// failure `*subst` is left with partial bindings recorded in `*trail`
/// (callers undo via `UndoTrail`). Returns success.
bool MatchAtom(const Atom& pattern, const Term* fact, Subst* subst,
               std::vector<uint32_t>* trail);

/// Removes the trailing bindings recorded in `trail` from `subst`.
void UndoTrail(Subst* subst, std::vector<uint32_t>* trail, size_t mark);

/// Most general unifier of two atoms over the same predicate, treating
/// variables of both sides as unifiable (rename rules apart first!).
/// Constants and labeled nulls unify only with themselves or variables.
std::optional<Subst> UnifyAtoms(const Atom& a, const Atom& b);

/// Decides a comparison between two ground terms. Constants compare by
/// `Value` order; labeled nulls support only identity (`=` true iff same
/// null, `!=` its negation) and make every order comparison false —
/// certain-answer semantics: an order over an unknown value cannot be
/// certain. Null-vs-constant equality is false (chase nulls never equal
/// constants under the standard semantics).
bool EvalComparison(const Vocabulary& vocab, CmpOp op, Term lhs, Term rhs);

}  // namespace mdqa::datalog

#endif  // MDQA_DATALOG_UNIFY_H_
