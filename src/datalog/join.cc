#include "datalog/join.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "base/intern.h"
#include "datalog/column.h"

namespace mdqa::datalog {

namespace {

// Rows between budget polls; must match cq_eval's EvalState::kBudgetBatch
// so the postings path charges steps identically to the legacy executor.
constexpr uint32_t kBudgetBatch = 64;
// Bindings per block chunk: a full chunk is pushed depth-first before the
// current depth continues, bounding memory while preserving the
// lexicographic (legacy) emission order. Chunks start small and grow
// geometrically toward the cap so an early-exit consumer (Satisfiable's
// first witness) does not pay for a full block of speculative bindings;
// chunk boundaries batch work without reordering it.
constexpr size_t kBlockCap = 1024;
constexpr size_t kBlockInitial = 8;
// Minimum incoming block size before a batch hash build is considered.
constexpr size_t kHashBuildMinBlock = 8;

constexpr size_t kDepthInitial = std::numeric_limits<size_t>::max() - 1;
constexpr size_t kDepthNever = std::numeric_limits<size_t>::max();

// Role of one atom position in the compiled plan.
enum class PosKind : uint8_t {
  kConst,   // ground term in the atom (constant or labeled null)
  kBound,   // variable bound by the initial subst or an earlier atom
  kNew,     // variable first bound here
  kRepeat,  // variable repeating an earlier (kNew) position of this atom
};

struct PlannedPos {
  PosKind kind;
  Term constant;         // kConst
  uint32_t slot = 0;     // kBound / kNew
  size_t repeat_of = 0;  // kRepeat: the earlier position to compare with
};

// One side of a comparison or one term of a negated atom.
struct TermRef {
  bool is_slot = false;
  Term constant;      // !is_slot
  uint32_t slot = 0;  // is_slot
};

struct PlannedCmp {
  CmpOp op;
  TermRef lhs, rhs;
};

struct PlannedNeg {
  uint32_t pred;
  std::vector<TermRef> terms;
};

struct PlannedAtom {
  const FactTable* table = nullptr;  // null when the predicate is empty
  size_t orig_index = 0;             // index into the caller's atom list
  std::vector<PlannedPos> pos;
  std::vector<size_t> bound_positions;  // positions with kConst/kBound
  std::vector<size_t> checks;           // comparisons decidable here
  std::vector<size_t> neg_checks;       // negated atoms decidable here
};

struct Plan {
  std::vector<PlannedAtom> order;
  uint32_t num_slots = 0;
  // Variables bound by atoms (not by the initial subst), for the emitted
  // substitution.
  std::vector<std::pair<uint32_t, uint32_t>> out_vars;  // (var id, slot)
  std::vector<PlannedCmp> cmps;
  std::vector<PlannedNeg> negs;
  std::vector<size_t> initial_checks;      // decidable before any atom
  std::vector<size_t> initial_neg_checks;  // decidable before any atom
  // Some comparison/negated variable is never bound: legacy semantics
  // raise InvalidArgument on the first completed solution (zero-solution
  // runs return OK), so the error fires at emit time.
  bool unbound_comparison = false;
  bool unbound_negated = false;
};

// Builds the compiled plan, replicating the legacy greedy atom order:
// most bound positions first, ties by smaller table, ties by lower index.
// The choice depends only on the (static) bound-variable sets and table
// sizes, never on candidate values, so it equals the order the
// backtracking evaluator re-derives at every recursion node.
void BuildPlan(const Instance& instance, const std::vector<Atom>& atoms,
               const std::vector<Atom>& negated,
               const std::vector<Comparison>& comparisons,
               const Subst& initial, Plan* plan,
               std::vector<Term>* initial_slots) {
  // Var counts per query are tiny, so a linear-scanned flat vector beats
  // a hash map for the var->slot directory (this runs once per shard
  // seed during chase matching — setup cost is on the hot path).
  std::vector<std::pair<uint32_t, uint32_t>> slot_of;  // (var id, slot)
  std::vector<size_t> slot_depth;  // kDepthInitial / atom depth / kDepthNever
  std::vector<Term> prefill;       // slot -> initial value (when kDepthInitial)

  auto find_slot = [&](uint32_t var) -> int64_t {
    for (const auto& [v, s] : slot_of) {
      if (v == var) return s;
    }
    return -1;
  };
  auto slot_for = [&](uint32_t var) {
    int64_t found = find_slot(var);
    if (found >= 0) return static_cast<uint32_t>(found);
    uint32_t slot = static_cast<uint32_t>(slot_depth.size());
    slot_of.emplace_back(var, slot);
    slot_depth.push_back(kDepthNever);
    prefill.push_back(Term());
    return slot;
  };

  for (const auto& [var, value] : initial) {
    (void)value;
    uint32_t slot = slot_for(var);
    slot_depth[slot] = kDepthInitial;
    prefill[slot] = Resolve(initial, Term::Variable(var));  // ground (Supports)
  }

  const size_t n = atoms.size();
  std::vector<bool> used(n, false);
  plan->order.reserve(n);
  for (size_t depth = 0; depth < n; ++depth) {
    int best = -1;
    size_t best_bound = 0;
    size_t best_size = 0;
    for (size_t i = 0; i < n; ++i) {
      if (used[i]) continue;
      const Atom& atom = atoms[i];
      size_t bound = 0;
      for (Term t : atom.terms) {
        if (t.IsGround()) {
          ++bound;
        } else {
          int64_t slot = find_slot(t.id());
          if (slot >= 0 && slot_depth[static_cast<size_t>(slot)] != kDepthNever) {
            ++bound;
          }
        }
      }
      const FactTable* table = instance.Table(atom.predicate);
      size_t size = table == nullptr ? 0 : table->size();
      if (best < 0 || bound > best_bound ||
          (bound == best_bound && size < best_size)) {
        best = static_cast<int>(i);
        best_bound = bound;
        best_size = size;
      }
    }
    used[static_cast<size_t>(best)] = true;
    const Atom& atom = atoms[static_cast<size_t>(best)];

    PlannedAtom pa;
    pa.table = instance.Table(atom.predicate);
    pa.orig_index = static_cast<size_t>(best);
    pa.pos.resize(atom.terms.size());
    std::vector<std::pair<uint32_t, size_t>> first_pos;  // (var, position here)
    std::vector<std::pair<uint32_t, uint32_t>> introduced;  // position order
    for (size_t p = 0; p < atom.terms.size(); ++p) {
      Term t = atom.terms[p];
      PlannedPos& pp = pa.pos[p];
      if (t.IsGround()) {
        pp.kind = PosKind::kConst;
        pp.constant = t;
        pa.bound_positions.push_back(p);
        continue;
      }
      uint32_t slot = slot_for(t.id());
      if (slot_depth[slot] != kDepthNever) {
        pp.kind = PosKind::kBound;
        pp.slot = slot;
        pa.bound_positions.push_back(p);
        continue;
      }
      size_t repeat_of = atom.terms.size();
      for (const auto& [v, fp] : first_pos) {
        if (v == t.id()) {
          repeat_of = fp;
          break;
        }
      }
      if (repeat_of != atom.terms.size()) {
        pp.kind = PosKind::kRepeat;
        pp.repeat_of = repeat_of;
        continue;
      }
      pp.kind = PosKind::kNew;
      pp.slot = slot;
      first_pos.emplace_back(t.id(), p);
      introduced.emplace_back(t.id(), slot);
    }
    // Variables introduced here become bound for every later depth; the
    // emitted substitution adds them in binding (position) order, like
    // the legacy matcher.
    for (const auto& [var, slot] : introduced) {
      slot_depth[slot] = depth;
      plan->out_vars.emplace_back(var, slot);
    }
    plan->order.push_back(std::move(pa));
  }

  auto term_ref = [&](Term t, size_t* ref_depth) {
    TermRef ref;
    if (t.IsGround()) {
      ref.constant = t;
      return ref;
    }
    uint32_t slot = slot_for(t.id());
    ref.is_slot = true;
    ref.slot = slot;
    size_t d = slot_depth[slot];
    if (d == kDepthNever) {
      *ref_depth = kDepthNever;
    } else if (d != kDepthInitial &&
               (*ref_depth == kDepthInitial || d > *ref_depth)) {
      *ref_depth = d;
    }
    return ref;
  };

  // Each comparison / negated atom is checked exactly once, at the first
  // depth where all its variables are bound (the legacy evaluator
  // re-checks every ground one at every depth — idempotent, since a
  // failing check already pruned the branch).
  for (const Comparison& c : comparisons) {
    PlannedCmp pc;
    pc.op = c.op;
    size_t ref_depth = kDepthInitial;
    pc.lhs = term_ref(c.lhs, &ref_depth);
    pc.rhs = term_ref(c.rhs, &ref_depth);
    size_t idx = plan->cmps.size();
    plan->cmps.push_back(pc);
    if (ref_depth == kDepthNever) {
      plan->unbound_comparison = true;
    } else if (ref_depth == kDepthInitial) {
      plan->initial_checks.push_back(idx);
    } else {
      plan->order[ref_depth].checks.push_back(idx);
    }
  }
  for (const Atom& a : negated) {
    PlannedNeg pn;
    pn.pred = a.predicate;
    size_t ref_depth = kDepthInitial;
    pn.terms.reserve(a.terms.size());
    for (Term t : a.terms) pn.terms.push_back(term_ref(t, &ref_depth));
    size_t idx = plan->negs.size();
    plan->negs.push_back(std::move(pn));
    if (ref_depth == kDepthNever) {
      plan->unbound_negated = true;
    } else if (ref_depth == kDepthInitial) {
      plan->initial_neg_checks.push_back(idx);
    } else {
      plan->order[ref_depth].neg_checks.push_back(idx);
    }
  }

  plan->num_slots = static_cast<uint32_t>(slot_depth.size());
  *initial_slots = std::move(prefill);
}

// A block of partial bindings: `count` rows of `num_slots` terms each.
struct Block {
  std::vector<Term> data;
  size_t count = 0;
};

// Lazily built batch hash index for one depth: in-window rows keyed by
// the hash of the bound-position term tuple. Built at most once per run
// (the table is immutable during evaluation) and reused across chunks.
struct HashIndex {
  bool built = false;
  std::unordered_map<uint64_t, std::vector<uint32_t>> map;
};

struct Executor {
  const Instance* instance;
  const Vocabulary* vocab;
  EvalStats* stats;         // may be null
  ExecutionBudget* budget;  // may be null
  const std::vector<AtomLevelWindow>* windows;  // may be null
  const std::function<bool(const Subst&)>* on_match;
  const Subst* initial;
  Plan plan;

  uint32_t budget_tick = 0;
  bool stop = false;
  Status error;
  Subst out_subst;                   // reused across solutions
  std::vector<Term*> out_ptrs;       // plan.out_vars -> slot in out_subst
  std::vector<Term> scratch_targets; // bound-position target terms
  std::vector<HashIndex> hash_index; // one per depth
  std::vector<Block> block_pool;     // one output block per depth, reused
  std::vector<Term> neg_terms;       // reused negated-atom instantiation

  // Builds the emitted substitution once: the initial bindings plus one
  // entry per plan-bound variable, whose mapped Terms are then updated
  // in place per solution (unordered_map nodes are pointer-stable under
  // insertion, and nothing is erased). This keeps the per-solution cost
  // at plain stores instead of a map copy — the legacy evaluator also
  // reuses one substitution across all solutions.
  void PrepareEmit() {
    out_subst = *initial;
    out_ptrs.reserve(plan.out_vars.size());
    for (const auto& [var, slot] : plan.out_vars) {
      (void)slot;
      out_ptrs.push_back(&out_subst.emplace(var, Term()).first->second);
    }
  }

  bool Tick() {
    if (budget == nullptr) return true;
    if ((++budget_tick & (kBudgetBatch - 1)) != 0) return true;
    Status bs = budget->Check("cq:row");
    if (bs.ok()) bs = budget->ChargeSteps(kBudgetBatch);
    if (!bs.ok()) {
      error = std::move(bs);
      return false;
    }
    return true;
  }

  Term ResolveRef(const TermRef& ref, const Term* slots) const {
    return ref.is_slot ? slots[ref.slot] : ref.constant;
  }

  bool ChecksHold(const std::vector<size_t>& checks,
                  const std::vector<size_t>& neg_checks,
                  const Term* slots) {
    for (size_t idx : checks) {
      const PlannedCmp& c = plan.cmps[idx];
      if (!EvalComparison(*vocab, c.op, ResolveRef(c.lhs, slots),
                          ResolveRef(c.rhs, slots))) {
        return false;
      }
    }
    for (size_t idx : neg_checks) {
      const PlannedNeg& n = plan.negs[idx];
      neg_terms.clear();
      neg_terms.reserve(n.terms.size());
      for (const TermRef& ref : n.terms) {
        neg_terms.push_back(ResolveRef(ref, slots));
      }
      const FactTable* table = instance->Table(n.pred);
      if (table != nullptr && table->Contains(neg_terms.data())) return false;
    }
    return true;
  }

  // Verifies the unbound roles of `row` against the plan, evaluates the
  // newly decidable checks, and appends the extended binding to `out` on
  // success. Bound positions have already been verified by the caller
  // (codes, hash key, or there are none).
  bool AcceptCandidate(const PlannedAtom& pa, const Term* row,
                       const Term* in_slots, Block* out) {
    // The extended binding is built directly in the output block (one
    // copy, rolled back on rejection) instead of staging it in a scratch
    // row and copying again on acceptance.
    const size_t base = out->data.size();
    out->data.insert(out->data.end(), in_slots, in_slots + plan.num_slots);
    Term* slots = out->data.data() + base;
    for (size_t p = 0; p < pa.pos.size(); ++p) {
      const PlannedPos& pp = pa.pos[p];
      if (pp.kind == PosKind::kNew) {
        slots[pp.slot] = row[p];
      } else if (pp.kind == PosKind::kRepeat &&
                 row[p] != row[pp.repeat_of]) {
        out->data.resize(base);
        return false;
      }
    }
    if (!ChecksHold(pa.checks, pa.neg_checks, slots)) {
      out->data.resize(base);
      return false;
    }
    if (stats != nullptr) ++stats->atoms_matched;
    ++out->count;
    return true;
  }

  // True when building a hash index over the whole table is expected to
  // be cheaper than per-binding postings probes for this chunk: the
  // estimated probe volume (chunk size × rows-per-distinct-term of the
  // most selective bound position) must amortize the O(rows) build.
  bool HashBuildWorthIt(const PlannedAtom& pa, size_t chunk_count) const {
    if (chunk_count < kHashBuildMinBlock) return false;
    uint64_t distinct = 1;
    for (size_t p : pa.bound_positions) {
      distinct = std::max<uint64_t>(distinct, pa.table->DistinctAt(p));
    }
    const uint64_t rows = pa.table->size();
    const uint64_t est_per_binding = std::max<uint64_t>(1, rows / distinct);
    return static_cast<uint64_t>(chunk_count) * est_per_binding >= rows;
  }

  static uint64_t HashTargets(const Term* terms, size_t count) {
    size_t seed = count;
    for (size_t i = 0; i < count; ++i) HashCombine(&seed, TermHash{}(terms[i]));
    return seed;
  }

  void EnsureHashIndex(size_t depth, const PlannedAtom& pa,
                       const AtomLevelWindow& window) {
    HashIndex& hi = hash_index[depth];
    if (hi.built) return;
    hi.built = true;
    const FactTable* table = pa.table;
    std::vector<Term> key_terms(pa.bound_positions.size());
    for (uint32_t r = 0; r < table->size(); ++r) {
      const uint32_t lvl = table->Level(r);
      if (lvl < window.min_level || lvl > window.max_level) continue;
      const Term* row = table->Row(r);
      for (size_t j = 0; j < pa.bound_positions.size(); ++j) {
        key_terms[j] = row[pa.bound_positions[j]];
      }
      hi.map[HashTargets(key_terms.data(), key_terms.size())].push_back(r);
    }
  }

  void Emit(const Block& in) {
    for (size_t bi = 0; bi < in.count && !stop && error.ok(); ++bi) {
      // Legacy order: the groundness errors surface on the first
      // completed solution (comparisons checked before negation).
      if (plan.unbound_comparison) {
        error = Status::InvalidArgument(
            "comparison variable not bound by any relational atom");
        return;
      }
      if (plan.unbound_negated) {
        error = Status::InvalidArgument(
            "negated-atom variable not bound by any positive atom");
        return;
      }
      const Term* slots = in.data.data() + bi * plan.num_slots;
      if (stats != nullptr) ++stats->solutions;
      for (size_t i = 0; i < out_ptrs.size(); ++i) {
        *out_ptrs[i] = slots[plan.out_vars[i].second];
      }
      if (!(*on_match)(out_subst)) stop = true;
    }
  }

  void Process(size_t depth, const Block& in) {
    if (stop || !error.ok() || in.count == 0) return;
    if (depth == plan.order.size()) {
      Emit(in);
      return;
    }
    const PlannedAtom& pa = plan.order[depth];
    const FactTable* table = pa.table;
    if (table == nullptr || table->size() == 0) return;

    AtomLevelWindow window;
    if (windows != nullptr) window = (*windows)[pa.orig_index];
    auto level_ok = [&](uint32_t r) {
      const uint32_t lvl = table->Level(r);
      return lvl >= window.min_level && lvl <= window.max_level;
    };

    // Per-depth reusable output block: recursion touches one block per
    // level and levels never alias, so clearing (capacity kept) avoids a
    // fresh allocation on every Process call.
    Block& out = block_pool[depth];
    out.count = 0;
    out.data.clear();
    size_t chunk_cap = kBlockInitial;
    auto flush_if_full = [&] {
      if (out.count >= chunk_cap) {
        Process(depth + 1, out);
        out.count = 0;
        out.data.clear();
        chunk_cap = std::min(chunk_cap * 4, kBlockCap);
      }
    };

    const size_t nbound = pa.bound_positions.size();
    const bool use_hash =
        nbound > 0 && HashBuildWorthIt(pa, in.count);
    if (use_hash) EnsureHashIndex(depth, pa, window);

    const size_t nsegs = table->NumSegments();
    std::vector<uint32_t> seg_codes;  // per (segment, bound position)

    for (size_t bi = 0; bi < in.count; ++bi) {
      if (stop || !error.ok()) return;
      const Term* slots = in.data.data() + bi * plan.num_slots;

      if (nbound == 0) {
        // Full scan, ascending global rows (the flat row array serves
        // both modes).
        if (stats != nullptr) ++stats->full_scans;
        for (uint32_t r = 0; r < table->size(); ++r) {
          if (stop || !error.ok()) return;
          if (!level_ok(r)) continue;
          if (!Tick()) return;
          if (stats != nullptr) ++stats->rows_tried;
          AcceptCandidate(pa, table->Row(r), slots, &out);
          flush_if_full();
        }
        continue;
      }

      // Resolve this binding's target terms for the bound positions.
      for (size_t j = 0; j < nbound; ++j) {
        const PlannedPos& pp = pa.pos[pa.bound_positions[j]];
        scratch_targets[j] =
            pp.kind == PosKind::kConst ? pp.constant : slots[pp.slot];
      }

      if (use_hash) {
        if (stats != nullptr) ++stats->index_probes;
        const HashIndex& hi = hash_index[depth];
        auto it = hi.map.find(HashTargets(scratch_targets.data(), nbound));
        if (it == hi.map.end()) continue;
        for (uint32_t r : it->second) {
          if (stop || !error.ok()) return;
          if (!Tick()) return;
          if (stats != nullptr) ++stats->rows_tried;
          // The combined key is lossy: verify every bound position by
          // term equality before accepting the bucket hit. Resolve each
          // expected term from the plan + parent slots here rather than
          // from scratch_targets: a chunk flush inside this loop recurses
          // into deeper depths, which reuse (clobber) the shared scratch
          // buffer. `slots` points into the parent block, which deeper
          // recursion never touches.
          const Term* row = table->Row(r);
          bool match = true;
          for (size_t j = 0; j < nbound; ++j) {
            const PlannedPos& pp = pa.pos[pa.bound_positions[j]];
            const Term want =
                pp.kind == PosKind::kConst ? pp.constant : slots[pp.slot];
            if (row[pa.bound_positions[j]] != want) {
              match = false;
              break;
            }
          }
          if (!match) continue;
          AcceptCandidate(pa, row, slots, &out);
          flush_if_full();
        }
        continue;
      }

      // Postings path: per segment, encode the targets once; the driver
      // is the bound position with the fewest total postings (first-wins
      // tie-break, matching the legacy most-selective-index choice), and
      // the other bound positions verify by code comparison.
      if (stats != nullptr) ++stats->index_probes;
      seg_codes.assign(nsegs * nbound, Column::kNoCode);
      size_t driver = 0;
      size_t driver_count = std::numeric_limits<size_t>::max();
      for (size_t j = 0; j < nbound; ++j) {
        const size_t p = pa.bound_positions[j];
        size_t count = 0;
        for (size_t k = 0; k < nsegs; ++k) {
          const FactTable::SegmentView view = table->SegmentAt(k);
          const uint32_t code =
              view.segment->column(p).CodeOf(scratch_targets[j]);
          seg_codes[k * nbound + j] = code;
          if (code != Column::kNoCode) {
            count += view.segment->column(p).Postings(code).size();
          }
        }
        if (count < driver_count) {
          driver = j;
          driver_count = count;
        }
      }
      if (driver_count == 0) continue;
      const size_t driver_pos = pa.bound_positions[driver];
      for (size_t k = 0; k < nsegs; ++k) {
        // A segment whose dictionary misses any target term has no
        // matching rows at all.
        bool viable = true;
        for (size_t j = 0; j < nbound; ++j) {
          if (seg_codes[k * nbound + j] == Column::kNoCode) {
            viable = false;
            break;
          }
        }
        if (!viable) continue;
        const FactTable::SegmentView view = table->SegmentAt(k);
        const Column& driver_col = view.segment->column(driver_pos);
        for (uint32_t local :
             driver_col.Postings(seg_codes[k * nbound + driver])) {
          if (stop || !error.ok()) return;
          const uint32_t r = view.base + local;
          if (!level_ok(r)) continue;
          if (!Tick()) return;
          if (stats != nullptr) ++stats->rows_tried;
          bool match = true;
          for (size_t j = 0; j < nbound && match; ++j) {
            if (j == driver) continue;
            match = view.segment->column(pa.bound_positions[j])
                        .CodeAt(local) == seg_codes[k * nbound + j];
          }
          if (!match) continue;
          AcceptCandidate(pa, table->Row(r), slots, &out);
          flush_if_full();
        }
      }
    }
    Process(depth + 1, out);
  }
};

}  // namespace

bool BlockJoin::Supports(const Subst& initial) {
  for (const auto& [var, value] : initial) {
    (void)value;
    if (!Resolve(initial, Term::Variable(var)).IsGround()) return false;
  }
  return true;
}

Status BlockJoin::Run(const std::vector<Atom>& atoms,
                      const std::vector<Atom>& negated,
                      const std::vector<Comparison>& comparisons,
                      const Subst& initial,
                      const std::vector<AtomLevelWindow>& windows,
                      const std::function<bool(const Subst&)>& on_match) {
  Executor ex;
  ex.instance = &instance_;
  ex.vocab = instance_.vocab().get();
  ex.stats = stats_;
  ex.budget = budget_;
  ex.windows = windows.empty() ? nullptr : &windows;
  ex.on_match = &on_match;
  ex.initial = &initial;

  std::vector<Term> initial_slots;
  BuildPlan(instance_, atoms, negated, comparisons, initial, &ex.plan,
            &initial_slots);
  initial_slots.resize(ex.plan.num_slots, Term());

  size_t max_bound = 0;
  for (const PlannedAtom& pa : ex.plan.order) {
    max_bound = std::max(max_bound, pa.bound_positions.size());
  }
  ex.scratch_targets.resize(max_bound);
  ex.hash_index.resize(ex.plan.order.size());
  ex.block_pool.resize(ex.plan.order.size());
  ex.PrepareEmit();
  // The legacy evaluator prunes the whole enumeration when a comparison
  // or negated atom already fails under the initial bindings.
  if (!ex.ChecksHold(ex.plan.initial_checks, ex.plan.initial_neg_checks,
                     initial_slots.data())) {
    return Status::Ok();
  }

  Block root;
  root.data = std::move(initial_slots);
  root.count = 1;
  ex.Process(0, root);
  return ex.error;
}

}  // namespace mdqa::datalog
