#include "storage/format.h"

namespace mdqa::storage {

namespace {
Status Truncated(const char* what) {
  return Status::Internal(std::string("format: truncated ") + what);
}
}  // namespace

void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  buf[0] = static_cast<char>(v & 0xff);
  buf[1] = static_cast<char>((v >> 8) & 0xff);
  buf[2] = static_cast<char>((v >> 16) & 0xff);
  buf[3] = static_cast<char>((v >> 24) & 0xff);
  dst->append(buf, 4);
}

void PutFixed64(std::string* dst, uint64_t v) {
  PutFixed32(dst, static_cast<uint32_t>(v & 0xffffffffu));
  PutFixed32(dst, static_cast<uint32_t>(v >> 32));
}

void PutVarint64(std::string* dst, uint64_t v) {
  while (v >= 0x80) {
    dst->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  dst->push_back(static_cast<char>(v));
}

void PutVarint32(std::string* dst, uint32_t v) { PutVarint64(dst, v); }

void PutLengthPrefixed(std::string* dst, std::string_view data) {
  PutVarint64(dst, data.size());
  dst->append(data.data(), data.size());
}

Result<uint32_t> SliceReader::GetFixed32() {
  if (remaining() < 4) return Truncated("fixed32");
  const auto* p = reinterpret_cast<const unsigned char*>(p_);
  uint32_t v = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
               (static_cast<uint32_t>(p[2]) << 16) |
               (static_cast<uint32_t>(p[3]) << 24);
  p_ += 4;
  return v;
}

Result<uint64_t> SliceReader::GetFixed64() {
  MDQA_ASSIGN_OR_RETURN(uint32_t lo, GetFixed32());
  MDQA_ASSIGN_OR_RETURN(uint32_t hi, GetFixed32());
  return (static_cast<uint64_t>(hi) << 32) | lo;
}

Result<uint64_t> SliceReader::GetVarint64() {
  uint64_t v = 0;
  for (int shift = 0; shift <= 63; shift += 7) {
    if (p_ == end_) return Truncated("varint");
    uint8_t byte = static_cast<uint8_t>(*p_++);
    v |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return v;
  }
  return Status::Internal("format: varint too long");
}

Result<uint32_t> SliceReader::GetVarint32() {
  MDQA_ASSIGN_OR_RETURN(uint64_t v, GetVarint64());
  if (v > 0xffffffffull) {
    return Status::Internal("format: varint32 out of range");
  }
  return static_cast<uint32_t>(v);
}

Result<std::string_view> SliceReader::GetLengthPrefixed() {
  MDQA_ASSIGN_OR_RETURN(uint64_t len, GetVarint64());
  return GetBytes(len);
}

Result<std::string_view> SliceReader::GetBytes(size_t n) {
  if (remaining() < n) return Truncated("bytes");
  std::string_view out(p_, n);
  p_ += n;
  return out;
}

void PutValue(std::string* dst, const Value& v) {
  dst->push_back(static_cast<char>(v.type()));
  switch (v.type()) {
    case ValueType::kInt64:
      PutFixed64(dst, static_cast<uint64_t>(v.AsInt()));
      break;
    case ValueType::kDouble: {
      double d = v.AsDouble();
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(bits));
      PutFixed64(dst, bits);
      break;
    }
    case ValueType::kString:
      PutLengthPrefixed(dst, v.AsString());
      break;
  }
}

Result<Value> GetValue(SliceReader* r) {
  MDQA_ASSIGN_OR_RETURN(std::string_view tag, r->GetBytes(1));
  switch (static_cast<uint8_t>(tag[0])) {
    case static_cast<uint8_t>(ValueType::kInt64): {
      MDQA_ASSIGN_OR_RETURN(uint64_t bits, r->GetFixed64());
      return Value::Int(static_cast<int64_t>(bits));
    }
    case static_cast<uint8_t>(ValueType::kDouble): {
      MDQA_ASSIGN_OR_RETURN(uint64_t bits, r->GetFixed64());
      double d;
      __builtin_memcpy(&d, &bits, sizeof(d));
      return Value::Real(d);
    }
    case static_cast<uint8_t>(ValueType::kString): {
      MDQA_ASSIGN_OR_RETURN(std::string_view s, r->GetLengthPrefixed());
      return Value::Str(std::string(s));
    }
    default:
      return Status::Internal("format: unknown value tag");
  }
}

}  // namespace mdqa::storage
