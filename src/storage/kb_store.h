#ifndef MDQA_STORAGE_KB_STORE_H_
#define MDQA_STORAGE_KB_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/result.h"
#include "storage/checkpoint.h"
#include "storage/env.h"
#include "storage/wal.h"

namespace mdqa::storage {

struct StoreOptions {
  /// Size caps on what recovery will even attempt to read — a corrupt
  /// length field must not allocate the machine away.
  uint64_t max_checkpoint_bytes = 1ull << 30;  // 1 GiB
  uint64_t max_wal_bytes = 256ull << 20;       // 256 MiB
  /// Committed checkpoints retained for corruption fallback (the newest
  /// plus `keep - 1` predecessors, each with its WAL).
  uint32_t checkpoints_to_keep = 2;
};

/// What recovery found. `degradations` is the loud part of the contract:
/// every deviation from "newest checkpoint + full WAL" — a corrupt
/// checkpoint skipped, a torn WAL tail cut, a fallback that lost
/// generations — lands here as a labeled line. Empty degradations means
/// the recovered state is exactly the last committed one; non-empty means
/// the caller MUST surface them (the server refuses silent divergence by
/// construction: it either replays to the committed generation or says
/// what it lost).
struct RecoveredState {
  bool has_checkpoint = false;
  KbImage image;
  /// Committed batches to replay on top of the image, oldest first;
  /// target generations are contiguous from image.meta.generation + 1.
  std::vector<WalRecord> wal_records;
  std::vector<std::string> degradations;
};

/// Durability backend for the assessment KB: checkpoints of the full
/// session image plus a WAL of committed DeltaBatches since the last
/// checkpoint. One writer at a time; calls are internally serialized.
///
/// Commit protocol (the server's writer thread):
///   1. apply the batch in memory (ApplyUpdate + Reassess),
///   2. AppendBatch — fsync'd WAL append; THIS is the commit point,
///   3. publish the new snapshot to readers.
/// Checkpoints (startup, drain) fold the WAL into a new image:
///   write ckpt tmp → fsync → rename → dir fsync → start fresh WAL →
///   prune old checkpoints beyond the retention window.
class KbStore {
 public:
  virtual ~KbStore() = default;

  /// Scans the store and reconstructs the newest recoverable state,
  /// falling back across retained checkpoints on corruption. Also
  /// prepares the store for appending (reopens the WAL, truncating a
  /// torn tail to its valid prefix). Call exactly once, before any
  /// AppendBatch.
  virtual Result<RecoveredState> Recover() = 0;

  /// Durably records a committed batch. Requires an open WAL — i.e.
  /// Recover() found a checkpoint, or WriteCheckpoint() created one.
  /// On error the store is wedged: stop committing.
  virtual Status AppendBatch(const quality::DeltaBatch& batch,
                             uint64_t target_generation) = 0;

  /// Atomically commits `image` as the newest checkpoint, rotates the
  /// WAL, and prunes beyond the retention window.
  virtual Status WriteCheckpoint(const KbImage& image) = 0;
};

/// On-disk layout under `dir` (created if missing):
///   ckpt-<generation, 20 digits>        committed checkpoints
///   wal-<generation, 20 digits>.log     batches committed after that
///                                       checkpoint
///   *.tmp                               in-flight writes; ignored and
///                                       swept by recovery
Result<std::unique_ptr<KbStore>> OpenDiskKbStore(Env* env,
                                                 const std::string& dir,
                                                 StoreOptions options = {});

/// Volatile backend: images and batches live in memory only. Useful for
/// tests and as the no-data-dir default — same interface, no durability.
std::unique_ptr<KbStore> NewInMemoryKbStore();

}  // namespace mdqa::storage

#endif  // MDQA_STORAGE_KB_STORE_H_
