#include "storage/fault_env.h"

namespace mdqa::storage {

/// Writable handle into the in-memory filesystem. Looks its record up by
/// path on every call so a rename/remove of an open file surfaces as a
/// loud error instead of resurrecting stale bytes.
class FaultyWritableFile : public WritableFile {
 public:
  FaultyWritableFile(FaultyEnv* env, std::string path)
      : env_(env), path_(std::move(path)) {}

  Status Append(std::string_view data) override {
    std::lock_guard<std::mutex> lock(env_->mu_);
    MDQA_RETURN_IF_ERROR(env_->CheckCrashedLocked());
    auto it = env_->files_.find(path_);
    if (it == env_->files_.end()) {
      return Status::Internal("fs: file vanished under writer: " + path_);
    }
    Status full_fault = env_->HitLocked("fs.append");
    if (!full_fault.ok()) return full_fault;
    Status short_fault = env_->HitLocked("fs.append.short");
    if (!short_fault.ok()) {
      // A short write: a strict prefix lands in the page cache, then the
      // syscall reports failure. The caller sees an error; the bytes are
      // nonetheless in flight toward the platter.
      size_t keep =
          data.empty() ? 0 : env_->NextRandLocked() % data.size();
      it->second.unsynced.append(data.data(), keep);
      return short_fault;
    }
    size_t applied = 0;
    Status crash = env_->ChargeOpLocked(data.size(), &applied);
    it->second.unsynced.append(data.data(), applied);
    return crash;
  }

  Status Sync() override {
    std::lock_guard<std::mutex> lock(env_->mu_);
    MDQA_RETURN_IF_ERROR(env_->CheckCrashedLocked());
    auto it = env_->files_.find(path_);
    if (it == env_->files_.end()) {
      return Status::Internal("fs: file vanished under writer: " + path_);
    }
    Status fault = env_->HitLocked("fs.sync");
    if (!fault.ok()) return fault;
    Status lie = env_->HitLocked("fs.sync.lie");
    size_t unused = 0;
    MDQA_RETURN_IF_ERROR(env_->ChargeOpLocked(0, &unused));
    if (!lie.ok()) {
      // The lying disk: report success, persist nothing. The armed status
      // is only the trigger — callers must never see it.
      return Status::Ok();
    }
    it->second.persisted.append(it->second.unsynced);
    it->second.unsynced.clear();
    return Status::Ok();
  }

  Status Close() override { return Status::Ok(); }

 private:
  FaultyEnv* env_;
  std::string path_;
};

FaultyEnv::FaultyEnv(uint64_t seed, FaultInjector* injector)
    : injector_(injector), rng_(seed == 0 ? 0x9e3779b97f4a7c15ull : seed) {}

void FaultyEnv::set_injector(FaultInjector* injector) {
  std::lock_guard<std::mutex> lock(mu_);
  injector_ = injector;
}

void FaultyEnv::ArmCrashAtOp(uint64_t op) {
  std::lock_guard<std::mutex> lock(mu_);
  crash_at_op_ = op == 0 ? 0 : op_count_ + op;
}

void FaultyEnv::SetTornTailOnCrash(bool enabled) {
  std::lock_guard<std::mutex> lock(mu_);
  torn_tail_ = enabled;
}

void FaultyEnv::Crash() {
  std::lock_guard<std::mutex> lock(mu_);
  // Page cache is gone. With torn tails, a seeded prefix of each file's
  // unsynced suffix made it to the platter before the power cut.
  for (auto& [path, rec] : files_) {
    (void)path;
    if (torn_tail_ && !rec.unsynced.empty()) {
      size_t keep = NextRandLocked() % (rec.unsynced.size() + 1);
      rec.persisted.append(rec.unsynced, 0, keep);
    }
    rec.unsynced.clear();
  }
  // Namespace operations not covered by a SyncDir roll back, newest
  // first.
  for (auto it = pending_.rbegin(); it != pending_.rend(); ++it) {
    switch (it->kind) {
      case PendingOp::kCreate:
        if (it->had_prior) {
          files_[it->path] = it->prior;
        } else {
          files_.erase(it->path);
        }
        break;
      case PendingOp::kRename: {
        auto moved = files_.find(it->path);
        if (moved != files_.end()) {
          files_[it->other] = moved->second;
          files_.erase(it->path);
        }
        if (it->had_prior) files_[it->path] = it->prior;
        break;
      }
      case PendingOp::kRemove:
        files_[it->path] = it->prior;
        break;
    }
  }
  pending_.clear();
  crashed_ = false;
  crash_at_op_ = 0;
}

bool FaultyEnv::crashed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashed_;
}

uint64_t FaultyEnv::ops() const {
  std::lock_guard<std::mutex> lock(mu_);
  return op_count_;
}

Status FaultyEnv::CorruptByte(const std::string& path, size_t offset,
                              uint8_t xor_mask) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("fs: no file: " + path);
  if (offset >= it->second.persisted.size()) {
    return Status::InvalidArgument("fs: corrupt offset beyond file: " + path);
  }
  it->second.persisted[offset] =
      static_cast<char>(it->second.persisted[offset] ^ xor_mask);
  return Status::Ok();
}

Status FaultyEnv::TruncateTo(const std::string& path, size_t new_size) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("fs: no file: " + path);
  if (new_size < it->second.persisted.size()) {
    it->second.persisted.resize(new_size);
  }
  it->second.unsynced.clear();
  return Status::Ok();
}

Result<size_t> FaultyEnv::FileSize(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("fs: no file: " + path);
  return it->second.persisted.size() + it->second.unsynced.size();
}

Result<std::unique_ptr<WritableFile>> FaultyEnv::NewWritableFile(
    const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  MDQA_RETURN_IF_ERROR(CheckCrashedLocked());
  MDQA_RETURN_IF_ERROR(HitLocked("fs.open"));
  size_t unused = 0;
  MDQA_RETURN_IF_ERROR(ChargeOpLocked(0, &unused));
  PendingOp op;
  op.kind = PendingOp::kCreate;
  op.path = path;
  auto it = files_.find(path);
  if (it != files_.end()) {
    op.had_prior = true;
    op.prior.persisted = it->second.persisted;
  }
  pending_.push_back(std::move(op));
  files_[path] = FileRec{};
  return std::unique_ptr<WritableFile>(new FaultyWritableFile(this, path));
}

Result<std::unique_ptr<WritableFile>> FaultyEnv::NewAppendableFile(
    const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  MDQA_RETURN_IF_ERROR(CheckCrashedLocked());
  MDQA_RETURN_IF_ERROR(HitLocked("fs.open"));
  if (files_.find(path) == files_.end()) {
    size_t unused = 0;
    MDQA_RETURN_IF_ERROR(ChargeOpLocked(0, &unused));
    PendingOp op;
    op.kind = PendingOp::kCreate;
    op.path = path;
    pending_.push_back(std::move(op));
    files_[path] = FileRec{};
  }
  return std::unique_ptr<WritableFile>(new FaultyWritableFile(this, path));
}

Result<std::string> FaultyEnv::ReadFile(const std::string& path,
                                        uint64_t max_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  MDQA_RETURN_IF_ERROR(CheckCrashedLocked());
  MDQA_RETURN_IF_ERROR(HitLocked("fs.read"));
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound("fs: cannot open file: " + path);
  }
  uint64_t size = it->second.persisted.size() + it->second.unsynced.size();
  if (size > max_bytes) {
    return Status::ResourceExhausted(
        "fs: file exceeds size cap (" + std::to_string(size) + " > " +
        std::to_string(max_bytes) + " bytes): " + path);
  }
  return it->second.persisted + it->second.unsynced;
}

bool FaultyEnv::FileExists(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return false;
  return files_.find(path) != files_.end();
}

Result<std::vector<std::string>> FaultyEnv::ListDir(const std::string& dir) {
  std::lock_guard<std::mutex> lock(mu_);
  MDQA_RETURN_IF_ERROR(CheckCrashedLocked());
  MDQA_RETURN_IF_ERROR(HitLocked("fs.read"));
  std::string prefix = dir;
  if (!prefix.empty() && prefix.back() != '/') prefix += '/';
  std::vector<std::string> names;
  for (const auto& [path, rec] : files_) {
    (void)rec;
    if (path.size() > prefix.size() && path.compare(0, prefix.size(), prefix) == 0 &&
        path.find('/', prefix.size()) == std::string::npos) {
      names.push_back(path.substr(prefix.size()));
    }
  }
  return names;
}

Status FaultyEnv::CreateDir(const std::string& dir) {
  std::lock_guard<std::mutex> lock(mu_);
  MDQA_RETURN_IF_ERROR(CheckCrashedLocked());
  (void)dir;  // Directories are implicit; creation always succeeds.
  return Status::Ok();
}

Status FaultyEnv::RenameFile(const std::string& from, const std::string& to) {
  std::lock_guard<std::mutex> lock(mu_);
  MDQA_RETURN_IF_ERROR(CheckCrashedLocked());
  MDQA_RETURN_IF_ERROR(HitLocked("fs.rename"));
  size_t unused = 0;
  MDQA_RETURN_IF_ERROR(ChargeOpLocked(0, &unused));
  auto it = files_.find(from);
  if (it == files_.end()) return Status::NotFound("fs: no file: " + from);
  PendingOp op;
  op.kind = PendingOp::kRename;
  op.path = to;
  op.other = from;
  auto old = files_.find(to);
  if (old != files_.end()) {
    op.had_prior = true;
    op.prior.persisted = old->second.persisted;
  }
  pending_.push_back(std::move(op));
  files_[to] = it->second;
  files_.erase(from);
  return Status::Ok();
}

Status FaultyEnv::RemoveFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  MDQA_RETURN_IF_ERROR(CheckCrashedLocked());
  MDQA_RETURN_IF_ERROR(HitLocked("fs.remove"));
  size_t unused = 0;
  MDQA_RETURN_IF_ERROR(ChargeOpLocked(0, &unused));
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("fs: no file: " + path);
  PendingOp op;
  op.kind = PendingOp::kRemove;
  op.path = path;
  op.had_prior = true;
  op.prior.persisted = it->second.persisted;
  pending_.push_back(std::move(op));
  files_.erase(it);
  return Status::Ok();
}

Status FaultyEnv::SyncDir(const std::string& dir) {
  std::lock_guard<std::mutex> lock(mu_);
  MDQA_RETURN_IF_ERROR(CheckCrashedLocked());
  MDQA_RETURN_IF_ERROR(HitLocked("fs.syncdir"));
  size_t unused = 0;
  MDQA_RETURN_IF_ERROR(ChargeOpLocked(0, &unused));
  std::string prefix = dir;
  if (!prefix.empty() && prefix.back() != '/') prefix += '/';
  auto under_dir = [&prefix](const std::string& p) {
    return p.compare(0, prefix.size(), prefix) == 0;
  };
  std::vector<PendingOp> keep;
  for (auto& op : pending_) {
    if (!under_dir(op.path)) keep.push_back(std::move(op));
  }
  pending_ = std::move(keep);
  return Status::Ok();
}

Status FaultyEnv::CheckCrashedLocked() {
  if (crashed_) return Status::Cancelled("fs: simulated crash (machine down)");
  return Status::Ok();
}

Status FaultyEnv::ChargeOpLocked(size_t partial_budget,
                                 size_t* partial_applied) {
  ++op_count_;
  if (crash_at_op_ != 0 && op_count_ >= crash_at_op_) {
    crashed_ = true;
    *partial_applied =
        partial_budget == 0 ? 0 : NextRandLocked() % (partial_budget + 1);
    return Status::Cancelled("fs: simulated crash at op " +
                             std::to_string(op_count_));
  }
  *partial_applied = partial_budget;
  return Status::Ok();
}

Status FaultyEnv::HitLocked(const char* probe) {
  if (injector_ == nullptr) return Status::Ok();
  return injector_->Hit(probe);
}

uint64_t FaultyEnv::NextRandLocked() {
  // splitmix64 — deterministic per seed, cheap, good enough to pick torn
  // prefix lengths.
  rng_ += 0x9e3779b97f4a7c15ull;
  uint64_t z = rng_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace mdqa::storage
