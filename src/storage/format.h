#ifndef MDQA_STORAGE_FORMAT_H_
#define MDQA_STORAGE_FORMAT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "base/result.h"
#include "relational/value.h"

namespace mdqa::storage {

/// Little-endian fixed and LEB128 varint primitives shared by the
/// checkpoint format and the WAL. Encoders append to a std::string;
/// the decoder is a bounds-checked cursor that turns any overrun or
/// malformed varint into a Status instead of UB — corrupt files must
/// fail loudly, never read out of bounds.

void PutFixed32(std::string* dst, uint32_t v);
void PutFixed64(std::string* dst, uint64_t v);
void PutVarint32(std::string* dst, uint32_t v);
void PutVarint64(std::string* dst, uint64_t v);
/// varint length + raw bytes.
void PutLengthPrefixed(std::string* dst, std::string_view data);

class SliceReader;

/// Tagged Value: [u8 ValueType][fixed64 int/double bits |
/// length-prefixed string]. Shared by the checkpoint value table and WAL
/// tuple payloads.
void PutValue(std::string* dst, const Value& v);
Result<Value> GetValue(SliceReader* r);

class SliceReader {
 public:
  explicit SliceReader(std::string_view data) : p_(data.data()), end_(p_ + data.size()) {}

  bool empty() const { return p_ == end_; }
  size_t remaining() const { return static_cast<size_t>(end_ - p_); }

  Result<uint32_t> GetFixed32();
  Result<uint64_t> GetFixed64();
  Result<uint32_t> GetVarint32();
  Result<uint64_t> GetVarint64();
  Result<std::string_view> GetLengthPrefixed();
  /// Raw `n` bytes.
  Result<std::string_view> GetBytes(size_t n);

 private:
  const char* p_;
  const char* end_;
};

}  // namespace mdqa::storage

#endif  // MDQA_STORAGE_FORMAT_H_
