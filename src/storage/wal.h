#ifndef MDQA_STORAGE_WAL_H_
#define MDQA_STORAGE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/result.h"
#include "quality/context.h"
#include "storage/env.h"

namespace mdqa::storage {

/// Write-ahead log of committed `DeltaBatch` updates. One record per
/// batch, framed as
///   [fixed32 payload_len][fixed32 masked-crc32(payload)][payload]
/// where the payload carries the generation the batch produced plus the
/// full batch (relation names and raw tuple values — batches are small,
/// so no dictionary here). `Append` fsyncs before returning: a batch is
/// committed iff its record is durable, and the server publishes a new
/// generation only after the WAL ack (write-ahead in the strict sense).
///
/// Replay tolerates exactly one kind of damage silently-at-the-data-level
/// but loudly-at-the-report-level: a torn tail. The first record whose
/// frame is short or whose CRC mismatches ends the replay; everything
/// after it is ignored and the cut is reported in `truncated_reason`.
/// A torn tail is a normal crash artifact (the record never committed —
/// its fsync cannot have been acked); mid-log corruption is
/// indistinguishable from it on disk, which is why recovery
/// cross-checks the replayed generation count against expectations and
/// the caller surfaces `truncated_reason` in the degradation report.
class WalWriter {
 public:
  /// Opens `path` for appending (creating it and syncing the directory
  /// entry so an empty log survives a crash).
  static Result<WalWriter> Open(Env* env, const std::string& path);

  WalWriter(WalWriter&&) = default;
  WalWriter& operator=(WalWriter&&) = default;

  /// Appends one record and fsyncs. On any error the WAL must be
  /// considered wedged: the caller stops committing (the in-memory state
  /// may be ahead of the log, never behind).
  Status Append(const quality::DeltaBatch& batch, uint64_t target_generation);

  uint64_t bytes_appended() const { return bytes_appended_; }

 private:
  explicit WalWriter(std::unique_ptr<WritableFile> file)
      : file_(std::move(file)) {}

  std::unique_ptr<WritableFile> file_;
  uint64_t bytes_appended_ = 0;
};

struct WalRecord {
  uint64_t target_generation = 0;
  quality::DeltaBatch batch;
};

struct WalReplay {
  std::vector<WalRecord> records;
  /// True when a torn/corrupt tail was cut; `truncated_reason` labels
  /// where and why. Zero records + untruncated means a clean empty log.
  bool truncated = false;
  std::string truncated_reason;
  /// Bytes of the valid prefix (the offset of the cut).
  uint64_t valid_bytes = 0;
};

/// Reads every valid record of the log at `path`. A missing file is an
/// empty replay (a store that never committed a batch writes no log).
/// Decode failures inside a CRC-valid frame are real corruption and fail
/// the whole replay (kInternal) — CRC said the bytes are what we wrote,
/// so the format itself is broken.
Result<WalReplay> ReadWal(Env* env, const std::string& path,
                          uint64_t max_bytes);

}  // namespace mdqa::storage

#endif  // MDQA_STORAGE_WAL_H_
