#include "storage/kb_store.h"

#include <algorithm>
#include <cstring>
#include <mutex>
#include <optional>

namespace mdqa::storage {

namespace {

constexpr char kCkptPrefix[] = "ckpt-";
constexpr char kWalPrefix[] = "wal-";
constexpr char kWalSuffix[] = ".log";
constexpr char kTmpSuffix[] = ".tmp";

std::string PadGeneration(uint64_t gen) {
  std::string digits = std::to_string(gen);
  return std::string(20 - std::min<size_t>(20, digits.size()), '0') + digits;
}

std::string CkptName(uint64_t gen) { return kCkptPrefix + PadGeneration(gen); }

std::string WalName(uint64_t gen) {
  return kWalPrefix + PadGeneration(gen) + kWalSuffix;
}

bool EndsWith(const std::string& s, const char* suffix) {
  size_t n = strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

/// Parses "<prefix><20 digits><suffix>" into the generation; nullopt for
/// anything else (foreign files are ignored, never deleted).
std::optional<uint64_t> ParseGeneration(const std::string& name,
                                        const char* prefix,
                                        const char* suffix) {
  size_t pre = strlen(prefix), suf = strlen(suffix);
  if (name.size() != pre + 20 + suf) return std::nullopt;
  if (name.compare(0, pre, prefix) != 0) return std::nullopt;
  if (suf != 0 && name.compare(name.size() - suf, suf, suffix) != 0) {
    return std::nullopt;
  }
  uint64_t gen = 0;
  for (size_t i = pre; i < pre + 20; ++i) {
    char c = name[i];
    if (c < '0' || c > '9') return std::nullopt;
    gen = gen * 10 + static_cast<uint64_t>(c - '0');
  }
  return gen;
}

class DiskKbStore : public KbStore {
 public:
  DiskKbStore(Env* env, std::string dir, StoreOptions options)
      : env_(env), dir_(std::move(dir)), options_(options) {}

  Result<RecoveredState> Recover() override {
    std::lock_guard<std::mutex> lock(mu_);
    RecoveredState state;
    MDQA_ASSIGN_OR_RETURN(std::vector<std::string> names, env_->ListDir(dir_));
    std::vector<uint64_t> ckpt_gens;
    for (const auto& name : names) {
      if (EndsWith(name, kTmpSuffix)) {
        // In-flight write that never committed; sweep it.
        (void)env_->RemoveFile(Path(name));
        continue;
      }
      if (auto gen = ParseGeneration(name, kCkptPrefix, "")) {
        ckpt_gens.push_back(*gen);
      }
    }
    std::sort(ckpt_gens.rbegin(), ckpt_gens.rend());

    for (uint64_t gen : ckpt_gens) {
      auto data = env_->ReadFile(Path(CkptName(gen)), options_.max_checkpoint_bytes);
      if (!data.ok()) {
        state.degradations.push_back("checkpoint " + CkptName(gen) +
                                     " unreadable: " +
                                     data.status().message() +
                                     "; falling back to an older checkpoint");
        continue;
      }
      auto image = DecodeCheckpoint(*data);
      if (!image.ok()) {
        state.degradations.push_back("checkpoint " + CkptName(gen) +
                                     " rejected: " + image.status().message() +
                                     "; falling back to an older checkpoint");
        continue;
      }
      state.has_checkpoint = true;
      state.image = std::move(image).value();
      checkpoint_gen_ = gen;
      break;
    }

    if (!state.has_checkpoint) {
      if (!ckpt_gens.empty()) {
        state.degradations.push_back(
            "all " + std::to_string(ckpt_gens.size()) +
            " checkpoints corrupt; starting from scratch (committed "
            "generations lost)");
      }
      recovered_ = true;
      return state;
    }

    // If we fell back past the newest checkpoint, its WAL-era updates are
    // beyond the surviving WAL; say exactly what window is replayable.
    if (checkpoint_gen_ != ckpt_gens.front()) {
      state.degradations.push_back(
          "resuming from checkpoint generation " +
          std::to_string(checkpoint_gen_) + " instead of " +
          std::to_string(ckpt_gens.front()) +
          "; updates committed after the older checkpoint's log window are "
          "lost");
    }

    std::string wal_path = Path(WalName(checkpoint_gen_));
    MDQA_ASSIGN_OR_RETURN(WalReplay replay,
                          ReadWal(env_, wal_path, options_.max_wal_bytes));
    if (replay.truncated) {
      state.degradations.push_back("wal " + WalName(checkpoint_gen_) +
                                   " tail cut: " + replay.truncated_reason);
      // Rewrite the valid prefix so future appends land after good bytes,
      // never after garbage.
      MDQA_RETURN_IF_ERROR(
          RewriteWalPrefix(wal_path, replay.valid_bytes));
    }
    // The image plus contiguous WAL records is the committed state;
    // a gap inside CRC-valid records is a store bug, not damage — refuse.
    uint64_t expect = state.image.meta.generation;
    for (const auto& rec : replay.records) {
      if (rec.target_generation != expect + 1) {
        return Status::Internal(
            "kb_store: wal generation gap: record targets " +
            std::to_string(rec.target_generation) + " after " +
            std::to_string(expect));
      }
      expect = rec.target_generation;
    }
    state.wal_records = std::move(replay.records);

    MDQA_ASSIGN_OR_RETURN(wal_, WalWriter::Open(env_, wal_path));
    recovered_ = true;
    return state;
  }

  Status AppendBatch(const quality::DeltaBatch& batch,
                     uint64_t target_generation) override {
    std::lock_guard<std::mutex> lock(mu_);
    if (!wal_.has_value()) {
      return Status::FailedPrecondition(
          "kb_store: no open WAL (write a checkpoint first)");
    }
    return wal_->Append(batch, target_generation);
  }

  Status WriteCheckpoint(const KbImage& image) override {
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t gen = image.meta.generation;
    std::string final_path = Path(CkptName(gen));
    std::string tmp_path = final_path + kTmpSuffix;

    std::string encoded = EncodeCheckpoint(image);
    {
      MDQA_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                            env_->NewWritableFile(tmp_path));
      MDQA_RETURN_IF_ERROR(file->Append(encoded));
      MDQA_RETURN_IF_ERROR(file->Sync());
      MDQA_RETURN_IF_ERROR(file->Close());
    }
    MDQA_RETURN_IF_ERROR(env_->RenameFile(tmp_path, final_path));
    MDQA_RETURN_IF_ERROR(env_->SyncDir(dir_));

    // The checkpoint is durable; updates from here on belong to its WAL.
    wal_.reset();
    MDQA_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> fresh,
                          env_->NewWritableFile(Path(WalName(gen))));
    MDQA_RETURN_IF_ERROR(fresh->Sync());
    MDQA_RETURN_IF_ERROR(fresh->Close());
    MDQA_RETURN_IF_ERROR(env_->SyncDir(dir_));
    MDQA_ASSIGN_OR_RETURN(wal_, WalWriter::Open(env_, Path(WalName(gen))));
    checkpoint_gen_ = gen;

    PruneOldCheckpoints(gen);
    return Status::Ok();
  }

 private:
  std::string Path(const std::string& name) const { return dir_ + "/" + name; }

  Status RewriteWalPrefix(const std::string& path, uint64_t valid_bytes) {
    MDQA_ASSIGN_OR_RETURN(std::string data,
                          env_->ReadFile(path, options_.max_wal_bytes));
    std::string tmp = path + kTmpSuffix;
    MDQA_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                          env_->NewWritableFile(tmp));
    MDQA_RETURN_IF_ERROR(
        file->Append(std::string_view(data).substr(0, valid_bytes)));
    MDQA_RETURN_IF_ERROR(file->Sync());
    MDQA_RETURN_IF_ERROR(file->Close());
    MDQA_RETURN_IF_ERROR(env_->RenameFile(tmp, path));
    return env_->SyncDir(dir_);
  }

  /// Best-effort removal of checkpoints (and their logs) beyond the
  /// retention window. Failures are ignored — stale files cost disk, not
  /// correctness; recovery simply never picks them over newer ones.
  void PruneOldCheckpoints(uint64_t newest) {
    auto names = env_->ListDir(dir_);
    if (!names.ok()) return;
    std::vector<uint64_t> gens;
    for (const auto& name : *names) {
      if (auto gen = ParseGeneration(name, kCkptPrefix, "")) {
        gens.push_back(*gen);
      }
    }
    std::sort(gens.rbegin(), gens.rend());
    uint32_t kept = 0;
    for (uint64_t gen : gens) {
      if (gen > newest) continue;  // never touch anything newer than us
      if (++kept <= options_.checkpoints_to_keep) continue;
      (void)env_->RemoveFile(Path(CkptName(gen)));
      (void)env_->RemoveFile(Path(WalName(gen)));
    }
  }

  Env* env_;
  std::string dir_;
  StoreOptions options_;
  std::mutex mu_;
  std::optional<WalWriter> wal_;
  uint64_t checkpoint_gen_ = 0;
  bool recovered_ = false;
};

class InMemoryKbStore : public KbStore {
 public:
  Result<RecoveredState> Recover() override {
    std::lock_guard<std::mutex> lock(mu_);
    RecoveredState state;
    state.has_checkpoint = has_image_;
    if (has_image_) state.image = image_;
    state.wal_records = records_;
    return state;
  }

  Status AppendBatch(const quality::DeltaBatch& batch,
                     uint64_t target_generation) override {
    std::lock_guard<std::mutex> lock(mu_);
    if (!has_image_) {
      return Status::FailedPrecondition(
          "kb_store: no checkpoint to log against");
    }
    records_.push_back(WalRecord{target_generation, batch});
    return Status::Ok();
  }

  Status WriteCheckpoint(const KbImage& image) override {
    std::lock_guard<std::mutex> lock(mu_);
    image_ = image;
    has_image_ = true;
    records_.clear();
    return Status::Ok();
  }

 private:
  std::mutex mu_;
  bool has_image_ = false;
  KbImage image_;
  std::vector<WalRecord> records_;
};

}  // namespace

Result<std::unique_ptr<KbStore>> OpenDiskKbStore(Env* env,
                                                 const std::string& dir,
                                                 StoreOptions options) {
  if (options.checkpoints_to_keep == 0) {
    return Status::InvalidArgument("kb_store: checkpoints_to_keep must be > 0");
  }
  MDQA_RETURN_IF_ERROR(env->CreateDir(dir));
  return std::unique_ptr<KbStore>(new DiskKbStore(env, dir, options));
}

std::unique_ptr<KbStore> NewInMemoryKbStore() {
  return std::make_unique<InMemoryKbStore>();
}

}  // namespace mdqa::storage
