#ifndef MDQA_STORAGE_SESSION_IMAGE_H_
#define MDQA_STORAGE_SESSION_IMAGE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "base/result.h"
#include "quality/context.h"
#include "storage/checkpoint.h"

namespace mdqa::storage {

/// Bridge between live quality sessions and the checkpoint image: capture
/// serializes a PreparedContext's database + materialized instance into a
/// vocabulary-independent KbImage; restore rebuilds both against a fresh
/// context so the session resumes at the committed generation WITHOUT
/// re-running the chase (the expensive part of Prepare).

/// Snapshots `session` into an image committed at `generation` after
/// `applied_updates` batches. `scenario` names the program that produced
/// the session; recovery refuses to marry the image to a different one.
/// Fails with kFailedPrecondition when the session's chase was truncated
/// (no usable frontier — checkpointing it would persist an
/// under-approximation as if it were the fixpoint).
Result<KbImage> CaptureSessionImage(const quality::PreparedContext& session,
                                    uint64_t generation,
                                    uint64_t applied_updates,
                                    const std::string& scenario);

/// Snapshots a bare chased instance (no extensional database section) —
/// the mdqa_shell `save-kb` path, where the program travels as text and
/// only the materialization is worth persisting. `frontier` must be
/// valid; its round/merge counters seed the restored ChaseStats.
Result<KbImage> CaptureInstanceImage(const datalog::Instance& instance,
                                     const datalog::ChaseFrontier& frontier,
                                     uint64_t generation,
                                     const std::string& scenario);

/// Rebuilds the extensional database of `image` (schemas + rows). Feed
/// this to `QualityContext::ReplaceDatabase` before `PrepareRestored` so
/// the compiled program's facts match the persisted generation.
Result<Database> DatabaseFromImage(const KbImage& image);

/// A MaterializationRebuilder that reconstructs the chased instance of
/// `image` over the restored program's vocabulary: constants re-interned
/// from the value table, labeled nulls reserved through the persisted
/// watermark, facts re-added in captured row order (preserving the
/// Facts() byte-identity contract), then frozen. The regenerated frontier
/// is valid, so subsequent ApplyUpdate batches resume incrementally.
quality::MaterializationRebuilder ImageRebuilder(
    std::shared_ptr<const KbImage> image,
    datalog::StorageMode storage = datalog::StorageMode::kColumnar);

}  // namespace mdqa::storage

#endif  // MDQA_STORAGE_SESSION_IMAGE_H_
