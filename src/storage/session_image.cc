#include "storage/session_image.h"

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "datalog/instance.h"

namespace mdqa::storage {

namespace {

/// First-appearance value interner: deterministic given a fixed visit
/// order (database rows in RelationNames order, then instance tables by
/// ascending predicate id).
class ValueInterner {
 public:
  explicit ValueInterner(std::vector<Value>* out) : out_(out) {}

  uint32_t Intern(const Value& v) {
    auto it = ids_.find(v);
    if (it != ids_.end()) return it->second;
    uint32_t id = static_cast<uint32_t>(out_->size());
    out_->push_back(v);
    ids_.emplace(v, id);
    return id;
  }

 private:
  std::vector<Value>* out_;
  std::map<Value, uint32_t> ids_;
};

Status CorruptImage(const std::string& why) {
  return Status::Internal("session image: " + why);
}

/// Serializes every table of `instance` into `image->tables`, by
/// ascending predicate id, rows in Facts() order (the byte-identity
/// contract). Constants intern through `interner`.
Status CaptureTables(const datalog::Instance& instance,
                     ValueInterner* interner, KbImage* image) {
  const auto& vocab = instance.vocab();
  std::vector<uint32_t> preds = instance.Predicates();
  std::sort(preds.begin(), preds.end());
  for (uint32_t pred : preds) {
    const datalog::FactTable* table = instance.Table(pred);
    if (table == nullptr) continue;
    KbTableImage timg;
    timg.predicate = vocab->PredicateName(pred);
    timg.arity = static_cast<uint32_t>(table->arity());
    timg.frozen_rows = table->frozen_rows();
    if (table->storage_mode() == datalog::StorageMode::kColumnar) {
      for (size_t k = 0; k < table->NumSegments(); ++k) {
        timg.segment_rows.push_back(table->SegmentAt(k).segment->rows());
      }
    } else {
      timg.segment_rows.push_back(static_cast<uint32_t>(table->size()));
    }
    uint32_t rows = static_cast<uint32_t>(table->size());
    timg.terms.reserve(static_cast<size_t>(rows) * timg.arity);
    timg.levels.reserve(rows);
    for (uint32_t i = 0; i < rows; ++i) {
      const datalog::Term* row = table->Row(i);
      for (uint32_t j = 0; j < timg.arity; ++j) {
        datalog::Term t = row[j];
        if (t.IsConstant()) {
          timg.terms.push_back(PackImageTerm(
              false, interner->Intern(vocab->ConstantValue(t.id()))));
        } else if (t.IsNull()) {
          timg.terms.push_back(PackImageTerm(true, t.id()));
        } else {
          return CorruptImage("variable term in ground fact of " +
                              timg.predicate);
        }
      }
      timg.levels.push_back(table->Level(i));
    }
    image->tables.push_back(std::move(timg));
  }
  return Status::Ok();
}

}  // namespace

Result<KbImage> CaptureSessionImage(const quality::PreparedContext& session,
                                    uint64_t generation,
                                    uint64_t applied_updates,
                                    const std::string& scenario) {
  const datalog::ChaseStats& stats = session.chase_stats();
  if (!stats.frontier.valid) {
    return Status::FailedPrecondition(
        "session image: cannot checkpoint a truncated session (chase did not "
        "reach its fixpoint; no usable frontier)");
  }
  const datalog::Instance& instance = session.instance();
  const auto& vocab = instance.vocab();

  KbImage image;
  image.meta.generation = generation;
  image.meta.applied_updates = applied_updates;
  image.meta.scenario = scenario;
  image.meta.reached_fixpoint = stats.reached_fixpoint;
  image.meta.rounds = stats.rounds;
  image.meta.tgd_firings = stats.tgd_firings;
  image.meta.facts_added = stats.facts_added;
  image.meta.nulls_created = stats.nulls_created;
  image.meta.egd_merges = stats.egd_merges;
  image.meta.null_watermark = vocab->NumNulls();

  ValueInterner interner(&image.values);

  // Extensional database, in relation insertion order.
  const Database& db = session.database();
  for (const std::string& name : db.RelationNames()) {
    MDQA_ASSIGN_OR_RETURN(const Relation* rel, db.GetRelation(name));
    KbRelationImage rimg;
    rimg.name = name;
    for (const Attribute& attr : rel->schema().attributes()) {
      rimg.attr_names.push_back(attr.name);
      rimg.attr_types.push_back(static_cast<uint8_t>(attr.type));
    }
    rimg.rows.reserve(rel->size());
    for (const Tuple& row : rel->rows()) {
      std::vector<uint32_t> encoded;
      encoded.reserve(row.size());
      for (const Value& v : row) encoded.push_back(interner.Intern(v));
      rimg.rows.push_back(std::move(encoded));
    }
    image.relations.push_back(std::move(rimg));
  }

  // Materialized instance, tables by ascending predicate id, rows in
  // Facts() order.
  MDQA_RETURN_IF_ERROR(CaptureTables(instance, &interner, &image));
  return image;
}

Result<KbImage> CaptureInstanceImage(const datalog::Instance& instance,
                                     const datalog::ChaseFrontier& frontier,
                                     uint64_t generation,
                                     const std::string& scenario) {
  if (!frontier.valid) {
    return Status::FailedPrecondition(
        "session image: cannot checkpoint a truncated materialization (no "
        "usable frontier)");
  }
  KbImage image;
  image.meta.generation = generation;
  image.meta.applied_updates = 0;
  image.meta.scenario = scenario;
  image.meta.reached_fixpoint = true;
  image.meta.rounds = frontier.round;
  image.meta.egd_merges = frontier.egd_merges;
  image.meta.null_watermark = instance.vocab()->NumNulls();
  ValueInterner interner(&image.values);
  MDQA_RETURN_IF_ERROR(CaptureTables(instance, &interner, &image));
  return image;
}

Result<Database> DatabaseFromImage(const KbImage& image) {
  Database db;
  for (const KbRelationImage& rimg : image.relations) {
    std::vector<Attribute> attrs;
    attrs.reserve(rimg.attr_names.size());
    for (size_t i = 0; i < rimg.attr_names.size(); ++i) {
      if (rimg.attr_types[i] > static_cast<uint8_t>(AttrType::kString)) {
        return CorruptImage("relation " + rimg.name +
                            ": unknown attribute type");
      }
      attrs.push_back(Attribute{rimg.attr_names[i],
                                static_cast<AttrType>(rimg.attr_types[i])});
    }
    MDQA_ASSIGN_OR_RETURN(RelationSchema schema,
                          RelationSchema::Create(rimg.name, std::move(attrs)));
    Relation rel(std::move(schema));
    for (const std::vector<uint32_t>& row : rimg.rows) {
      Tuple tuple;
      tuple.reserve(row.size());
      for (uint32_t idx : row) tuple.push_back(image.values[idx]);
      MDQA_RETURN_IF_ERROR(rel.Insert(std::move(tuple)));
    }
    db.PutRelation(std::move(rel));
  }
  return db;
}

quality::MaterializationRebuilder ImageRebuilder(
    std::shared_ptr<const KbImage> image, datalog::StorageMode storage) {
  return [image, storage](datalog::Program& program)
             -> Result<quality::RestoredMaterialization> {
    const auto& vocab = program.vocab();
    datalog::Instance instance(vocab, storage);

    // Re-intern the dictionary once; image rows then resolve by index.
    std::vector<datalog::Term> term_of_value;
    term_of_value.reserve(image->values.size());
    for (const Value& v : image->values) term_of_value.push_back(vocab->Const(v));

    // Reserve persisted null ids so replayed updates mint fresh ones and
    // the restored facts' nulls keep their captured identities.
    if (image->meta.null_watermark > 0) {
      vocab->ReserveNullsThrough(image->meta.null_watermark - 1);
    }

    for (const KbTableImage& timg : image->tables) {
      MDQA_ASSIGN_OR_RETURN(uint32_t pred,
                            vocab->InternPredicate(timg.predicate, timg.arity));
      uint32_t rows = static_cast<uint32_t>(timg.levels.size());
      for (uint32_t i = 0; i < rows; ++i) {
        std::vector<datalog::Term> terms;
        terms.reserve(timg.arity);
        for (uint32_t j = 0; j < timg.arity; ++j) {
          uint64_t packed = timg.terms[static_cast<size_t>(i) * timg.arity + j];
          if (ImageTermIsNull(packed)) {
            terms.push_back(datalog::Term::Null(ImageTermId(packed)));
          } else {
            terms.push_back(term_of_value[ImageTermId(packed)]);
          }
        }
        if (!instance.AddFact(datalog::Atom(pred, std::move(terms)),
                              timg.levels[i])) {
          return CorruptImage("duplicate row " + std::to_string(i) +
                              " in table " + timg.predicate);
        }
      }
    }
    instance.Freeze();

    quality::RestoredMaterialization mat{std::move(instance),
                                         datalog::ChaseStats{}};
    datalog::ChaseStats& stats = mat.stats;
    stats.reached_fixpoint = image->meta.reached_fixpoint;
    stats.rounds = image->meta.rounds;
    stats.tgd_firings = image->meta.tgd_firings;
    stats.facts_added = image->meta.facts_added;
    stats.nulls_created = image->meta.nulls_created;
    stats.egd_merges = image->meta.egd_merges;
    stats.completeness = Completeness::kComplete;
    stats.stop = datalog::ChaseStop::kNone;
    stats.interruption = Status::Ok();

    datalog::ChaseFrontier& frontier = stats.frontier;
    frontier.valid = true;
    frontier.round = image->meta.rounds;
    frontier.null_watermark = vocab->NumNulls();
    frontier.egd_merges = image->meta.egd_merges;
    frontier.generation = mat.instance.generation();
    for (uint32_t pred : mat.instance.Predicates()) {
      frontier.watermarks[pred] =
          static_cast<uint32_t>(mat.instance.CountFacts(pred));
    }
    return mat;
  };
}

}  // namespace mdqa::storage
