#ifndef MDQA_STORAGE_FAULT_ENV_H_
#define MDQA_STORAGE_FAULT_ENV_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "base/budget.h"
#include "storage/env.h"

namespace mdqa::storage {

/// In-memory filesystem that models a crash-prone disk, so the crash
/// matrix can kill and restart the store at every injection point
/// deterministically — no real process kills, no real disks, runs clean
/// under sanitizers.
///
/// Durability model (strict POSIX):
///   - Each file keeps `persisted` bytes (on the platter) and an
///     `unsynced` suffix (in the page cache). `Sync` promotes unsynced to
///     persisted. `Crash()` drops unsynced data — or, when torn tails are
///     enabled, lets a seeded prefix of it reach the platter first, which
///     is exactly how a torn WAL tail is born.
///   - Directory entries are volatile until `SyncDir`: a file created or
///     renamed into place without a directory sync disappears (or rolls
///     back) at the next crash. The checkpoint commit protocol must spell
///     out its full write→fsync→rename→dirsync sequence or the matrix
///     will catch it.
///
/// Fault arms extend the existing `FaultInjector` (base/budget.h) with a
/// filesystem layer — arm these probe names on the injector passed in:
///   - "fs.append"        fail the Nth Append, no bytes applied (EIO)
///   - "fs.append.short"  fail the Nth Append after a seeded strict
///                        prefix of the payload lands (short write)
///   - "fs.sync"          fail the Nth Sync, nothing promoted
///   - "fs.sync.lie"      the Nth Sync returns OK but persists nothing
///                        (a lying disk; the armed status text is the
///                        label, its code is ignored)
///   - "fs.open", "fs.read", "fs.rename", "fs.remove", "fs.syncdir"
/// plus `ArmCrashAtOp(n)`: the nth mutating operation (append / sync /
/// create / rename / remove / syncdir) takes partial effect, then every
/// subsequent call fails with kCancelled("fs: simulated crash") until
/// `Crash()` is called to model the restart.
class FaultyEnv : public Env {
 public:
  explicit FaultyEnv(uint64_t seed = 1, FaultInjector* injector = nullptr);
  ~FaultyEnv() override = default;

  void set_injector(FaultInjector* injector);

  /// Arms a process-kill at the `op`th mutating operation (1-based).
  /// 0 disarms.
  void ArmCrashAtOp(uint64_t op);

  /// When enabled, Crash() persists a seeded prefix of each file's
  /// unsynced suffix instead of dropping it whole (torn write).
  void SetTornTailOnCrash(bool enabled);

  /// Simulates the machine coming back up: drops page-cache state, rolls
  /// back non-durable directory operations, clears the crashed flag and
  /// any armed crash so recovery code can run against the survivors.
  void Crash();

  bool crashed() const;
  uint64_t ops() const;

  /// Direct corruption helpers for bit-rot / truncation cases (applied to
  /// the persisted image; the file must exist).
  Status CorruptByte(const std::string& path, size_t offset,
                     uint8_t xor_mask);
  Status TruncateTo(const std::string& path, size_t new_size);
  Result<size_t> FileSize(const std::string& path);

  // Env interface.
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override;
  Result<std::unique_ptr<WritableFile>> NewAppendableFile(
      const std::string& path) override;
  Result<std::string> ReadFile(const std::string& path,
                               uint64_t max_bytes) override;
  bool FileExists(const std::string& path) override;
  Result<std::vector<std::string>> ListDir(const std::string& dir) override;
  Status CreateDir(const std::string& dir) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  Status SyncDir(const std::string& dir) override;

 private:
  friend class FaultyWritableFile;

  struct FileRec {
    std::string persisted;
    std::string unsynced;
  };

  /// Namespace operations not yet made durable by SyncDir, in order.
  /// Crash() undoes them in reverse.
  struct PendingOp {
    enum Kind { kCreate, kRename, kRemove } kind;
    std::string path;        // created path / rename target / removed path
    std::string other;       // rename source
    bool had_prior = false;  // target existed before (rename/create/remove)
    FileRec prior;           // its durable image, for rollback
  };

  // All private helpers assume mu_ is held.
  Status CheckCrashedLocked();
  /// Charges one mutating op; returns the simulated-crash status when the
  /// armed op count is reached. `partial_budget`/`partial_applied` let
  /// Append land a seeded prefix before dying.
  Status ChargeOpLocked(size_t partial_budget, size_t* partial_applied);
  Status HitLocked(const char* probe);
  uint64_t NextRandLocked();

  mutable std::mutex mu_;
  std::map<std::string, FileRec> files_;
  std::vector<PendingOp> pending_;
  FaultInjector* injector_;
  uint64_t rng_;
  uint64_t op_count_ = 0;
  uint64_t crash_at_op_ = 0;
  bool crashed_ = false;
  bool torn_tail_ = false;
};

}  // namespace mdqa::storage

#endif  // MDQA_STORAGE_FAULT_ENV_H_
