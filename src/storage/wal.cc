#include "storage/wal.h"

#include "base/crc32.h"
#include "storage/format.h"

namespace mdqa::storage {

namespace {

std::string EncodeRecord(const quality::DeltaBatch& batch,
                         uint64_t target_generation) {
  std::string payload;
  PutVarint64(&payload, target_generation);
  PutVarint64(&payload, batch.deltas.size());
  for (const auto& delta : batch.deltas) {
    PutLengthPrefixed(&payload, delta.relation);
    PutVarint64(&payload, delta.insert_rows.size());
    for (const auto& row : delta.insert_rows) {
      PutVarint64(&payload, row.size());
      for (const auto& v : row) PutValue(&payload, v);
    }
    PutVarint64(&payload, delta.delete_rows.size());
    for (const auto& row : delta.delete_rows) {
      PutVarint64(&payload, row.size());
      for (const auto& v : row) PutValue(&payload, v);
    }
  }
  std::string frame;
  PutFixed32(&frame, static_cast<uint32_t>(payload.size()));
  PutFixed32(&frame, MaskCrc32(Crc32(payload)));
  frame.append(payload);
  return frame;
}

Result<WalRecord> DecodePayload(std::string_view payload) {
  SliceReader r(payload);
  WalRecord rec;
  MDQA_ASSIGN_OR_RETURN(rec.target_generation, r.GetVarint64());
  MDQA_ASSIGN_OR_RETURN(uint64_t num_deltas, r.GetVarint64());
  for (uint64_t i = 0; i < num_deltas; ++i) {
    quality::RelationDelta delta;
    MDQA_ASSIGN_OR_RETURN(std::string_view name, r.GetLengthPrefixed());
    delta.relation = std::string(name);
    MDQA_ASSIGN_OR_RETURN(uint64_t num_inserts, r.GetVarint64());
    for (uint64_t j = 0; j < num_inserts; ++j) {
      MDQA_ASSIGN_OR_RETURN(uint64_t arity, r.GetVarint64());
      Tuple row;
      for (uint64_t k = 0; k < arity; ++k) {
        MDQA_ASSIGN_OR_RETURN(Value v, GetValue(&r));
        row.push_back(std::move(v));
      }
      delta.insert_rows.push_back(std::move(row));
    }
    MDQA_ASSIGN_OR_RETURN(uint64_t num_deletes, r.GetVarint64());
    for (uint64_t j = 0; j < num_deletes; ++j) {
      MDQA_ASSIGN_OR_RETURN(uint64_t arity, r.GetVarint64());
      Tuple row;
      for (uint64_t k = 0; k < arity; ++k) {
        MDQA_ASSIGN_OR_RETURN(Value v, GetValue(&r));
        row.push_back(std::move(v));
      }
      delta.delete_rows.push_back(std::move(row));
    }
    rec.batch.deltas.push_back(std::move(delta));
  }
  if (!r.empty()) {
    return Status::Internal("wal: trailing bytes inside record payload");
  }
  return rec;
}

}  // namespace

Result<WalWriter> WalWriter::Open(Env* env, const std::string& path) {
  MDQA_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                        env->NewAppendableFile(path));
  // Make the directory entry durable up front: a log that exists but is
  // empty must still exist after a crash, or recovery would mistake
  // "never had a log" for "lost the log".
  size_t slash = path.find_last_of('/');
  if (slash != std::string::npos) {
    MDQA_RETURN_IF_ERROR(env->SyncDir(path.substr(0, slash)));
  }
  return WalWriter(std::move(file));
}

Status WalWriter::Append(const quality::DeltaBatch& batch,
                         uint64_t target_generation) {
  std::string frame = EncodeRecord(batch, target_generation);
  MDQA_RETURN_IF_ERROR(file_->Append(frame));
  MDQA_RETURN_IF_ERROR(file_->Sync());
  bytes_appended_ += frame.size();
  return Status::Ok();
}

Result<WalReplay> ReadWal(Env* env, const std::string& path,
                          uint64_t max_bytes) {
  WalReplay replay;
  auto data_or = env->ReadFile(path, max_bytes);
  if (!data_or.ok()) {
    if (data_or.status().code() == StatusCode::kNotFound) return replay;
    return data_or.status();
  }
  const std::string& data = *data_or;
  size_t off = 0;
  while (off < data.size()) {
    // Frame header: fixed32 len + fixed32 masked crc.
    if (data.size() - off < 8) {
      replay.truncated = true;
      replay.truncated_reason =
          "torn frame header at offset " + std::to_string(off) + " (" +
          std::to_string(data.size() - off) + " trailing bytes)";
      break;
    }
    SliceReader header(std::string_view(data).substr(off, 8));
    uint32_t len = *header.GetFixed32();
    uint32_t stored_crc = *header.GetFixed32();
    if (data.size() - off - 8 < len) {
      replay.truncated = true;
      replay.truncated_reason =
          "torn record at offset " + std::to_string(off) + " (payload wants " +
          std::to_string(len) + " bytes, " +
          std::to_string(data.size() - off - 8) + " present)";
      break;
    }
    std::string_view payload = std::string_view(data).substr(off + 8, len);
    if (MaskCrc32(Crc32(payload)) != stored_crc) {
      replay.truncated = true;
      replay.truncated_reason =
          "checksum mismatch at offset " + std::to_string(off);
      break;
    }
    // CRC vouches for the bytes; a decode failure now means the format
    // itself is broken — that is corruption, not a torn tail.
    MDQA_ASSIGN_OR_RETURN(WalRecord rec, DecodePayload(payload));
    replay.records.push_back(std::move(rec));
    off += 8 + len;
    replay.valid_bytes = off;
  }
  return replay;
}

}  // namespace mdqa::storage
