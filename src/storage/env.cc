#include "storage/env.h"

#include <dirent.h>
#include <errno.h>
#include <fcntl.h>
#include <stdio.h>
#include <string.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include "base/fs.h"

namespace mdqa::storage {

namespace {

Status Errno(const char* what, const std::string& path) {
  return Status::Internal(std::string("storage: ") + what + " failed for " +
                          path + ": " + strerror(errno));
}

/// Unbuffered fd-backed file: every Append is a write(2) loop (EINTR and
/// short writes retried), Sync is fsync(2). No stdio buffering — the
/// fault model and the fsync discipline both reason about syscalls.
class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(std::string_view data) override {
    if (fd_ < 0) return Status::FailedPrecondition("storage: file closed");
    size_t off = 0;
    while (off < data.size()) {
      ssize_t n = ::write(fd_, data.data() + off, data.size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Errno("write", path_);
      }
      off += static_cast<size_t>(n);
    }
    return Status::Ok();
  }

  Status Sync() override {
    if (fd_ < 0) return Status::FailedPrecondition("storage: file closed");
    if (::fsync(fd_) != 0) return Errno("fsync", path_);
    return Status::Ok();
  }

  Status Close() override {
    if (fd_ < 0) return Status::Ok();
    int rc = ::close(fd_);
    fd_ = -1;
    if (rc != 0) return Errno("close", path_);
    return Status::Ok();
  }

 private:
  int fd_;
  std::string path_;
};

class PosixEnv : public Env {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override {
    return Open(path, O_WRONLY | O_CREAT | O_TRUNC);
  }

  Result<std::unique_ptr<WritableFile>> NewAppendableFile(
      const std::string& path) override {
    return Open(path, O_WRONLY | O_CREAT | O_APPEND);
  }

  Result<std::string> ReadFile(const std::string& path,
                               uint64_t max_bytes) override {
    return fs::ReadFileToString(path, max_bytes);
  }

  bool FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }

  Result<std::vector<std::string>> ListDir(const std::string& dir) override {
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) return Errno("opendir", dir);
    std::vector<std::string> names;
    struct dirent* entry;
    while ((entry = ::readdir(d)) != nullptr) {
      std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      names.push_back(std::move(name));
    }
    ::closedir(d);
    return names;
  }

  Status CreateDir(const std::string& dir) override {
    if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
      return Errno("mkdir", dir);
    }
    return Status::Ok();
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) return Errno("rename", from);
    return Status::Ok();
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) return Errno("unlink", path);
    return Status::Ok();
  }

  Status SyncDir(const std::string& dir) override {
    int fd = ::open(dir.c_str(), O_RDONLY);
    if (fd < 0) return Errno("open(dir)", dir);
    int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0) return Errno("fsync(dir)", dir);
    return Status::Ok();
  }

 private:
  Result<std::unique_ptr<WritableFile>> Open(const std::string& path,
                                             int flags) {
    int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) return Errno("open", path);
    return std::unique_ptr<WritableFile>(new PosixWritableFile(fd, path));
  }
};

}  // namespace

Env* Env::Posix() {
  static PosixEnv* env = new PosixEnv();
  return env;
}

}  // namespace mdqa::storage
