#ifndef MDQA_STORAGE_CHECKPOINT_H_
#define MDQA_STORAGE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "base/result.h"
#include "relational/value.h"

namespace mdqa::storage {

/// Decoded checkpoint: a self-contained, vocabulary-independent image of
/// a prepared quality session — the extensional database, the chased
/// contextual instance (sealed segment chains, levels, freeze
/// watermarks), and the chase/frontier metadata needed to resume
/// incrementally. Everything symbolic is dictionary-interned through one
/// value table; fact rows are value-table indices (constants) or labeled
/// null ids, never raw strings. Term ids are NOT stable across processes
/// — values are, and restore re-interns them — so the image speaks
/// values, not term ids.
///
/// On-disk layout (docs/durability.md has the full story):
///   "MDQAKB1\n" magic, then a sequence of sections
///   [u8 tag][varint len][payload][fixed32 masked-crc32(tag||payload)]
///   terminated by an end section. Every section is independently
///   checksummed; any mismatch, overrun, or missing terminator decodes
///   to a Status, never to a partial image.

struct KbMeta {
  /// Server generation the image was committed at (PreparedContext
  /// lineage: 1 for the freshly prepared session, +1 per applied batch).
  uint64_t generation = 1;
  /// DeltaBatches folded into this image since the initial Prepare.
  uint64_t applied_updates = 0;
  /// Identifies what program/scenario produced the image; recovery
  /// refuses to marry a checkpoint to a different scenario.
  std::string scenario;

  // ChaseStats of the run that materialized the instance (the frontier
  // itself is regenerated against the rebuilt instance on restore).
  bool reached_fixpoint = true;
  uint64_t rounds = 0;
  uint64_t tgd_firings = 0;
  uint64_t facts_added = 0;
  uint64_t nulls_created = 0;
  uint64_t egd_merges = 0;
  /// Labeled nulls minted in the vocabulary at capture time; restore
  /// reserves null ids through this so replayed updates mint fresh ones.
  uint32_t null_watermark = 0;
};

struct KbRelationImage {
  std::string name;
  std::vector<std::string> attr_names;
  std::vector<uint8_t> attr_types;  // AttrType
  /// Rows in insertion order; each entry indexes KbImage::values.
  std::vector<std::vector<uint32_t>> rows;
};

/// One term of one instance fact: a value-table index (constant) or a
/// labeled null id, tagged in the low bit.
inline uint64_t PackImageTerm(bool is_null, uint32_t id) {
  return (static_cast<uint64_t>(id) << 1) | (is_null ? 1u : 0u);
}
inline bool ImageTermIsNull(uint64_t packed) { return (packed & 1u) != 0; }
inline uint32_t ImageTermId(uint64_t packed) {
  return static_cast<uint32_t>(packed >> 1);
}

struct KbTableImage {
  std::string predicate;
  uint32_t arity = 0;
  /// Rows below this watermark were in sealed segments at capture.
  uint32_t frozen_rows = 0;
  /// Sealed-chain shape: row count per segment, in chain order (the
  /// overlay tail, if any, is the last entry). Sums to the row count.
  std::vector<uint32_t> segment_rows;
  /// Packed terms, row-major (`arity` per row), in Facts() order — the
  /// byte-identity contract of the instance.
  std::vector<uint64_t> terms;
  /// Derivation level per row.
  std::vector<uint32_t> levels;
};

struct KbImage {
  KbMeta meta;
  /// The dictionary: every constant in the database and the instance,
  /// deduplicated.
  std::vector<Value> values;
  std::vector<KbRelationImage> relations;
  std::vector<KbTableImage> tables;
};

/// Serializes the image. Deterministic: the same image always encodes to
/// the same bytes (the crash matrix relies on this for byte-matching).
std::string EncodeCheckpoint(const KbImage& image);

/// Decodes and fully validates a checkpoint: magic, per-section CRCs,
/// terminator, index bounds. Returns kInternal with a labeled reason on
/// any corruption.
Result<KbImage> DecodeCheckpoint(std::string_view data);

}  // namespace mdqa::storage

#endif  // MDQA_STORAGE_CHECKPOINT_H_
