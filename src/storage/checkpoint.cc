#include "storage/checkpoint.h"

#include "base/crc32.h"
#include "relational/schema.h"
#include "storage/format.h"

namespace mdqa::storage {

namespace {

constexpr char kMagic[] = "MDQAKB1\n";
constexpr size_t kMagicLen = 8;
constexpr uint64_t kFormatVersion = 1;

enum SectionTag : uint8_t {
  kMetaTag = 1,
  kValuesTag = 2,
  kRelationTag = 3,
  kTableTag = 4,
  kEndTag = 0xFE,
};

void AppendSection(std::string* out, uint8_t tag, std::string_view payload) {
  out->push_back(static_cast<char>(tag));
  PutVarint64(out, payload.size());
  out->append(payload.data(), payload.size());
  uint32_t crc = Crc32(&tag, 1);
  crc = Crc32(payload.data(), payload.size(), crc);
  PutFixed32(out, MaskCrc32(crc));
}

Status Corrupt(const std::string& why) {
  return Status::Internal("checkpoint: corrupt: " + why);
}

std::string EncodeMeta(const KbMeta& m) {
  std::string p;
  PutVarint64(&p, kFormatVersion);
  PutVarint64(&p, m.generation);
  PutVarint64(&p, m.applied_updates);
  PutLengthPrefixed(&p, m.scenario);
  p.push_back(m.reached_fixpoint ? 1 : 0);
  PutVarint64(&p, m.rounds);
  PutVarint64(&p, m.tgd_firings);
  PutVarint64(&p, m.facts_added);
  PutVarint64(&p, m.nulls_created);
  PutVarint64(&p, m.egd_merges);
  PutVarint32(&p, m.null_watermark);
  return p;
}

Status DecodeMeta(std::string_view payload, KbMeta* m) {
  SliceReader r(payload);
  MDQA_ASSIGN_OR_RETURN(uint64_t version, r.GetVarint64());
  if (version != kFormatVersion) {
    return Corrupt("unsupported format version " + std::to_string(version));
  }
  MDQA_ASSIGN_OR_RETURN(m->generation, r.GetVarint64());
  MDQA_ASSIGN_OR_RETURN(m->applied_updates, r.GetVarint64());
  MDQA_ASSIGN_OR_RETURN(std::string_view scenario, r.GetLengthPrefixed());
  m->scenario = std::string(scenario);
  MDQA_ASSIGN_OR_RETURN(std::string_view fixpoint, r.GetBytes(1));
  m->reached_fixpoint = fixpoint[0] != 0;
  MDQA_ASSIGN_OR_RETURN(m->rounds, r.GetVarint64());
  MDQA_ASSIGN_OR_RETURN(m->tgd_firings, r.GetVarint64());
  MDQA_ASSIGN_OR_RETURN(m->facts_added, r.GetVarint64());
  MDQA_ASSIGN_OR_RETURN(m->nulls_created, r.GetVarint64());
  MDQA_ASSIGN_OR_RETURN(m->egd_merges, r.GetVarint64());
  MDQA_ASSIGN_OR_RETURN(m->null_watermark, r.GetVarint32());
  if (!r.empty()) return Corrupt("trailing bytes in meta section");
  return Status::Ok();
}

std::string EncodeValues(const std::vector<Value>& values) {
  std::string p;
  PutVarint64(&p, values.size());
  for (const auto& v : values) PutValue(&p, v);
  return p;
}

Status DecodeValues(std::string_view payload,
                    std::vector<Value>* values) {
  SliceReader r(payload);
  MDQA_ASSIGN_OR_RETURN(uint64_t count, r.GetVarint64());
  values->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    MDQA_ASSIGN_OR_RETURN(Value v, GetValue(&r));
    values->push_back(std::move(v));
  }
  if (!r.empty()) return Corrupt("trailing bytes in values section");
  return Status::Ok();
}

std::string EncodeRelation(const KbRelationImage& rel) {
  std::string p;
  PutLengthPrefixed(&p, rel.name);
  PutVarint64(&p, rel.attr_names.size());
  for (size_t i = 0; i < rel.attr_names.size(); ++i) {
    PutLengthPrefixed(&p, rel.attr_names[i]);
    p.push_back(static_cast<char>(rel.attr_types[i]));
  }
  PutVarint64(&p, rel.rows.size());
  for (const auto& row : rel.rows) {
    for (uint32_t idx : row) PutVarint32(&p, idx);
  }
  return p;
}

Status DecodeRelation(std::string_view payload, size_t num_values,
                      KbRelationImage* rel) {
  SliceReader r(payload);
  MDQA_ASSIGN_OR_RETURN(std::string_view name, r.GetLengthPrefixed());
  rel->name = std::string(name);
  MDQA_ASSIGN_OR_RETURN(uint64_t arity, r.GetVarint64());
  for (uint64_t i = 0; i < arity; ++i) {
    MDQA_ASSIGN_OR_RETURN(std::string_view attr, r.GetLengthPrefixed());
    MDQA_ASSIGN_OR_RETURN(std::string_view type, r.GetBytes(1));
    rel->attr_names.push_back(std::string(attr));
    rel->attr_types.push_back(static_cast<uint8_t>(type[0]));
  }
  MDQA_ASSIGN_OR_RETURN(uint64_t rows, r.GetVarint64());
  rel->rows.reserve(rows);
  for (uint64_t i = 0; i < rows; ++i) {
    std::vector<uint32_t> row(arity);
    for (uint64_t j = 0; j < arity; ++j) {
      MDQA_ASSIGN_OR_RETURN(row[j], r.GetVarint32());
      if (row[j] >= num_values) {
        return Corrupt("relation " + rel->name +
                       ": value index out of range");
      }
    }
    rel->rows.push_back(std::move(row));
  }
  if (!r.empty()) return Corrupt("trailing bytes in relation section");
  return Status::Ok();
}

std::string EncodeTable(const KbTableImage& t) {
  std::string p;
  PutLengthPrefixed(&p, t.predicate);
  PutVarint32(&p, t.arity);
  PutVarint32(&p, t.frozen_rows);
  PutVarint64(&p, t.segment_rows.size());
  for (uint32_t n : t.segment_rows) PutVarint32(&p, n);
  PutVarint64(&p, t.levels.size());
  for (uint64_t term : t.terms) PutVarint64(&p, term);
  for (uint32_t level : t.levels) PutVarint32(&p, level);
  return p;
}

Status DecodeTable(std::string_view payload, size_t num_values,
                   KbTableImage* t) {
  SliceReader r(payload);
  MDQA_ASSIGN_OR_RETURN(std::string_view pred, r.GetLengthPrefixed());
  t->predicate = std::string(pred);
  MDQA_ASSIGN_OR_RETURN(t->arity, r.GetVarint32());
  MDQA_ASSIGN_OR_RETURN(t->frozen_rows, r.GetVarint32());
  MDQA_ASSIGN_OR_RETURN(uint64_t segments, r.GetVarint64());
  uint64_t total = 0;
  for (uint64_t i = 0; i < segments; ++i) {
    uint32_t n;
    MDQA_ASSIGN_OR_RETURN(n, r.GetVarint32());
    t->segment_rows.push_back(n);
    total += n;
  }
  MDQA_ASSIGN_OR_RETURN(uint64_t rows, r.GetVarint64());
  if (total != rows) {
    return Corrupt("table " + t->predicate +
                   ": segment row counts disagree with row count");
  }
  if (t->frozen_rows > rows) {
    return Corrupt("table " + t->predicate + ": freeze watermark beyond rows");
  }
  uint64_t num_terms = rows * t->arity;
  t->terms.reserve(num_terms);
  for (uint64_t i = 0; i < num_terms; ++i) {
    MDQA_ASSIGN_OR_RETURN(uint64_t term, r.GetVarint64());
    if (!ImageTermIsNull(term) && ImageTermId(term) >= num_values) {
      return Corrupt("table " + t->predicate + ": value index out of range");
    }
    t->terms.push_back(term);
  }
  t->levels.reserve(rows);
  for (uint64_t i = 0; i < rows; ++i) {
    uint32_t level;
    MDQA_ASSIGN_OR_RETURN(level, r.GetVarint32());
    t->levels.push_back(level);
  }
  if (!r.empty()) return Corrupt("trailing bytes in table section");
  return Status::Ok();
}

}  // namespace

std::string EncodeCheckpoint(const KbImage& image) {
  std::string out(kMagic, kMagicLen);
  AppendSection(&out, kMetaTag, EncodeMeta(image.meta));
  AppendSection(&out, kValuesTag, EncodeValues(image.values));
  for (const auto& rel : image.relations) {
    AppendSection(&out, kRelationTag, EncodeRelation(rel));
  }
  for (const auto& table : image.tables) {
    AppendSection(&out, kTableTag, EncodeTable(table));
  }
  AppendSection(&out, kEndTag, "");
  return out;
}

Result<KbImage> DecodeCheckpoint(std::string_view data) {
  if (data.size() < kMagicLen ||
      data.compare(0, kMagicLen, kMagic, kMagicLen) != 0) {
    return Corrupt("bad magic");
  }
  SliceReader r(data.substr(kMagicLen));
  KbImage image;
  bool saw_meta = false;
  bool saw_values = false;
  while (true) {
    if (r.empty()) return Corrupt("missing end section (truncated file)");
    MDQA_ASSIGN_OR_RETURN(std::string_view tag_bytes, r.GetBytes(1));
    uint8_t tag = static_cast<uint8_t>(tag_bytes[0]);
    MDQA_ASSIGN_OR_RETURN(std::string_view payload, r.GetLengthPrefixed());
    MDQA_ASSIGN_OR_RETURN(uint32_t stored_crc, r.GetFixed32());
    uint32_t crc = Crc32(&tag, 1);
    crc = Crc32(payload.data(), payload.size(), crc);
    if (MaskCrc32(crc) != stored_crc) {
      return Corrupt("section checksum mismatch (tag " + std::to_string(tag) +
                     ")");
    }
    switch (tag) {
      case kMetaTag:
        if (saw_meta) return Corrupt("duplicate meta section");
        MDQA_RETURN_IF_ERROR(DecodeMeta(payload, &image.meta));
        saw_meta = true;
        break;
      case kValuesTag:
        if (saw_values) return Corrupt("duplicate values section");
        MDQA_RETURN_IF_ERROR(DecodeValues(payload, &image.values));
        saw_values = true;
        break;
      case kRelationTag: {
        if (!saw_values) return Corrupt("relation section before values");
        KbRelationImage rel;
        MDQA_RETURN_IF_ERROR(
            DecodeRelation(payload, image.values.size(), &rel));
        image.relations.push_back(std::move(rel));
        break;
      }
      case kTableTag: {
        if (!saw_values) return Corrupt("table section before values");
        KbTableImage table;
        MDQA_RETURN_IF_ERROR(DecodeTable(payload, image.values.size(), &table));
        image.tables.push_back(std::move(table));
        break;
      }
      case kEndTag:
        if (!saw_meta) return Corrupt("missing meta section");
        if (!saw_values) return Corrupt("missing values section");
        if (!r.empty()) return Corrupt("trailing bytes after end section");
        return image;
      default:
        return Corrupt("unknown section tag " + std::to_string(tag));
    }
  }
}

}  // namespace mdqa::storage
