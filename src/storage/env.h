#ifndef MDQA_STORAGE_ENV_H_
#define MDQA_STORAGE_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "base/result.h"

namespace mdqa::storage {

/// A sequential output file. `Append` buffers or writes; nothing is
/// promised durable until `Sync` returns OK (the fsync barrier). `Close`
/// flushes but does NOT sync — the commit points in checkpoint/WAL code
/// call Sync explicitly so the durability contract is visible at every
/// call site.
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(std::string_view data) = 0;
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

/// Filesystem abstraction for the durability layer — the narrow set of
/// operations checkpointing, WAL, and recovery actually need (LevelDB's
/// Env, cut down). Two implementations: `PosixEnv` (real filesystem) and
/// `FaultyEnv` (in-memory model of a crash-prone disk, fault_env.h).
/// Everything in src/storage/ goes through this interface so the crash
/// matrix can exercise every injection point deterministically.
class Env {
 public:
  virtual ~Env() = default;

  /// Creates (or truncates) `path` for writing.
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) = 0;

  /// Opens `path` for appending, creating it if absent (the WAL reopen
  /// path after a clean restart).
  virtual Result<std::unique_ptr<WritableFile>> NewAppendableFile(
      const std::string& path) = 0;

  /// Reads the whole file. kNotFound when absent; kResourceExhausted
  /// when larger than `max_bytes`.
  virtual Result<std::string> ReadFile(const std::string& path,
                                       uint64_t max_bytes) = 0;

  virtual bool FileExists(const std::string& path) = 0;

  /// Base names (not full paths) of entries in `dir`.
  virtual Result<std::vector<std::string>> ListDir(const std::string& dir) = 0;

  /// Creates `dir`; OK if it already exists.
  virtual Status CreateDir(const std::string& dir) = 0;

  /// Atomically replaces `to` with `from` (POSIX rename semantics: the
  /// namespace switch is atomic, but durable only after SyncDir on the
  /// containing directory).
  virtual Status RenameFile(const std::string& from, const std::string& to) = 0;

  virtual Status RemoveFile(const std::string& path) = 0;

  /// fsyncs the directory itself so completed renames/creates survive a
  /// crash. The checkpoint commit protocol is: write tmp, fsync tmp,
  /// rename, SyncDir.
  virtual Status SyncDir(const std::string& dir) = 0;

  /// The real filesystem (process-wide singleton; thread-safe).
  static Env* Posix();
};

}  // namespace mdqa::storage

#endif  // MDQA_STORAGE_ENV_H_
