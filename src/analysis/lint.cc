#include "analysis/lint.h"

#include <algorithm>
#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "datalog/analysis.h"
#include "datalog/containment.h"
#include "datalog/parser.h"

namespace mdqa::analysis {

namespace {

using datalog::Atom;
using datalog::Program;
using datalog::Rule;
using datalog::RuleKind;
using datalog::Vocabulary;

void Emit(const LintOptions& options, DiagnosticBag* bag, Diagnostic d) {
  if (d.severity < options.min_severity) return;
  if (d.file.empty()) d.file = options.file;
  bag->Add(std::move(d));
}

Diagnostic Make(const char* code, Severity severity, std::string message,
                SourceSpan span = {}) {
  Diagnostic d;
  d.code = code;
  d.severity = severity;
  d.message = std::move(message);
  d.span = span;
  return d;
}

// Bounded edit distance for the did-you-mean fix-it (anything above
// `limit` is reported as limit+1, which callers treat as "no match").
size_t EditDistance(const std::string& a, const std::string& b, size_t limit) {
  if (a.size() > b.size() + limit || b.size() > a.size() + limit) {
    return limit + 1;
  }
  std::vector<size_t> prev(b.size() + 1), cur(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

std::string JoinNames(const Vocabulary& vocab,
                      const std::vector<uint32_t>& vars) {
  std::string out;
  for (size_t i = 0; i < vars.size(); ++i) {
    if (i > 0) out += ", ";
    out += vocab.VariableName(vars[i]);
  }
  return out;
}

std::string PositionString(const Vocabulary& vocab, datalog::Position p) {
  return vocab.PredicateName(p.predicate) + "[" + std::to_string(p.index) +
         "]";
}

// --- program passes -------------------------------------------------------

// MDQA-W005 (undefined predicate), MDQA-I010 (unused predicate).
void LintPredicates(const Program& program, const LintOptions& options,
                    DiagnosticBag* bag) {
  const Vocabulary& vocab = *program.vocab();
  std::unordered_set<uint32_t> defined;   // has a fact or a head occurrence
  std::unordered_map<uint32_t, SourceSpan> first_def;
  std::unordered_map<uint32_t, SourceSpan> first_use;  // body occurrence
  std::unordered_set<uint32_t> used;

  auto note_def = [&](const Atom& a) {
    defined.insert(a.predicate);
    first_def.emplace(a.predicate, a.span);
  };
  auto note_use = [&](const Atom& a) {
    used.insert(a.predicate);
    first_use.emplace(a.predicate, a.span);
  };

  for (const Atom& f : program.facts()) note_def(f);
  for (const Rule& r : program.rules()) {
    for (const Atom& h : r.head) note_def(h);
    for (const Atom& b : r.body) note_use(b);
    for (const Atom& n : r.negated) note_use(n);
  }

  for (uint32_t pred : used) {
    if (defined.count(pred) > 0) continue;
    const std::string& name = vocab.PredicateName(pred);
    Diagnostic d = Make(
        "MDQA-W005", Severity::kWarning,
        "predicate '" + name +
            "' is used in a rule body but never defined (no fact, no rule "
            "head): atoms over it can never hold",
        first_use[pred]);
    // Did-you-mean: the closest defined predicate within edit distance 2.
    size_t best = 3;
    std::string best_name;
    for (uint32_t other : defined) {
      const std::string& cand = vocab.PredicateName(other);
      size_t dist = EditDistance(name, cand, 2);
      if (dist < best) {
        best = dist;
        best_name = cand;
      }
    }
    if (!best_name.empty()) {
      d.fix_it = "did you mean '" + best_name + "'?";
    }
    Emit(options, bag, std::move(d));
  }

  for (uint32_t pred : defined) {
    if (used.count(pred) > 0) continue;
    Emit(options, bag,
         Make("MDQA-I010", Severity::kInfo,
              "predicate '" + vocab.PredicateName(pred) +
                  "' is never used in a rule body (query output, or a dead "
                  "definition)",
              first_def[pred]));
  }
}

// MDQA-W006: rules whose body can never be satisfied because some
// positive body predicate holds no facts and is derived by no reachable
// rule. Negated atoms don't block firing (closed world: absence holds).
void LintReachability(const Program& program, const LintOptions& options,
                      DiagnosticBag* bag) {
  const Vocabulary& vocab = *program.vocab();
  std::unordered_set<uint32_t> derivable;
  std::unordered_set<uint32_t> defined;
  for (const Atom& f : program.facts()) {
    derivable.insert(f.predicate);
    defined.insert(f.predicate);
  }
  for (const Rule& r : program.rules()) {
    for (const Atom& h : r.head) defined.insert(h.predicate);
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Rule& r : program.rules()) {
      if (!r.IsTgd()) continue;
      bool fires = std::all_of(
          r.body.begin(), r.body.end(),
          [&](const Atom& a) { return derivable.count(a.predicate) > 0; });
      if (!fires) continue;
      for (const Atom& h : r.head) {
        if (derivable.insert(h.predicate).second) changed = true;
      }
    }
  }
  for (const Rule& r : program.rules()) {
    for (const Atom& a : r.body) {
      if (derivable.count(a.predicate) > 0) continue;
      // Undefined predicates already got MDQA-W005; don't stack W006 on
      // the same atom.
      if (defined.count(a.predicate) == 0) continue;
      const char* what = r.IsTgd() ? "rule" : "constraint";
      Emit(options, bag,
           Make("MDQA-W006", Severity::kWarning,
                std::string("this ") + what +
                    " can never fire: no facts exist for '" +
                    vocab.PredicateName(a.predicate) +
                    "' and no satisfiable rule derives it",
                a.span.IsSet() ? a.span : r.span));
      break;  // one finding per rule is enough
    }
  }
}

// MDQA-E004: negation through recursion (no stratification exists).
void LintStratification(const Program& program, const LintOptions& options,
                        DiagnosticBag* bag) {
  bool has_negation = std::any_of(
      program.rules().begin(), program.rules().end(),
      [](const Rule& r) { return r.HasNegation(); });
  if (!has_negation) return;
  Result<std::unordered_map<uint32_t, int>> strata =
      datalog::StratifyProgram(program);
  if (!strata.ok()) {
    Emit(options, bag,
         Make("MDQA-E004", Severity::kError, strata.status().message()));
  }
}

// MDQA-I008 (implicit existentials), MDQA-N011 (singleton variables),
// MDQA-N012 (syntactic form notes).
void LintRuleShapes(const Program& program, const LintOptions& options,
                    DiagnosticBag* bag) {
  const Vocabulary& vocab = *program.vocab();
  for (const Rule& r : program.rules()) {
    std::vector<uint32_t> existential =
        r.IsTgd() ? r.ExistentialVariables() : std::vector<uint32_t>{};
    if (!existential.empty()) {
      Emit(options, bag,
           Make("MDQA-I008", Severity::kInfo,
                "head variable" + std::string(existential.size() > 1 ? "s " : " ") +
                    JoinNames(vocab, existential) +
                    " never occur" + std::string(existential.size() > 1 ? "" : "s") +
                    " in the body: implicitly existentially quantified "
                    "(Datalog± forms (4)/(10)); if unintended, bind " +
                    std::string(existential.size() > 1 ? "them" : "it") +
                    " in the body",
                r.span));
    }

    // Occurrence counts across every part of the rule.
    std::unordered_map<uint32_t, size_t> occurrences;
    std::unordered_set<uint32_t> in_body;
    auto count_atoms = [&](const std::vector<Atom>& atoms, bool body_side) {
      for (const Atom& a : atoms) {
        for (datalog::Term t : a.terms) {
          if (!t.IsVariable()) continue;
          ++occurrences[t.id()];
          if (body_side) in_body.insert(t.id());
        }
      }
    };
    count_atoms(r.body, true);
    count_atoms(r.negated, true);
    count_atoms(r.head, false);
    for (const datalog::Comparison& c : r.comparisons) {
      for (datalog::Term t : {c.lhs, c.rhs}) {
        if (t.IsVariable()) ++occurrences[t.id()];
      }
    }
    for (datalog::Term t : {r.egd_lhs, r.egd_rhs}) {
      if (t.IsVariable()) ++occurrences[t.id()];
    }
    std::vector<uint32_t> singletons;
    for (const auto& [var, count] : occurrences) {
      if (count != 1) continue;
      if (in_body.count(var) == 0) continue;  // head-only: covered by I008
      const std::string& name = vocab.VariableName(var);
      if (!name.empty() && name[0] == '$') continue;  // anonymous '_'
      singletons.push_back(var);
    }
    std::sort(singletons.begin(), singletons.end());
    for (uint32_t var : singletons) {
      Diagnostic d = Make("MDQA-N011", Severity::kNote,
                          "variable " + vocab.VariableName(var) +
                              " occurs only once in this rule",
                          r.span);
      d.fix_it = "replace " + vocab.VariableName(var) +
                 " with '_' to make the don't-care explicit";
      Emit(options, bag, std::move(d));
    }

    if (options.form_notes) {
      std::string form;
      switch (r.kind) {
        case RuleKind::kEgd:
          form = "equality-generating dependency — paper form (2)";
          break;
        case RuleKind::kConstraint:
          form = r.HasNegation()
                     ? "negative constraint with negation — the shape of the "
                       "paper's referential constraints, form (1)"
                     : "negative constraint — paper form (3)";
          break;
        case RuleKind::kTgd:
          if (!existential.empty()) {
            form = "TGD with existential head variables — candidate for "
                   "paper forms (4)/(10), pending the ontology's "
                   "categorical-attribute check";
          } else {
            form = "plain Datalog rule — the shape of the paper's "
                   "navigation rules (5)-(8)";
          }
          break;
      }
      Emit(options, bag,
           Make("MDQA-N012", Severity::kNote, form, r.span));
    }
  }
}

// The caller-shared ProgramAnalysis, or a locally built one when the
// caller didn't pass any (plain `mdqa_lint` runs).
const datalog::ProgramAnalysis& SharedAnalysis(
    const Program& program, const LintOptions& options,
    std::optional<datalog::ProgramAnalysis>* local) {
  if (options.analysis != nullptr) return *options.analysis;
  local->emplace(program);
  return **local;
}

// MDQA-W007: weak-stickiness witnesses, one per rule per repeated marked
// variable whose occurrences all have infinite rank.
void LintWeakStickiness(const Program& program, const LintOptions& options,
                        DiagnosticBag* bag) {
  const Vocabulary& vocab = *program.vocab();
  std::optional<datalog::ProgramAnalysis> local;
  const datalog::ProgramAnalysis& analysis =
      SharedAnalysis(program, options, &local);
  for (const datalog::StickinessViolation& v :
       analysis.StickinessViolations()) {
    if (!v.breaks_weak_stickiness) continue;
    const Rule& rule = analysis.tgds()[v.rule_index];
    std::string positions;
    for (datalog::Position p : v.positions) {
      if (!positions.empty()) positions += ", ";
      positions += PositionString(vocab, p);
    }
    Emit(options, bag,
         Make("MDQA-W007", Severity::kWarning,
              "rule is not weakly sticky: marked variable " +
                  vocab.VariableName(v.variable) +
                  " repeats only at infinite-rank positions (" + positions +
                  "), so the paper's tractability guarantee (Theorem 1) "
                  "does not apply",
              rule.span));
  }
}

// MDQA-W041: TGDs the whole-program dead-rule analysis proves irrelevant
// — no derivation through their head predicates can influence a goal
// predicate (the caller's `goal_predicates`, e.g. the assessor's quality
// predicates), an EGD, a negative constraint, or an output predicate (a
// head predicate no rule body consumes). Such rules only grow the chase.
void LintDeadRules(const Program& program, const LintOptions& options,
                   DiagnosticBag* bag) {
  const Vocabulary& vocab = *program.vocab();
  std::unordered_set<uint32_t> goals;
  for (const std::string& name : options.goal_predicates) {
    uint32_t pred = vocab.FindPredicate(name);
    if (pred != StringPool::kNotFound) goals.insert(pred);
  }
  const datalog::DeadRuleAnalysis dead = datalog::FindDeadRules(program, goals);
  for (size_t index : dead.dead_rules) {
    const Rule& r = program.rules()[index];
    std::string heads;
    std::unordered_set<uint32_t> seen;
    for (const Atom& h : r.head) {
      if (!seen.insert(h.predicate).second) continue;
      if (!heads.empty()) heads += ", ";
      heads += "'" + vocab.PredicateName(h.predicate) + "'";
    }
    Diagnostic d = Make(
        "MDQA-W041", Severity::kWarning,
        "dead rule: no derivation through " + heads +
            " can reach a goal or output predicate, an EGD, or a "
            "constraint — the rule only grows the chase",
        r.span);
    d.fix_it =
        "remove the rule, or consume its head predicate in a query, "
        "rule body, or constraint";
    Emit(options, bag, std::move(d));
  }
}

// MDQA-W042: a plain single-head TGD whose derivations another rule with
// the same head predicate already produces (Chandra-Merlin containment
// of the rule bodies, viewed as CQs with the head arguments as the
// answer). Of an equivalent pair only the later rule is flagged.
void LintSubsumption(const Program& program, const LintOptions& options,
                     DiagnosticBag* bag) {
  const Vocabulary& vocab = *program.vocab();
  struct Entry {
    size_t rule_index;
    datalog::ConjunctiveQuery cq;
  };
  std::unordered_map<uint32_t, std::vector<Entry>> by_head;
  const std::vector<Rule>& rules = program.rules();
  for (size_t i = 0; i < rules.size(); ++i) {
    const Rule& r = rules[i];
    if (!r.IsTgd() || r.head.size() != 1) continue;
    if (r.HasNegation()) continue;
    if (!r.ExistentialVariables().empty()) continue;
    datalog::ConjunctiveQuery cq;
    cq.answer = r.head[0].terms;
    cq.body = r.body;
    cq.comparisons = r.comparisons;
    by_head[r.head[0].predicate].push_back(Entry{i, std::move(cq)});
  }
  for (size_t j = 0; j < rules.size(); ++j) {
    const Rule& r = rules[j];
    if (!r.IsTgd() || r.head.size() != 1) continue;
    auto group = by_head.find(r.head[0].predicate);
    if (group == by_head.end() || group->second.size() < 2) continue;
    const Entry* self = nullptr;
    for (const Entry& e : group->second) {
      if (e.rule_index == j) self = &e;
    }
    if (self == nullptr) continue;
    for (const Entry& other : group->second) {
      if (other.rule_index == j) continue;
      if (!datalog::ContainedIn(self->cq, other.cq, vocab)) continue;
      // Equivalent pair: keep the earlier rule, flag the later one (the
      // strictly-contained rule is flagged regardless of order).
      const bool equivalent = datalog::ContainedIn(other.cq, self->cq, vocab);
      if (equivalent && j < other.rule_index) continue;
      Diagnostic d = Make(
          "MDQA-W042", Severity::kWarning,
          "redundant rule: every fact it derives for '" +
              vocab.PredicateName(r.head[0].predicate) +
              "' is already derived by rule #" +
              std::to_string(other.rule_index + 1) +
              (equivalent ? " (the two rules are equivalent)"
                          : " (this rule's body is more specific)"),
          r.span);
      d.fix_it = "remove this rule; subsumed by rule #" +
                 std::to_string(other.rule_index + 1);
      Emit(options, bag, std::move(d));
      break;  // one witness per rule is enough
    }
  }
}

// MDQA-N043: position-granular null flow. Notes which head positions of
// an existential rule may carry labeled nulls downstream (non-affected
// positions provably never do), and which EGDs are null-free — the facts
// the incremental chase's narrowed fallback matrix rests on.
void LintNullFlow(const Program& program, const LintOptions& options,
                  DiagnosticBag* bag) {
  if (!options.form_notes) return;
  const Vocabulary& vocab = *program.vocab();
  std::optional<datalog::ProgramAnalysis> local;
  const datalog::ProgramAnalysis& analysis =
      SharedAnalysis(program, options, &local);
  for (const Rule& r : program.rules()) {
    if (r.IsEgd()) {
      if (analysis.EgdIsNullFree(r)) {
        Emit(options, bag,
             Make("MDQA-N043", Severity::kNote,
                  "null-free EGD: the equated variables only bind at "
                  "positions that never carry labeled nulls, so the EGD "
                  "can only no-op or report a constant clash — updates "
                  "never force a full re-chase because of it",
                  r.span));
      }
      continue;
    }
    if (!r.IsTgd() || r.ExistentialVariables().empty()) continue;
    std::string positions;
    std::unordered_set<datalog::Position, datalog::PositionHash> seen;
    for (const Atom& h : r.head) {
      for (size_t i = 0; i < h.terms.size(); ++i) {
        datalog::Position p{h.predicate, static_cast<uint32_t>(i)};
        if (!analysis.IsAffected(p) || !seen.insert(p).second) continue;
        if (!positions.empty()) positions += ", ";
        positions += PositionString(vocab, p);
      }
    }
    if (positions.empty()) continue;
    Emit(options, bag,
         Make("MDQA-N043", Severity::kNote,
              "null flow: position" +
                  std::string(seen.size() > 1 ? "s " : " ") + positions +
                  " may carry labeled nulls invented by this rule's "
                  "existential variables; every other position is "
                  "provably null-free",
              r.span));
  }
}

// --- ontology passes ------------------------------------------------------

// MDQA-W020: EGDs equating variables at non-categorical positions (the
// paper's separability precondition, §III).
void LintSeparability(const core::MdOntology& ontology,
                      const LintOptions& options, DiagnosticBag* bag) {
  const Vocabulary& vocab = *ontology.vocab();
  for (const Rule& c : ontology.constraints()) {
    if (!c.IsEgd()) continue;
    std::vector<std::string> bad_positions;
    for (datalog::Term side : {c.egd_lhs, c.egd_rhs}) {
      if (!side.IsVariable()) continue;
      for (const Atom& a : c.body) {
        for (size_t i = 0; i < a.terms.size(); ++i) {
          if (a.terms[i].IsVariable() && a.terms[i].id() == side.id() &&
              !ontology.IsCategoricalPosition(a.predicate, i)) {
            bad_positions.push_back(vocab.VariableName(side.id()) + " at " +
                                    vocab.PredicateName(a.predicate) + "[" +
                                    std::to_string(i) + "]");
          }
        }
      }
    }
    if (bad_positions.empty()) continue;
    std::string joined;
    for (size_t i = 0; i < bad_positions.size(); ++i) {
      if (i > 0) joined += ", ";
      joined += bad_positions[i];
    }
    Diagnostic d = Make(
        "MDQA-W020", Severity::kWarning,
        "EGD equates variables occurring at non-categorical positions (" +
            joined +
            "): the paper's separability condition fails, so certain "
            "answers must chase the EGDs instead of ignoring them",
        c.span);
    d.fix_it =
        "restrict the equality to categorical attributes, or run "
        "assessment with the chase engine";
    Emit(options, bag, std::move(d));
  }
}

// MDQA-N040: ontology features that can force the incremental chase
// (Chase::Extend / PreparedContext::ApplyUpdate) to fall back to a full
// re-chase — surfaced here so users learn *why* their increments degrade
// before hitting the recorded fallback at runtime. The null-flow
// analysis narrows the trigger to updates that actually reach the
// feature (see the fallback matrix in docs/incremental.md), so the note
// names a possibility, not a certainty.
void LintIncrementality(const core::MdOntology& ontology,
                        const LintOptions& options, DiagnosticBag* bag) {
  if (!options.form_notes) return;
  Result<core::OntologyProperties> props = ontology.Analyze();
  if (!props.ok()) return;

  bool has_egds = false;
  bool egd_non_categorical = false;
  for (const Rule& c : ontology.constraints()) {
    if (!c.IsEgd()) continue;
    has_egds = true;
    for (datalog::Term side : {c.egd_lhs, c.egd_rhs}) {
      if (!side.IsVariable()) continue;
      for (const Atom& a : c.body) {
        for (size_t i = 0; i < a.terms.size(); ++i) {
          if (a.terms[i].IsVariable() && a.terms[i].id() == side.id() &&
              !ontology.IsCategoricalPosition(a.predicate, i)) {
            egd_non_categorical = true;
          }
        }
      }
    }
  }

  std::vector<std::string> reasons;
  if (props->has_form10) {
    reasons.push_back("form-(10) rules");
  }
  if (egd_non_categorical) {
    reasons.push_back("EGDs equating non-categorical attributes");
  } else if (has_egds && props->has_form10) {
    reasons.push_back("EGDs made non-separable by the form-(10) rules");
  }
  if (reasons.empty()) return;
  std::string joined = reasons[0];
  for (size_t i = 1; i < reasons.size(); ++i) joined += " and " + reasons[i];
  Diagnostic d = Make(
      "MDQA-N040", Severity::kNote,
      "ontology has " + joined +
          ": incremental re-assessment falls back to a full re-chase "
          "whenever an update can reach them (exact but not faster; see "
          "docs/incremental.md)");
  d.fix_it =
      "expect full-re-chase latency on updates that reach the listed "
      "features, or restructure the ontology to avoid them";
  Emit(options, bag, std::move(d));
}

// MDQA-I021 (form-10 presence voids separability), MDQA-N023 (per-rule
// classification), MDQA-W022 (raw rule over dimensional predicates that
// matches no paper form).
void LintDimensionalRules(const core::MdOntology& ontology,
                          const LintOptions& options, DiagnosticBag* bag) {
  for (const core::DimensionalRule& dr : ontology.dimensional_rules()) {
    if (dr.form == core::RuleForm::kForm10) {
      Emit(options, bag,
           Make("MDQA-I021", Severity::kInfo,
                "form-(10) rule present (existential categorical variable "
                "or multi-atom head): EGD separability does not apply to "
                "this ontology",
                dr.rule.span));
    }
    if (options.form_notes) {
      Emit(options, bag,
           Make("MDQA-N023", Severity::kNote,
                std::string("dimensional rule form ") +
                    (dr.form == core::RuleForm::kForm4 ? "(4)" : "(10)") +
                    ", navigation: " + core::NavigationToString(dr.navigation),
                dr.rule.span));
    }
  }

  for (const Rule& r : ontology.raw_statements().rules()) {
    if (!r.IsTgd()) continue;
    bool all_dimensional = true;
    for (const Atom& a : r.head) {
      if (!ontology.IsDimensionalPredicate(a.predicate)) {
        all_dimensional = false;
      }
    }
    for (const Atom& a : r.body) {
      if (!ontology.IsDimensionalPredicate(a.predicate)) {
        all_dimensional = false;
      }
    }
    if (!all_dimensional) continue;  // contextual rule, not Σ_M's business
    Result<core::DimensionalRule> classified =
        ontology.ClassifyDimensionalRule(r);
    if (classified.ok()) continue;
    Diagnostic d = Make(
        "MDQA-W022", Severity::kWarning,
        "raw statement ranges over dimensional predicates only but "
        "matches no paper rule form: " +
            classified.status().message(),
        r.span);
    d.fix_it =
        "add it via AddDimensionalRule to get form validation, or involve "
        "a contextual (non-dimensional) predicate if it is context logic";
    Emit(options, bag, std::move(d));
  }
}

}  // namespace

const std::vector<CodeInfo>& AllCodes() {
  static const std::vector<CodeInfo> kCodes = {
      {"MDQA-E001", Severity::kError, "syntax error"},
      {"MDQA-E002", Severity::kError, "predicate arity mismatch"},
      {"MDQA-E003", Severity::kError, "invalid rule (fails validation)"},
      {"MDQA-E004", Severity::kError, "negation through recursion"},
      {"MDQA-W005", Severity::kWarning, "undefined predicate"},
      {"MDQA-W006", Severity::kWarning, "unreachable rule"},
      {"MDQA-W007", Severity::kWarning, "weak-stickiness violation"},
      {"MDQA-I008", Severity::kInfo, "implicit existential variable"},
      {"MDQA-I009", Severity::kInfo, "duplicate rule dropped"},
      {"MDQA-I010", Severity::kInfo, "unused predicate"},
      {"MDQA-N011", Severity::kNote, "singleton variable"},
      {"MDQA-N012", Severity::kNote, "syntactic form classification"},
      {"MDQA-W020", Severity::kWarning, "non-separable EGD"},
      {"MDQA-I021", Severity::kInfo, "form-(10) rule voids separability"},
      {"MDQA-W022", Severity::kWarning,
       "raw dimensional rule matches no paper form"},
      {"MDQA-N023", Severity::kNote, "dimensional rule classification"},
      {"MDQA-E030", Severity::kError, "category cycle in dimension schema"},
      {"MDQA-W031", Severity::kWarning, "non-strict roll-up"},
      {"MDQA-W032", Severity::kWarning, "partial roll-up (non-homogeneous)"},
      {"MDQA-W033", Severity::kWarning, "orphan member"},
      {"MDQA-I034", Severity::kInfo, "empty category"},
      {"MDQA-N040", Severity::kNote, "updates can force a full re-chase"},
      {"MDQA-W041", Severity::kWarning, "dead rule (feeds no goal or output)"},
      {"MDQA-W042", Severity::kWarning, "redundant rule (subsumed by another)"},
      {"MDQA-N043", Severity::kNote, "null-flow classification"},
  };
  return kCodes;
}

void LintText(std::string_view text, const LintOptions& options,
              DiagnosticBag* bag) {
  datalog::Program program;
  datalog::ParseReport report;
  Status parsed = datalog::Parser::ParseInto(text, &program, &report);
  for (const datalog::ParseIssue& issue : report.issues) {
    if (issue.kind == datalog::ParseIssue::Kind::kDuplicateRule) {
      Emit(options, bag,
           Make("MDQA-I009", Severity::kInfo, issue.message, issue.span));
    }
  }
  if (!parsed.ok()) {
    const char* code = "MDQA-E001";
    if (report.error_kind == datalog::ParseReport::ErrorKind::kArity) {
      code = "MDQA-E002";
    } else if (report.error_kind ==
               datalog::ParseReport::ErrorKind::kValidation) {
      code = "MDQA-E003";
    }
    Emit(options, bag,
         Make(code, Severity::kError, parsed.message(), report.error_span));
    return;  // a broken parse leaves nothing trustworthy to lint further
  }
  LintProgram(program, options, bag);
}

void LintProgram(const datalog::Program& program, const LintOptions& options,
                 DiagnosticBag* bag) {
  LintPredicates(program, options, bag);
  LintReachability(program, options, bag);
  LintStratification(program, options, bag);
  LintRuleShapes(program, options, bag);
  LintWeakStickiness(program, options, bag);
  LintDeadRules(program, options, bag);
  LintSubsumption(program, options, bag);
  LintNullFlow(program, options, bag);
}

void LintOntology(const core::MdOntology& ontology, const LintOptions& options,
                  DiagnosticBag* bag) {
  LintSeparability(ontology, options, bag);
  LintIncrementality(ontology, options, bag);
  LintDimensionalRules(ontology, options, bag);
  for (const md::Dimension& d : ontology.dimensions()) {
    LintDimension(d, options, bag);
  }
}

void LintDimension(const md::Dimension& dimension, const LintOptions& options,
                   DiagnosticBag* bag) {
  const md::DimensionSchema& schema = dimension.schema();
  const md::DimensionInstance& instance = dimension.instance();
  const std::string& dim = dimension.name();

  for (const std::string& category : schema.categories()) {
    std::vector<std::string> members = instance.Members(category);
    if (members.empty()) {
      Emit(options, bag,
           Make("MDQA-I034", Severity::kInfo,
                "category '" + category + "' of dimension '" + dim +
                    "' has no members"));
      continue;
    }
    std::vector<std::string> parent_cats = schema.Parents(category);
    bool expects_links =
        !parent_cats.empty() || !schema.Children(category).empty();
    std::vector<std::string> ancestor_cats;
    for (const std::string& other : schema.categories()) {
      if (other != category && schema.IsAncestor(category, other)) {
        ancestor_cats.push_back(other);
      }
    }
    for (const std::string& member : members) {
      bool no_links = instance.ParentsOf(member).empty() &&
                      instance.ChildrenOf(member).empty();
      if (expects_links && no_links) {
        Emit(options, bag,
             Make("MDQA-W033", Severity::kWarning,
                  "member '" + member + "' of category '" + category +
                      "' (dimension '" + dim +
                      "') is linked to no other member: it participates in "
                      "no roll-up"));
        continue;  // partial/non-strict findings would just repeat this
      }
      for (const std::string& pcat : parent_cats) {
        bool has_parent_there = false;
        for (const std::string& parent : instance.ParentsOf(member)) {
          Result<std::string> pc = instance.CategoryOf(parent);
          if (pc.ok() && *pc == pcat) {
            has_parent_there = true;
            break;
          }
        }
        if (!has_parent_there) {
          Diagnostic d = Make(
              "MDQA-W032", Severity::kWarning,
              "member '" + member + "' of category '" + category +
                  "' (dimension '" + dim + "') has no parent in category '" +
                  pcat +
                  "': the dimension is not homogeneous, so upward "
                  "navigation silently drops this member's data");
          d.fix_it = "link '" + member + "' to a member of '" + pcat + "'";
          Emit(options, bag, std::move(d));
        }
      }
      for (const std::string& acat : ancestor_cats) {
        Result<std::vector<std::string>> rollup =
            instance.RollUp(member, acat);
        if (!rollup.ok() || rollup->size() <= 1) continue;
        std::string targets;
        for (size_t i = 0; i < rollup->size(); ++i) {
          if (i > 0) targets += ", ";
          targets += (*rollup)[i];
        }
        Emit(options, bag,
             Make("MDQA-W031", Severity::kWarning,
                  "member '" + member + "' of category '" + category +
                      "' (dimension '" + dim + "') rolls up to " +
                      std::to_string(rollup->size()) + " members of '" +
                      acat + "' (" + targets +
                      "): the dimension is not strict, so aggregation "
                      "double-counts"));
      }
    }
  }
}

void LintDimensionEdges(
    const std::string& dimension_name,
    const std::vector<std::pair<std::string, std::string>>& edges,
    const LintOptions& options, DiagnosticBag* bag) {
  std::unordered_map<std::string, std::vector<std::string>> up;
  for (const auto& [child, parent] : edges) {
    up[child].push_back(parent);
  }
  // DFS with an explicit path to recover the cycle's edge sequence.
  std::unordered_set<std::string> done;
  std::vector<std::string> path;
  std::unordered_set<std::string> on_path;
  std::vector<std::string> cycle;

  std::function<bool(const std::string&)> visit =
      [&](const std::string& node) -> bool {
    if (on_path.count(node) > 0) {
      auto start = std::find(path.begin(), path.end(), node);
      cycle.assign(start, path.end());
      cycle.push_back(node);
      return true;
    }
    if (done.count(node) > 0) return false;
    path.push_back(node);
    on_path.insert(node);
    auto it = up.find(node);
    if (it != up.end()) {
      for (const std::string& parent : it->second) {
        if (visit(parent)) return true;
      }
    }
    path.pop_back();
    on_path.erase(node);
    done.insert(node);
    return false;
  };

  for (const auto& [child, parent] : edges) {
    (void)parent;
    if (visit(child)) break;
  }
  if (cycle.empty()) return;

  std::string rendered;
  for (size_t i = 0; i < cycle.size(); ++i) {
    if (i > 0) rendered += " -> ";
    rendered += cycle[i];
  }
  Diagnostic d = Make(
      "MDQA-E030", Severity::kError,
      "category cycle in dimension '" + dimension_name + "': " + rendered +
          " — a dimension schema must be a DAG (Hurtado-Mendelzon)");
  d.fix_it = "remove the edge '" + cycle[cycle.size() - 2] + " -> " +
             cycle.back() + "'";
  Emit(options, bag, std::move(d));
}

}  // namespace mdqa::analysis
