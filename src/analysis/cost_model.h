#ifndef MDQA_ANALYSIS_COST_MODEL_H_
#define MDQA_ANALYSIS_COST_MODEL_H_

#include <cstdint>
#include <string>
#include <unordered_map>

#include "datalog/analysis.h"
#include "datalog/instance.h"
#include "datalog/program.h"

namespace mdqa::analysis {

/// Static cost model over program shape + EDB statistics, predicting the
/// relative work of the three query-answering strategies (paper §IV):
///
///  - **chase**: materialize everything, then evaluate. Cost scales with
///    the predicted materialized instance size, estimated per predicate
///    by iterating System-R-style join-size estimates (product of input
///    cardinalities divided, per repeated variable, by the largest
///    distinct-count among its positions) to a bounded fixpoint.
///    Non-weakly-acyclic programs get a large termination penalty: the
///    chase may not terminate, so materialization should only win when
///    nothing else is sound.
///  - **rewriting**: unfold the query against the TGDs, evaluate the UCQ
///    on the raw EDB. Cost scales with the per-predicate unfolding
///    breadth (how many rewritten disjuncts a goal atom can expand into)
///    times the evaluation cost of each disjunct on the EDB.
///  - **deterministic-ws**: top-down proof-schema search; same breadth as
///    rewriting with an extra factor for the proof-schema bookkeeping.
///
/// Costs are unitless, deterministic, saturating `uint64_t` work units —
/// a pure function of (rules, EDB statistics), never of evaluation
/// order, timing, or memory layout, so incremental and from-scratch
/// sessions holding the same fact multiset predict identical costs (the
/// byte-identity contract of the differential harnesses).
///
/// VLog's `costestimator.h`/`reasoner.h` pioneered this
/// materialize-vs-on-demand decision from exactly these ingredients.
class CostModel {
 public:
  CostModel(const datalog::Program& program,
            const datalog::ProgramAnalysis& analysis,
            datalog::InstanceStatistics edb_stats);

  /// Statistics of the program's own extensional facts (order-independent
  /// aggregates: row counts and per-position distinct counts).
  static datalog::InstanceStatistics CollectEdbStats(
      const datalog::Program& program);

  /// Predicted size (facts) of the fully materialized chase instance.
  uint64_t PredictedChaseFacts() const { return predicted_chase_facts_; }

  /// Predicted work units per engine.
  uint64_t PredictedChaseCost() const { return chase_cost_; }
  uint64_t PredictedRewritingCost() const { return rewriting_cost_; }
  uint64_t PredictedWsCost() const { return ws_cost_; }

  /// Largest unfolding breadth of any predicate (the rewriter's disjunct
  /// blow-up factor), capped.
  uint64_t UnfoldingBreadth() const { return unfolding_breadth_; }

  /// Predicted materialized rows per predicate (EDB + derived).
  const std::unordered_map<uint32_t, uint64_t>& PredictedRows() const {
    return predicted_rows_;
  }

  /// Deterministic multi-line cost table for `mdqa_lint --analyze`: EDB
  /// statistics, per-predicate predicted sizes, and the three engine
  /// costs.
  std::string ToString(const datalog::Vocabulary& vocab) const;

 private:
  datalog::InstanceStatistics edb_stats_;
  std::unordered_map<uint32_t, uint64_t> predicted_rows_;
  uint64_t predicted_chase_facts_ = 0;
  uint64_t unfolding_breadth_ = 1;
  uint64_t avg_body_atoms_ = 1;
  uint64_t chase_cost_ = 0;
  uint64_t rewriting_cost_ = 0;
  uint64_t ws_cost_ = 0;
  bool weakly_acyclic_ = true;
};

}  // namespace mdqa::analysis

#endif  // MDQA_ANALYSIS_COST_MODEL_H_
