#include "analysis/diagnostic.h"

#include <algorithm>
#include <tuple>

#include "base/json.h"

namespace mdqa::analysis {

const char* SeverityToString(Severity s) {
  switch (s) {
    case Severity::kNote:
      return "note";
    case Severity::kInfo:
      return "info";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

std::string Diagnostic::ToText() const {
  std::string out = file.empty() ? "<input>" : file;
  if (span.IsSet()) {
    out += ":" + std::to_string(span.line) + ":" + std::to_string(span.column);
  }
  out += ": ";
  out += SeverityToString(severity);
  out += ": " + message + " [" + code + "]";
  if (!fix_it.empty()) {
    out += "\n    fix-it: " + fix_it;
  }
  for (const RelatedNote& n : notes) {
    out += "\n    note: " + n.message;
    if (n.span.IsSet()) out += " (" + n.span.ToString() + ")";
  }
  return out;
}

size_t DiagnosticBag::Count(Severity s) const {
  size_t n = 0;
  for (const Diagnostic& d : diagnostics_) {
    if (d.severity == s) ++n;
  }
  return n;
}

void DiagnosticBag::Sort() {
  std::stable_sort(diagnostics_.begin(), diagnostics_.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return std::tie(a.file, a.span, a.code) <
                            std::tie(b.file, b.span, b.code);
                   });
}

void DiagnosticBag::FilterBelow(Severity min) {
  diagnostics_.erase(
      std::remove_if(diagnostics_.begin(), diagnostics_.end(),
                     [min](const Diagnostic& d) { return d.severity < min; }),
      diagnostics_.end());
}

std::string DiagnosticBag::ToText() const {
  std::string out;
  for (const Diagnostic& d : diagnostics_) {
    out += d.ToText();
    out += '\n';
  }
  return out;
}

namespace {

// SARIF collapses our four severities onto its three levels.
const char* SarifLevel(Severity s) {
  switch (s) {
    case Severity::kError:
      return "error";
    case Severity::kWarning:
      return "warning";
    case Severity::kInfo:
    case Severity::kNote:
      return "note";
  }
  return "none";
}

}  // namespace

std::string DiagnosticBag::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("version").String("2.1.0");
  w.Key("runs").BeginArray();
  w.BeginObject();
  w.Key("tool").BeginObject();
  w.Key("driver").BeginObject();
  w.Key("name").String("mdqa_lint");
  w.EndObject();  // driver
  w.EndObject();  // tool
  w.Key("results").BeginArray();
  for (const Diagnostic& d : diagnostics_) {
    w.BeginObject();
    w.Key("ruleId").String(d.code);
    w.Key("level").String(SarifLevel(d.severity));
    w.Key("message").BeginObject();
    w.Key("text").String(d.message);
    w.EndObject();
    w.Key("locations").BeginArray();
    w.BeginObject();
    w.Key("physicalLocation").BeginObject();
    w.Key("artifactLocation").BeginObject();
    w.Key("uri").String(d.file.empty() ? "<input>" : d.file);
    w.EndObject();  // artifactLocation
    if (d.span.IsSet()) {
      w.Key("region").BeginObject();
      w.Key("startLine").Number(static_cast<int64_t>(d.span.line));
      w.Key("startColumn").Number(static_cast<int64_t>(d.span.column));
      w.EndObject();
    }
    w.EndObject();  // physicalLocation
    w.EndObject();  // location
    w.EndArray();   // locations
    if (!d.notes.empty()) {
      w.Key("relatedLocations").BeginArray();
      for (const RelatedNote& n : d.notes) {
        w.BeginObject();
        w.Key("message").BeginObject();
        w.Key("text").String(n.message);
        w.EndObject();
        if (n.span.IsSet()) {
          w.Key("physicalLocation").BeginObject();
          w.Key("region").BeginObject();
          w.Key("startLine").Number(static_cast<int64_t>(n.span.line));
          w.Key("startColumn").Number(static_cast<int64_t>(n.span.column));
          w.EndObject();
          w.EndObject();
        }
        w.EndObject();
      }
      w.EndArray();
    }
    // Lossless extras SARIF has no slot for.
    w.Key("properties").BeginObject();
    w.Key("severity").String(SeverityToString(d.severity));
    if (!d.fix_it.empty()) w.Key("fixIt").String(d.fix_it);
    w.EndObject();
    w.EndObject();  // result
  }
  w.EndArray();   // results
  w.EndObject();  // run
  w.EndArray();   // runs
  w.EndObject();
  return w.TakeString();
}

}  // namespace mdqa::analysis
