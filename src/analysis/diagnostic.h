#ifndef MDQA_ANALYSIS_DIAGNOSTIC_H_
#define MDQA_ANALYSIS_DIAGNOSTIC_H_

#include <cstddef>
#include <string>
#include <vector>

#include "base/source_span.h"

namespace mdqa::analysis {

/// Severity of a diagnostic, ordered note < info < warning < error.
/// Errors make a program unusable for quality assessment; warnings void a
/// paper guarantee (weak stickiness, separability, strict roll-ups);
/// infos record recovered or noteworthy conditions; notes are stylistic.
enum class Severity : uint8_t {
  kNote = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

const char* SeverityToString(Severity s);

/// A secondary location attached to a diagnostic ("first defined here",
/// "equated variable occurs here").
struct RelatedNote {
  std::string message;
  SourceSpan span;
};

/// One finding of the static analyzer: a stable code (`MDQA-<S><nnn>`
/// where S mirrors the severity letter), a primary source span, the
/// human-readable message, an optional fix-it suggestion, and related
/// notes. Codes are API: tests and downstream tooling match on them, so
/// they are never renumbered (see docs/static_analysis.md).
struct Diagnostic {
  std::string code;
  Severity severity = Severity::kWarning;
  std::string message;
  std::string file;     ///< artifact name ("<input>" when not from a file)
  SourceSpan span;      ///< primary location (may be unset for global findings)
  std::string fix_it;   ///< suggested replacement/remedy (empty = none)
  std::vector<RelatedNote> notes;

  /// Compiler-style one-liner: `file:3:7: warning: message [MDQA-W005]`
  /// (location omitted when the span is unset), followed by indented
  /// fix-it and related notes on their own lines.
  std::string ToText() const;
};

/// Accumulates diagnostics across lint passes and renders them as text or
/// SARIF-shaped JSON.
class DiagnosticBag {
 public:
  void Add(Diagnostic d) { diagnostics_.push_back(std::move(d)); }

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  bool empty() const { return diagnostics_.empty(); }
  size_t size() const { return diagnostics_.size(); }

  size_t Count(Severity s) const;
  size_t errors() const { return Count(Severity::kError); }
  size_t warnings() const { return Count(Severity::kWarning); }

  /// True when the findings should fail a run: any error, or any warning
  /// under `werror`.
  bool ShouldFail(bool werror) const {
    return errors() > 0 || (werror && warnings() > 0);
  }

  /// Stable presentation order: file, then span, then code. Stable sort,
  /// so equal keys keep emission order.
  void Sort();

  /// Drops diagnostics below `min` severity.
  void FilterBelow(Severity min);

  /// All findings rendered via Diagnostic::ToText, one per line block.
  std::string ToText() const;

  /// SARIF 2.1.0-shaped JSON: one run, one `results` entry per
  /// diagnostic. The exact mdqa severity rides in
  /// `properties.severity` (SARIF's own `level` has no "info"/"note"
  /// distinction we need). Parseable back with mdqa::JsonValue::Parse.
  std::string ToJson() const;

 private:
  std::vector<Diagnostic> diagnostics_;
};

}  // namespace mdqa::analysis

#endif  // MDQA_ANALYSIS_DIAGNOSTIC_H_
