#ifndef MDQA_ANALYSIS_LINT_H_
#define MDQA_ANALYSIS_LINT_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "analysis/diagnostic.h"
#include "core/md_ontology.h"
#include "datalog/analysis.h"
#include "datalog/program.h"
#include "md/dimension.h"

namespace mdqa::analysis {

/// Controls which findings a lint run produces.
struct LintOptions {
  /// Findings strictly below this severity are dropped at emission time.
  Severity min_severity = Severity::kNote;
  /// Emit the per-rule paper-form classification notes (MDQA-N012 /
  /// MDQA-N023 / MDQA-N043). Off for the Assessor gate, which only cares
  /// about actionable findings.
  bool form_notes = true;
  /// Artifact name recorded on every diagnostic.
  std::string file = "<input>";
  /// Extra goal predicates (by name) anchoring the dead-rule pass —
  /// the assessor passes its quality predicates. Rules only feeding
  /// predicates unreachable backwards from the anchors (goals + EGD and
  /// constraint bodies + unconsumed head predicates) are MDQA-W041.
  std::vector<std::string> goal_predicates;
  /// Pre-computed analysis of the linted program, so the weak-stickiness
  /// and null-flow passes don't re-derive it (the assessor's gate shares
  /// one analysis with the planner and the chase). When null, passes
  /// build their own. Not owned; must describe the same program.
  const datalog::ProgramAnalysis* analysis = nullptr;
};

/// Descriptor of one diagnostic code, for `mdqa_lint --list` and the
/// docs/tests that keep the catalogue consistent.
struct CodeInfo {
  const char* code;
  Severity severity;
  const char* summary;
};

/// Every diagnostic code the linter can emit, in code order.
const std::vector<CodeInfo>& AllCodes();

/// Lints Datalog± source text: parse errors become MDQA-E001/E002/E003
/// diagnostics (with the parser's error span), parser-recovered issues
/// become MDQA-I009, and a successful parse runs every program pass.
void LintText(std::string_view text, const LintOptions& options,
              DiagnosticBag* bag);

/// Program-level passes over an already-parsed program: undefined/unused
/// predicates, unreachable rules, unstratified negation, implicit
/// existentials, singleton variables, weak-stickiness witnesses, and
/// syntactic form notes.
void LintProgram(const datalog::Program& program, const LintOptions& options,
                 DiagnosticBag* bag);

/// Ontology-level passes: EGD separability (MDQA-W020), form-(10)
/// presence, raw statements over dimensional predicates matching no paper
/// form (MDQA-W022), per-rule classification notes, and every registered
/// dimension's instance checks.
void LintOntology(const core::MdOntology& ontology, const LintOptions& options,
                  DiagnosticBag* bag);

/// Dimension-instance passes: non-strict roll-ups (MDQA-W031), partial
/// roll-ups / non-homogeneity (MDQA-W032), orphan members (MDQA-W033),
/// and empty categories (MDQA-I034).
void LintDimension(const md::Dimension& dimension, const LintOptions& options,
                   DiagnosticBag* bag);

/// Pre-construction cycle check over a raw `(child, parent)` category
/// edge list (MDQA-E030). DimensionSchema::AddEdge rejects the edge that
/// would close a cycle, one at a time; this reports the whole cycle with
/// a fix-it before any schema exists.
void LintDimensionEdges(
    const std::string& dimension_name,
    const std::vector<std::pair<std::string, std::string>>& edges,
    const LintOptions& options, DiagnosticBag* bag);

}  // namespace mdqa::analysis

#endif  // MDQA_ANALYSIS_LINT_H_
