#include "analysis/cost_model.h"

#include <algorithm>
#include <functional>
#include <unordered_set>
#include <vector>

namespace mdqa::analysis {

namespace {

using datalog::Atom;
using datalog::Program;
using datalog::Rule;
using datalog::Term;

// Saturation ceiling for every work-unit quantity: far above any real
// workload, low enough that downstream multiplications cannot overflow.
constexpr uint64_t kCap = 1'000'000'000'000'000ull;  // 1e15
// Predicted size assigned to non-weakly-acyclic programs (the chase may
// not terminate; materialization should only win when nothing else is
// sound).
constexpr uint64_t kNonTerminatingFacts = 1'000'000'000'000ull;  // 1e12
// Unfolding-breadth ceiling; recursive rule sets (whose UCQ rewriting
// may not even be finite) saturate here.
constexpr uint64_t kBreadthCap = 20'000;
// Join-size estimates iterate to a bounded fixpoint.
constexpr int kFixpointIterations = 16;
// Relative weight of applying one chase trigger (match + dedup + index
// maintenance) vs scanning one EDB row during UCQ evaluation.
constexpr uint64_t kChaseFactWeight = 4;
// The WS engine re-derives per query via proof schemas instead of
// evaluating a flat UCQ; bookkeeping roughly doubles the per-disjunct
// work.
constexpr uint64_t kWsWeight = 2;

uint64_t SatAdd(uint64_t a, uint64_t b) {
  return a >= kCap - std::min(b, kCap) ? kCap : a + b;
}

uint64_t SatMul(uint64_t a, uint64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a >= kCap / b) return kCap;
  return a * b;
}

}  // namespace

datalog::InstanceStatistics CostModel::CollectEdbStats(
    const Program& program) {
  // Computed straight off the fact list. Building a throwaway Instance
  // (dictionary columns, dedup tables, postings) just to read row and
  // distinct counts dominated engine-selection time on large EDBs. The
  // numbers must equal Instance::FromProgram(program).CollectStatistics()
  // exactly — duplicate facts count once, per-position distincts are
  // over the deduplicated rows — because incremental and from-scratch
  // sessions compare predicted costs byte-for-byte.
  datalog::InstanceStatistics stats;
  std::unordered_map<uint32_t, std::vector<const Atom*>> by_pred;
  for (const Atom& f : program.facts()) by_pred[f.predicate].push_back(&f);
  stats.tables.reserve(by_pred.size());
  std::vector<std::vector<uint64_t>> rows;
  std::vector<uint64_t> col;
  for (const auto& [pred, facts] : by_pred) {
    const size_t arity = facts.front()->arity();
    // Term::Key() is injective, so key-vector equality is row equality:
    // sort + unique is an exact dedup, no hashing involved.
    rows.clear();
    rows.reserve(facts.size());
    for (const Atom* a : facts) {
      std::vector<uint64_t> key;
      key.reserve(arity);
      for (Term t : a->terms) key.push_back(t.Key());
      rows.push_back(std::move(key));
    }
    std::sort(rows.begin(), rows.end());
    rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
    datalog::TableStatistics t;
    t.rows = rows.size();
    t.distinct.reserve(arity);
    for (size_t i = 0; i < arity; ++i) {
      col.clear();
      col.reserve(rows.size());
      for (const std::vector<uint64_t>& r : rows) col.push_back(r[i]);
      std::sort(col.begin(), col.end());
      t.distinct.push_back(static_cast<uint64_t>(
          std::unique(col.begin(), col.end()) - col.begin()));
    }
    stats.total_facts += t.rows;
    stats.max_rows = std::max(stats.max_rows, t.rows);
    stats.tables.emplace(pred, std::move(t));
  }
  return stats;
}

CostModel::CostModel(const Program& program,
                     const datalog::ProgramAnalysis& analysis,
                     datalog::InstanceStatistics edb_stats)
    : edb_stats_(std::move(edb_stats)),
      weakly_acyclic_(analysis.IsWeaklyAcyclic()) {
  const std::vector<Rule>& tgds = analysis.tgds();

  // Distinct-count of a position: exact for EDB tables (the always-
  // maintained per-position indexes), bounded by the current row
  // estimate for derived predicates.
  auto distinct_at = [this](uint32_t pred, size_t idx,
                            uint64_t rows_estimate) -> uint64_t {
    auto it = edb_stats_.tables.find(pred);
    if (it != edb_stats_.tables.end() && idx < it->second.distinct.size() &&
        it->second.distinct[idx] > 0) {
      return it->second.distinct[idx];
    }
    return std::max<uint64_t>(1, rows_estimate);
  };

  // --- predicted chase size: iterated join-size estimates -----------------
  for (const auto& [pred, t] : edb_stats_.tables) {
    predicted_rows_[pred] = t.rows;
  }
  auto estimate_firings =
      [&](const Rule& rule,
          const std::unordered_map<uint32_t, uint64_t>& rows) -> uint64_t {
    uint64_t est = 1;
    for (const Atom& a : rule.body) {
      auto it = rows.find(a.predicate);
      est = SatMul(est, it == rows.end() ? 0 : it->second);
    }
    if (est == 0) return 0;
    // One division per extra occurrence of a repeated variable (System-R:
    // join size divides by the largest distinct-count among the joined
    // positions), one per constant (point selection).
    std::unordered_map<uint32_t, uint64_t> occurrences;
    std::unordered_map<uint32_t, uint64_t> max_distinct;
    for (const Atom& a : rule.body) {
      auto rit = rows.find(a.predicate);
      const uint64_t r = rit == rows.end() ? 0 : rit->second;
      for (size_t i = 0; i < a.terms.size(); ++i) {
        const Term t = a.terms[i];
        const uint64_t d = distinct_at(a.predicate, i, r);
        if (t.IsVariable()) {
          ++occurrences[t.id()];
          uint64_t& m = max_distinct[t.id()];
          m = std::max(m, d);
        } else {
          est = std::max<uint64_t>(1, est / std::max<uint64_t>(1, d));
        }
      }
    }
    for (const auto& [var, count] : occurrences) {
      for (uint64_t k = 1; k < count; ++k) {
        est = std::max<uint64_t>(1, est / std::max<uint64_t>(1,
                                                            max_distinct[var]));
      }
    }
    return est;
  };
  for (int iter = 0; iter < kFixpointIterations; ++iter) {
    std::unordered_map<uint32_t, uint64_t> next;
    for (const auto& [pred, t] : edb_stats_.tables) next[pred] = t.rows;
    for (const Rule& rule : tgds) {
      const uint64_t est = estimate_firings(rule, predicted_rows_);
      for (const Atom& h : rule.head) {
        uint64_t& r = next[h.predicate];
        r = SatAdd(r, est);
      }
    }
    if (next == predicted_rows_) break;
    predicted_rows_ = std::move(next);
  }
  for (const auto& [pred, r] : predicted_rows_) {
    (void)pred;
    predicted_chase_facts_ = SatAdd(predicted_chase_facts_, r);
  }
  if (!weakly_acyclic_) {
    predicted_chase_facts_ =
        std::max(predicted_chase_facts_, kNonTerminatingFacts);
  }
  chase_cost_ = SatMul(kChaseFactWeight, predicted_chase_facts_);

  // --- unfolding breadth: how many disjuncts a goal atom expands into ----
  std::unordered_map<uint32_t, std::vector<size_t>> head_rules;
  for (size_t i = 0; i < tgds.size(); ++i) {
    for (const Atom& h : tgds[i].head) head_rules[h.predicate].push_back(i);
  }
  std::unordered_map<uint32_t, uint64_t> breadth_memo;
  std::unordered_set<uint32_t> visiting;
  std::function<uint64_t(uint32_t)> breadth = [&](uint32_t pred) -> uint64_t {
    auto memo = breadth_memo.find(pred);
    if (memo != breadth_memo.end()) return memo->second;
    if (visiting.count(pred) > 0) return kBreadthCap;  // recursive unfolding
    visiting.insert(pred);
    uint64_t r = 1;
    auto it = head_rules.find(pred);
    if (it != head_rules.end()) {
      for (size_t rule_index : it->second) {
        uint64_t prod = 1;
        for (const Atom& b : tgds[rule_index].body) {
          prod = std::min(kBreadthCap, SatMul(prod, breadth(b.predicate)));
        }
        r = std::min(kBreadthCap, SatAdd(r, prod));
      }
    }
    visiting.erase(pred);
    breadth_memo[pred] = r;
    return r;
  };
  uint64_t total_body_atoms = 0;
  for (const Rule& rule : tgds) {
    total_body_atoms += rule.body.size();
    for (const Atom& h : rule.head) {
      unfolding_breadth_ = std::max(unfolding_breadth_, breadth(h.predicate));
    }
    for (const Atom& b : rule.body) {
      unfolding_breadth_ = std::max(unfolding_breadth_, breadth(b.predicate));
    }
  }
  avg_body_atoms_ =
      tgds.empty() ? 1 : (total_body_atoms + tgds.size() - 1) / tgds.size();
  avg_body_atoms_ = std::max<uint64_t>(1, avg_body_atoms_);

  const uint64_t scan = std::max<uint64_t>(1, edb_stats_.max_rows);
  rewriting_cost_ = SatMul(unfolding_breadth_, SatMul(avg_body_atoms_, scan));
  ws_cost_ = SatMul(kWsWeight, rewriting_cost_);
}

std::string CostModel::ToString(const datalog::Vocabulary& vocab) const {
  std::string out = "cost model (work units):\n";
  out += "  EDB: " + std::to_string(edb_stats_.total_facts) +
         " facts, largest table " + std::to_string(edb_stats_.max_rows) +
         " rows\n";
  out += "  predicted chase size: " + std::to_string(predicted_chase_facts_) +
         " facts";
  if (!weakly_acyclic_) out += " (non-weakly-acyclic termination penalty)";
  out += "\n";
  out += "  unfolding breadth: " + std::to_string(unfolding_breadth_) +
         ", avg body atoms: " + std::to_string(avg_body_atoms_) + "\n";
  out += "  engine costs: chase=" + std::to_string(chase_cost_) +
         " rewriting=" + std::to_string(rewriting_cost_) +
         " deterministic-ws=" + std::to_string(ws_cost_) + "\n";
  std::vector<std::pair<std::string, uint64_t>> rows;
  rows.reserve(predicted_rows_.size());
  for (const auto& [pred, r] : predicted_rows_) {
    rows.emplace_back(vocab.PredicateName(pred), r);
  }
  std::sort(rows.begin(), rows.end());
  for (const auto& [name, r] : rows) {
    out += "  predicted rows " + name + ": " + std::to_string(r) + "\n";
  }
  return out;
}

}  // namespace mdqa::analysis
