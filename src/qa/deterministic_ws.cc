#include "qa/deterministic_ws.h"

#include <algorithm>

#include "datalog/unify.h"

namespace mdqa::qa {

using datalog::Atom;
using datalog::Comparison;
using datalog::ConjunctiveQuery;
using datalog::CqEvaluator;
using datalog::EvalComparison;
using datalog::FactTable;
using datalog::Instance;
using datalog::MatchAtom;
using datalog::Program;
using datalog::Resolve;
using datalog::Rule;
using datalog::SubstAtom;
using datalog::Term;
using datalog::UndoTrail;
using datalog::UnifyAtoms;

DeterministicWsQa::DeterministicWsQa(const Program& program,
                                     const WsQaOptions& options)
    : vocab_(program.vocab()),
      tgds_(program.Tgds()),
      work_(Instance::FromProgram(program)),
      options_(options) {}

uint32_t DeterministicWsQa::EffectiveDepth() const {
  if (options_.max_depth > 0) return options_.max_depth;
  return static_cast<uint32_t>(4 * tgds_.size() + 8);
}

Rule DeterministicWsQa::RenameApart(const Rule& rule) {
  Subst renaming;
  for (uint32_t v : rule.BodyVariables()) {
    renaming.emplace(v, vocab_->FreshVariable());
  }
  for (uint32_t v : rule.HeadVariables()) {
    renaming.emplace(v, vocab_->FreshVariable());
  }
  Rule out = rule;
  for (Atom& a : out.body) a = SubstAtom(renaming, a);
  for (Atom& a : out.head) a = SubstAtom(renaming, a);
  for (Comparison& c : out.comparisons) {
    c.lhs = Resolve(renaming, c.lhs);
    c.rhs = Resolve(renaming, c.rhs);
  }
  return out;
}

std::string DeterministicWsQa::CanonicalPattern(const Atom& atom) const {
  std::string key = std::to_string(atom.predicate);
  std::unordered_map<uint32_t, int> var_order;
  for (Term t : atom.terms) {
    key += '|';
    if (t.IsVariable()) {
      auto [it, _] = var_order.emplace(t.id(),
                                       static_cast<int>(var_order.size()));
      key += 'v' + std::to_string(it->second);
    } else {
      key += std::to_string(t.Key());
    }
  }
  return key;
}

Status DeterministicWsQa::Fire(const Rule& rule, const Subst& theta) {
  // Frontier bindings: body solutions ground every body variable.
  Subst h;
  for (uint32_t v : rule.FrontierVariables()) {
    h[v] = Resolve(theta, Term::Variable(v));
  }
  // Restricted chase: skip if the head already holds.
  CqEvaluator eval(work_);
  MDQA_ASSIGN_OR_RETURN(bool satisfied, eval.Satisfiable(rule.head, {}, h));
  if (satisfied) return Status::Ok();
  for (uint32_t z : rule.ExistentialVariables()) {
    h[z] = vocab_->FreshNull();
  }
  ++stats_.rule_applications;
  std::vector<Atom> witness;
  if (options_.provenance != nullptr) {
    witness.reserve(rule.body.size());
    for (const Atom& b : rule.body) witness.push_back(SubstAtom(theta, b));
  }
  for (const Atom& head_atom : rule.head) {
    Atom fact = SubstAtom(h, head_atom);
    if (work_.AddFact(fact, /*level=*/1)) {
      ++stats_.facts_materialized;
      if (options_.budget != nullptr) {
        Status bs = options_.budget->ChargeFacts(1);
        if (!bs.ok()) {
          // Graceful: facts materialized so far are all genuinely
          // entailed; the search unwinds via budget_interrupt_.
          if (ExecutionBudget::IsTruncation(bs)) {
            if (budget_interrupt_.ok()) budget_interrupt_ = std::move(bs);
          } else {
            return bs;
          }
        }
      }
      if (options_.provenance != nullptr) {
        options_.provenance->Record(
            fact, datalog::ProvenanceStore::Derivation{rule, witness});
      }
    }
  }
  if (work_.TotalFacts() > options_.max_facts) {
    return Status::ResourceExhausted(
        "WS QA materialized more than max_facts=" +
        std::to_string(options_.max_facts));
  }
  return Status::Ok();
}

Status DeterministicWsQa::ExpandGoal(const Atom& goal_inst, uint32_t depth) {
  if (depth == 0) return Status::Ok();
  const std::string key = CanonicalPattern(goal_inst);
  if (options_.use_memo) {
    auto it = memo_.find(key);
    if (it != memo_.end() && it->second.first >= depth &&
        it->second.second == work_.TotalFacts()) {
      return Status::Ok();  // already expanded, nothing new since
    }
  }

  for (const Rule& tgd : tgds_) {
    if (!budget_interrupt_.ok()) break;
    // Cheap pre-filter before renaming: some head atom must share the
    // goal's predicate.
    bool relevant = false;
    for (const Atom& h : tgd.head) {
      if (h.predicate == goal_inst.predicate) {
        relevant = true;
        break;
      }
    }
    if (!relevant) continue;

    Rule renamed = RenameApart(tgd);
    for (const Atom& head_atom : renamed.head) {
      if (head_atom.predicate != goal_inst.predicate) continue;
      std::optional<Subst> mgu = UnifyAtoms(goal_inst, head_atom);
      if (!mgu.has_value()) continue;
      // A ground goal term at an existential position can never equal the
      // fresh null this rule would invent — such resolutions are dead.
      bool dead = false;
      for (uint32_t z : renamed.ExistentialVariables()) {
        if (Resolve(*mgu, Term::Variable(z)).IsGround()) {
          dead = true;
          break;
        }
      }
      if (dead) continue;

      // Prove the (goal-instantiated) body; every proof fires the rule.
      Subst body_subst = *mgu;
      std::vector<uint32_t> trail;
      bool stop = false;
      Status fire_error = Status::Ok();
      MDQA_RETURN_IF_ERROR(SolveGoals(
          renamed.body, renamed.comparisons, 0, &body_subst, &trail,
          depth - 1,
          [&](const Subst& theta) {
            Status s = Fire(renamed, theta);
            if (!s.ok()) {
              fire_error = s;
              return false;
            }
            return true;  // keep enumerating body proofs
          },
          &stop));
      MDQA_RETURN_IF_ERROR(fire_error);
    }
  }
  // Don't memoize a truncated expansion — it would wrongly read as "fully
  // expanded" once the pattern recurs under a fresh budget.
  if (budget_interrupt_.ok()) memo_[key] = {depth, work_.TotalFacts()};
  return Status::Ok();
}

Status DeterministicWsQa::SolveGoals(
    const std::vector<Atom>& goals, const std::vector<Comparison>& comparisons,
    size_t idx, Subst* subst, std::vector<uint32_t>* trail, uint32_t depth,
    const std::function<bool(const Subst&)>& on_solution, bool* stop) {
  if (*stop) return Status::Ok();
  if (!budget_interrupt_.ok()) {
    // A budget trip unwinds the whole search cooperatively; solutions
    // already delivered stay valid.
    *stop = true;
    return Status::Ok();
  }
  if (options_.budget != nullptr) {
    Status bs = options_.budget->Check("ws:step");
    if (bs.ok()) bs = options_.budget->ChargeSteps(1);
    if (!bs.ok()) {
      if (!ExecutionBudget::IsTruncation(bs)) return bs;  // injected hard fault
      budget_interrupt_ = std::move(bs);
      *stop = true;
      return Status::Ok();
    }
  }
  if (++stats_.resolution_steps > options_.max_steps) {
    return Status::ResourceExhausted("WS QA exceeded max_steps=" +
                                     std::to_string(options_.max_steps));
  }
  // Prune on any decided-false comparison.
  for (const Comparison& c : comparisons) {
    Term lhs = Resolve(*subst, c.lhs);
    Term rhs = Resolve(*subst, c.rhs);
    if (lhs.IsGround() && rhs.IsGround() &&
        !EvalComparison(*vocab_, c.op, lhs, rhs)) {
      return Status::Ok();
    }
  }
  if (idx == goals.size()) {
    if (!on_solution(*subst)) *stop = true;
    return Status::Ok();
  }

  const Atom& goal = goals[idx];
  Atom goal_inst = SubstAtom(*subst, goal);

  // Phase 1: let every TGD that could entail this goal materialize its
  // consequences (bounded by depth).
  MDQA_RETURN_IF_ERROR(ExpandGoal(goal_inst, depth));

  // Phase 2: match the goal against the working instance. Snapshot the
  // candidate rows — deeper recursion may materialize more facts.
  const FactTable* table = work_.Table(goal_inst.predicate);
  if (table == nullptr) return Status::Ok();
  std::vector<uint32_t> candidates;
  int probe_pos = -1;
  size_t probe_size = 0;
  Term probe_term;
  for (size_t p = 0; p < goal_inst.terms.size(); ++p) {
    Term t = goal_inst.terms[p];
    if (!t.IsGround()) continue;
    const size_t count = table->ProbeCount(p, t);
    if (probe_pos < 0 || count < probe_size) {
      probe_pos = static_cast<int>(p);
      probe_size = count;
      probe_term = t;
    }
  }
  if (probe_pos >= 0) {
    candidates = table->Probe(static_cast<size_t>(probe_pos), probe_term);
  } else {
    candidates.resize(table->size());
    for (uint32_t r = 0; r < table->size(); ++r) candidates[r] = r;
  }

  for (uint32_t r : candidates) {
    if (*stop) return Status::Ok();
    size_t mark = trail->size();
    // Re-fetch the table: materialization may have rehashed the map the
    // table lives in? No — tables are stable per predicate, but be safe
    // about row pointers: FactTable never moves rows, only appends.
    if (MatchAtom(goal, work_.Table(goal_inst.predicate)->Row(r), subst,
                  trail)) {
      MDQA_RETURN_IF_ERROR(SolveGoals(goals, comparisons, idx + 1, subst,
                                      trail, depth, on_solution, stop));
    }
    UndoTrail(subst, trail, mark);
  }
  return Status::Ok();
}

// Stratified negation needs fully evaluated lower strata; the lazy
// working instance is partial by design, so negation routes to ChaseQa.
static Status RejectNegation(const std::vector<Rule>& tgds,
                             const ConjunctiveQuery& query) {
  if (query.HasNegation()) {
    return Status::Unimplemented(
        "DeterministicWsQa does not support negated query atoms; use the "
        "chase engine");
  }
  for (const Rule& r : tgds) {
    if (r.HasNegation()) {
      return Status::Unimplemented(
          "DeterministicWsQa does not support rules with negation; use "
          "the chase engine");
    }
  }
  return Status::Ok();
}

Result<std::vector<std::vector<Term>>> DeterministicWsQa::Enumerate(
    const ConjunctiveQuery& query, bool certain_only) {
  MDQA_RETURN_IF_ERROR(query.Validate());
  MDQA_RETURN_IF_ERROR(RejectNegation(tgds_, query));
  budget_interrupt_ = Status::Ok();
  stats_.completeness = Completeness::kComplete;
  stats_.interruption = Status::Ok();
  const uint32_t depth = EffectiveDepth();
  std::vector<std::vector<Term>> out;
  // Passes until the working instance stabilizes (candidate snapshots can
  // miss facts materialized after a goal was matched; monotone passes
  // converge to the complete answer set for the depth bound).
  while (true) {
    ++stats_.passes;
    size_t size_before = work_.TotalFacts();
    out.clear();
    Subst subst;
    std::vector<uint32_t> trail;
    bool stop = false;
    MDQA_RETURN_IF_ERROR(SolveGoals(
        query.body, query.comparisons, 0, &subst, &trail, depth,
        [&](const Subst& s) {
          std::vector<Term> tuple;
          tuple.reserve(query.answer.size());
          for (Term t : query.answer) tuple.push_back(Resolve(s, t));
          if (!certain_only || !CqEvaluator::HasNull(tuple)) {
            if (std::find(out.begin(), out.end(), tuple) == out.end()) {
              out.push_back(std::move(tuple));
            }
          }
          return true;
        },
        &stop));
    if (!budget_interrupt_.ok()) {
      // Every tuple in `out` is backed by a completed proof, so the
      // partial set is a sound under-approximation.
      stats_.completeness = Completeness::kTruncated;
      stats_.interruption = budget_interrupt_;
      break;
    }
    if (work_.TotalFacts() == size_before) break;
  }
  return out;
}

Result<bool> DeterministicWsQa::AnswerBoolean(const ConjunctiveQuery& query) {
  MDQA_RETURN_IF_ERROR(query.Validate());
  MDQA_RETURN_IF_ERROR(RejectNegation(tgds_, query));
  budget_interrupt_ = Status::Ok();
  stats_.completeness = Completeness::kComplete;
  stats_.interruption = Status::Ok();
  const uint32_t depth = EffectiveDepth();
  while (true) {
    ++stats_.passes;
    size_t size_before = work_.TotalFacts();
    Subst subst;
    std::vector<uint32_t> trail;
    bool stop = false;
    bool found = false;
    MDQA_RETURN_IF_ERROR(SolveGoals(query.body, query.comparisons, 0, &subst,
                                    &trail, depth,
                                    [&found](const Subst&) {
                                      found = true;
                                      return false;  // accept: stop search
                                    },
                                    &stop));
    if (found) return true;
    if (!budget_interrupt_.ok()) {
      // No proof found within budget: report "not entailed" as a sound
      // under-approximation and flag the truncation.
      stats_.completeness = Completeness::kTruncated;
      stats_.interruption = budget_interrupt_;
      return false;
    }
    if (work_.TotalFacts() == size_before) return false;
  }
}

Result<std::vector<std::vector<Term>>> DeterministicWsQa::Answers(
    const ConjunctiveQuery& query) {
  return Enumerate(query, /*certain_only=*/true);
}

Result<std::vector<std::vector<Term>>> DeterministicWsQa::PossibleAnswers(
    const ConjunctiveQuery& query) {
  return Enumerate(query, /*certain_only=*/false);
}

}  // namespace mdqa::qa
