#ifndef MDQA_QA_ENGINES_H_
#define MDQA_QA_ENGINES_H_

#include <string>
#include <vector>

#include "analysis/cost_model.h"
#include "base/result.h"
#include "datalog/analysis.h"
#include "qa/chase_qa.h"
#include "qa/deterministic_ws.h"
#include "qa/rewriter.h"

namespace mdqa::qa {

/// The three query-answering strategies of the paper's §IV.
enum class Engine {
  kChase,            ///< materialize the chase, evaluate on it
  kDeterministicWs,  ///< top-down proof-schema search (DeterministicWSQAns)
  kRewriting,        ///< FO/UCQ rewriting, evaluated on the raw EDB
};

const char* EngineToString(Engine e);

/// Inputs to SelectEngine beyond the program's own syntax.
struct EngineSelectOptions {
  /// The ontology layer's verdict on the paper's EGD-separability
  /// condition (§III). When false and EGDs are present, only the chase
  /// enforces them soundly.
  bool egds_separable = false;
  /// Shared cost model (program shape + EDB statistics). When null,
  /// SelectEngine builds one locally from the program's own facts. Not
  /// owned.
  const analysis::CostModel* cost_model = nullptr;
};

/// One engine's entry in the planner's cost table.
struct EngineCandidate {
  Engine engine = Engine::kChase;
  bool sound = false;
  uint64_t predicted_cost = 0;
  std::string note;  ///< why the engine is unsound; empty when sound
};

/// What the cost-based planner picked, and why — recorded verbatim in
/// the assessment report, together with the predicted cost of the
/// winner and the full candidate table.
struct EngineSelection {
  Engine engine = Engine::kChase;
  std::string reason;
  uint64_t predicted_cost = 0;
  /// Always in the order chase, deterministic-ws, rewriting.
  std::vector<EngineCandidate> candidates;
};

/// Cost-based planner over the three engines. Soundness guards run
/// first and are unchanged from the syntactic gate: stratified negation
/// and non-separable EGDs force the chase (the other engines reject or
/// ignore them); the rewriter additionally needs stickiness and
/// single-atom heads; DeterministicWS needs weak stickiness. Among the
/// sound engines the planner picks the minimum `analysis::CostModel`
/// predicted cost (ties prefer rewriting, then WS, then chase — the
/// engines with the smaller memory footprint). The decision is a pure
/// function of (rules, EDB statistics), so it is byte-stable across
/// serial/parallel and incremental/from-scratch runs.
EngineSelection SelectEngine(const datalog::Program& program,
                             const datalog::ProgramAnalysis& analysis,
                             const EngineSelectOptions& options);

/// Per-call controls for `Answer`/`CrossCheck`.
struct AnswerOptions {
  /// When non-null, threaded through the chosen engine (chase rounds,
  /// WS proof steps, rewrite iterations, and every row of query
  /// evaluation). A budget trip yields a *partial but sound* AnswerSet
  /// tagged `kTruncated` instead of an error. Not owned.
  ExecutionBudget* budget = nullptr;
  /// When non-null, the chosen engine parallelizes its read-only phases
  /// on this pool: chase trigger matching (`ChaseOptions::pool`) and UCQ
  /// disjunct evaluation (`RewriteOptions::pool`). Answer sets are
  /// canonical, so results are identical with or without a pool (see
  /// docs/parallelism.md). Not owned.
  ThreadPool* pool = nullptr;
};

/// A set of certain-answer tuples in canonical (sorted, deduplicated)
/// form, so answer sets from different engines compare with ==.
struct AnswerSet {
  std::vector<std::vector<datalog::Term>> tuples;
  /// kTruncated when a budget cut the producing run short; the tuples
  /// are then a sound under-approximation of the certain answers.
  /// Not part of ==: equality compares tuples only.
  Completeness completeness = Completeness::kComplete;
  /// The budget status that interrupted the run (OK when complete).
  Status interruption;

  static AnswerSet Of(std::vector<std::vector<datalog::Term>> raw);

  size_t size() const { return tuples.size(); }
  bool empty() const { return tuples.empty(); }
  bool Contains(const std::vector<datalog::Term>& t) const;
  /// True iff every tuple of this set occurs in `other`.
  bool IsSubsetOf(const AnswerSet& other) const;

  friend bool operator==(const AnswerSet& a, const AnswerSet& b) {
    return a.tuples == b.tuples;
  }
  friend bool operator!=(const AnswerSet& a, const AnswerSet& b) {
    return !(a == b);
  }

  /// `{(a, b), (c, d)}` rendered through `vocab`.
  std::string ToString(const datalog::Vocabulary& vocab) const;

  /// Materializes the answers as a relation named `name` with the given
  /// attribute names (a0..aN-1 when empty). Labeled nulls render as
  /// their display strings.
  Result<Relation> ToRelation(const datalog::Vocabulary& vocab,
                              const std::string& name,
                              std::vector<std::string> attr_names) const;
};

/// Uniform entry point over the three engines (certain answers).
Result<AnswerSet> Answer(Engine engine, const datalog::Program& program,
                         const datalog::ConjunctiveQuery& query,
                         const AnswerOptions& options);

Result<AnswerSet> Answer(Engine engine, const datalog::Program& program,
                         const datalog::ConjunctiveQuery& query);

/// Runs `query` through every engine in `engines` and fails with
/// kInternal (showing both answer sets) on the first disagreement —
/// the property-test harness for engine agreement. Truncation-aware:
/// a truncated set is only required to be a *subset* of a complete one
/// (two truncated sets are not compared), and the returned set prefers
/// a complete engine's answers when any engine completed.
Result<AnswerSet> CrossCheck(const datalog::Program& program,
                             const datalog::ConjunctiveQuery& query,
                             const std::vector<Engine>& engines,
                             const AnswerOptions& options);

Result<AnswerSet> CrossCheck(const datalog::Program& program,
                             const datalog::ConjunctiveQuery& query,
                             const std::vector<Engine>& engines);

}  // namespace mdqa::qa

#endif  // MDQA_QA_ENGINES_H_
