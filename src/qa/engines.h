#ifndef MDQA_QA_ENGINES_H_
#define MDQA_QA_ENGINES_H_

#include <string>
#include <vector>

#include "base/result.h"
#include "qa/chase_qa.h"
#include "qa/deterministic_ws.h"
#include "qa/rewriter.h"

namespace mdqa::qa {

/// The three query-answering strategies of the paper's §IV.
enum class Engine {
  kChase,            ///< materialize the chase, evaluate on it
  kDeterministicWs,  ///< top-down proof-schema search (DeterministicWSQAns)
  kRewriting,        ///< FO/UCQ rewriting, evaluated on the raw EDB
};

const char* EngineToString(Engine e);

/// A set of certain-answer tuples in canonical (sorted, deduplicated)
/// form, so answer sets from different engines compare with ==.
struct AnswerSet {
  std::vector<std::vector<datalog::Term>> tuples;

  static AnswerSet Of(std::vector<std::vector<datalog::Term>> raw);

  size_t size() const { return tuples.size(); }
  bool empty() const { return tuples.empty(); }
  bool Contains(const std::vector<datalog::Term>& t) const;

  friend bool operator==(const AnswerSet& a, const AnswerSet& b) {
    return a.tuples == b.tuples;
  }
  friend bool operator!=(const AnswerSet& a, const AnswerSet& b) {
    return !(a == b);
  }

  /// `{(a, b), (c, d)}` rendered through `vocab`.
  std::string ToString(const datalog::Vocabulary& vocab) const;

  /// Materializes the answers as a relation named `name` with the given
  /// attribute names (a0..aN-1 when empty). Labeled nulls render as
  /// their display strings.
  Result<Relation> ToRelation(const datalog::Vocabulary& vocab,
                              const std::string& name,
                              std::vector<std::string> attr_names) const;
};

/// Uniform entry point over the three engines (certain answers).
Result<AnswerSet> Answer(Engine engine, const datalog::Program& program,
                         const datalog::ConjunctiveQuery& query);

/// Runs `query` through every engine in `engines` and fails with
/// kInternal (showing both answer sets) on the first disagreement —
/// the property-test harness for engine agreement.
Result<AnswerSet> CrossCheck(const datalog::Program& program,
                             const datalog::ConjunctiveQuery& query,
                             const std::vector<Engine>& engines);

}  // namespace mdqa::qa

#endif  // MDQA_QA_ENGINES_H_
