#ifndef MDQA_QA_DETERMINISTIC_WS_H_
#define MDQA_QA_DETERMINISTIC_WS_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/budget.h"
#include "base/result.h"
#include "datalog/cq_eval.h"
#include "datalog/instance.h"
#include "datalog/provenance.h"

namespace mdqa::qa {

struct WsQaOptions {
  /// Maximum nesting depth of TGD applications along one proof branch
  /// (the height of the paper's resolution proof schema). 0 = automatic:
  /// `4 * #TGDs + 8`, ample for dimensional-navigation chains.
  uint32_t max_depth = 0;
  /// Resolution-step budget; exceeding it fails with kResourceExhausted.
  uint64_t max_steps = 5'000'000;
  /// Materialized-fact budget.
  uint64_t max_facts = 1'000'000;
  /// When non-null, every firing records its ground body witness (see
  /// datalog/provenance.h) — the materialized resolution proof schema.
  datalog::ProvenanceStore* provenance = nullptr;
  /// Expansion memoization (goal pattern → depth/epoch). Disable only for
  /// the ablation benchmark — without it, repeated subgoals re-derive
  /// their subtrees.
  bool use_memo = true;
  /// When non-null, the proof search polls this budget (probe "ws:step")
  /// and charges steps/materialized facts against it. Budget trips stop
  /// the search *gracefully*: `Answers`/`PossibleAnswers` return the
  /// solutions found so far (each backed by a real proof, hence sound)
  /// with `WsQaStats::completeness == kTruncated`; the legacy
  /// `max_steps`/`max_facts` limits above remain hard errors. Not owned.
  ExecutionBudget* budget = nullptr;
};

struct WsQaStats {
  uint64_t resolution_steps = 0;
  uint64_t rule_applications = 0;
  uint64_t facts_materialized = 0;
  uint64_t passes = 0;
  /// kTruncated when the last public call was cut short by the budget;
  /// answers returned are a sound under-approximation.
  Completeness completeness = Completeness::kComplete;
  /// The budget status that interrupted the last call (OK when complete).
  Status interruption;
};

/// The paper's `DeterministicWSQAns` (§IV): a deterministic top-down
/// backtracking search for accepting resolution proof schemas, realized as
/// goal-directed resolution with lazy materialization.
///
/// Query atoms are resolved left to right. A goal is resolved either by a
/// substitution mapping it onto a ground atom of the working instance
/// (initially the extensional database — substitutions are *derived from
/// ground data*, as in the paper, not guessed), or by applying a TGD whose
/// head unifies with it: the TGD's body is proven recursively and each
/// proof *fires* the TGD (restricted-chase semantics, fresh labeled nulls
/// for existentials, shared across multi-atom heads), materializing head
/// facts the goal is then re-matched against. Materialization is what
/// lets later goals join on the invented nulls — the tree of firings is
/// exactly a resolution proof schema of bounded depth.
///
/// Backtracking uses an explicit binding trail; an expansion memo (goal
/// pattern → depth/instance-epoch) avoids re-deriving subtrees. Because a
/// goal's fact candidates are snapshotted before deeper goals materialize,
/// each public call iterates proof passes until the working instance
/// stops growing — every pass is monotone, so the fixpoint restores
/// completeness up to the depth bound. For weakly-sticky programs a
/// polynomial depth suffices (Calì–Gottlob–Pieris), which is the paper's
/// tractability claim.
class DeterministicWsQa {
 public:
  explicit DeterministicWsQa(const datalog::Program& program,
                             const WsQaOptions& options = WsQaOptions());

  /// Boolean CQ entailment.
  Result<bool> AnswerBoolean(const datalog::ConjunctiveQuery& query);

  /// Certain answers to an open CQ (null-free tuples).
  Result<std::vector<std::vector<datalog::Term>>> Answers(
      const datalog::ConjunctiveQuery& query);

  /// All answer tuples, including ones containing labeled nulls.
  Result<std::vector<std::vector<datalog::Term>>> PossibleAnswers(
      const datalog::ConjunctiveQuery& query);

  const WsQaStats& stats() const { return stats_; }
  const datalog::Instance& working_instance() const { return work_; }

 private:
  using Subst = datalog::Subst;

  // One full left-to-right proof pass; solutions go to `on_solution`
  // (return false to stop). Grows `work_` as a side effect.
  Status SolveGoals(const std::vector<datalog::Atom>& goals,
                    const std::vector<datalog::Comparison>& comparisons,
                    size_t idx, Subst* subst, std::vector<uint32_t>* trail,
                    uint32_t depth,
                    const std::function<bool(const Subst&)>& on_solution,
                    bool* stop);

  // Phase 1 of goal resolution: apply every TGD whose head unifies with
  // the (instantiated) goal, materializing the resulting firings.
  Status ExpandGoal(const datalog::Atom& goal_inst, uint32_t depth);

  // Fires `rule` (already renamed apart) under the body solution `theta`:
  // restricted-chase check, fresh nulls, insert head facts.
  Status Fire(const datalog::Rule& rule, const Subst& theta);

  datalog::Rule RenameApart(const datalog::Rule& rule);

  std::string CanonicalPattern(const datalog::Atom& atom) const;

  uint32_t EffectiveDepth() const;

  Result<std::vector<std::vector<datalog::Term>>> Enumerate(
      const datalog::ConjunctiveQuery& query, bool certain_only);

  std::shared_ptr<datalog::Vocabulary> vocab_;
  std::vector<datalog::Rule> tgds_;
  datalog::Instance work_;
  WsQaOptions options_;
  WsQaStats stats_;
  // pattern -> (depth expanded at, instance size after expansion); skip
  // re-expansion when nothing changed since.
  std::unordered_map<std::string, std::pair<uint32_t, size_t>> memo_;
  // First budget trip of the current public call; non-OK makes the
  // search unwind cooperatively (checked at every SolveGoals entry).
  Status budget_interrupt_;
};

}  // namespace mdqa::qa

#endif  // MDQA_QA_DETERMINISTIC_WS_H_
