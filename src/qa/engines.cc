#include "qa/engines.h"

#include <algorithm>
#include <optional>

namespace mdqa::qa {

using datalog::ConjunctiveQuery;
using datalog::Instance;
using datalog::Program;
using datalog::Term;
using datalog::Vocabulary;

const char* EngineToString(Engine e) {
  switch (e) {
    case Engine::kChase:
      return "chase";
    case Engine::kDeterministicWs:
      return "deterministic-ws";
    case Engine::kRewriting:
      return "rewriting";
  }
  return "?";
}

EngineSelection SelectEngine(const Program& program,
                             const datalog::ProgramAnalysis& analysis,
                             const EngineSelectOptions& options) {
  bool has_negation = false;
  bool has_egds = false;
  bool multi_atom_head = false;
  for (const datalog::Rule& r : program.rules()) {
    if (r.HasNegation()) has_negation = true;
    if (r.IsEgd()) has_egds = true;
    if (r.IsTgd() && r.head.size() > 1) multi_atom_head = true;
  }
  const bool egds_blocked = has_egds && !options.egds_separable;

  std::optional<analysis::CostModel> local_model;
  const analysis::CostModel* model = options.cost_model;
  if (model == nullptr) {
    local_model.emplace(program, analysis,
                        analysis::CostModel::CollectEdbStats(program));
    model = &*local_model;
  }

  EngineSelection out;
  out.candidates.push_back(
      {Engine::kChase, true, model->PredictedChaseCost(), ""});
  {
    std::string note;
    if (has_negation) {
      note = "does not evaluate stratified negation";
    } else if (egds_blocked) {
      note = "ignores EGDs, unsound without separability";
    } else if (!analysis.IsWeaklySticky()) {
      note = "program is not weakly sticky";
    }
    out.candidates.push_back(
        {Engine::kDeterministicWs, note.empty(), model->PredictedWsCost(),
         std::move(note)});
  }
  {
    std::string note;
    if (has_negation) {
      note = "does not evaluate stratified negation";
    } else if (egds_blocked) {
      note = "ignores EGDs, unsound without separability";
    } else if (!analysis.IsSticky()) {
      note = "program is not sticky";
    } else if (multi_atom_head) {
      note = "multi-atom heads are not UCQ-rewritable";
    }
    out.candidates.push_back(
        {Engine::kRewriting, note.empty(), model->PredictedRewritingCost(),
         std::move(note)});
  }

  // Minimum predicted cost among the sound candidates; on ties prefer
  // the engines with the smaller memory footprint (rewriting, then WS,
  // then chase).
  auto rank = [](Engine e) {
    switch (e) {
      case Engine::kRewriting:
        return 0;
      case Engine::kDeterministicWs:
        return 1;
      case Engine::kChase:
        return 2;
    }
    return 3;
  };
  const EngineCandidate* best = &out.candidates[0];
  for (const EngineCandidate& c : out.candidates) {
    if (!c.sound) continue;
    if (c.predicted_cost < best->predicted_cost ||
        (c.predicted_cost == best->predicted_cost &&
         rank(c.engine) < rank(best->engine))) {
      best = &c;
    }
  }
  out.engine = best->engine;
  out.predicted_cost = best->predicted_cost;

  // Guard-forced picks keep the syntactic gate's explanations; free
  // choices record the cost comparison.
  if (has_negation) {
    out.reason =
        "rules use stratified negation, which only the chase engine "
        "evaluates";
    return out;
  }
  if (egds_blocked) {
    out.reason =
        "EGDs present without the separability guarantee: the chase "
        "must enforce them";
    return out;
  }
  std::string table;
  for (const EngineCandidate& c : out.candidates) {
    if (!table.empty()) table += ", ";
    table += EngineToString(c.engine);
    table += c.sound ? "=" + std::to_string(c.predicted_cost)
                     : std::string("=unsound (") + c.note + ")";
  }
  out.reason = std::string("cost model picked ") + EngineToString(out.engine) +
               " (" + table + " work units)";
  return out;
}

AnswerSet AnswerSet::Of(std::vector<std::vector<Term>> raw) {
  std::sort(raw.begin(), raw.end());
  raw.erase(std::unique(raw.begin(), raw.end()), raw.end());
  return AnswerSet{std::move(raw)};
}

bool AnswerSet::Contains(const std::vector<Term>& t) const {
  return std::binary_search(tuples.begin(), tuples.end(), t);
}

bool AnswerSet::IsSubsetOf(const AnswerSet& other) const {
  for (const std::vector<Term>& t : tuples) {
    if (!other.Contains(t)) return false;
  }
  return true;
}

std::string AnswerSet::ToString(const Vocabulary& vocab) const {
  std::string out = "{";
  for (size_t i = 0; i < tuples.size(); ++i) {
    if (i > 0) out += ", ";
    out += "(";
    for (size_t j = 0; j < tuples[i].size(); ++j) {
      if (j > 0) out += ", ";
      out += vocab.TermToString(tuples[i][j]);
    }
    out += ")";
  }
  out += "}";
  return out;
}

Result<Relation> AnswerSet::ToRelation(
    const Vocabulary& vocab, const std::string& name,
    std::vector<std::string> attr_names) const {
  const size_t arity = tuples.empty() ? attr_names.size() : tuples[0].size();
  if (attr_names.empty()) {
    for (size_t i = 0; i < arity; ++i) {
      attr_names.push_back("a" + std::to_string(i));
    }
  }
  if (attr_names.size() != arity && !tuples.empty()) {
    return Status::InvalidArgument(
        "attribute-name count does not match answer arity");
  }
  MDQA_ASSIGN_OR_RETURN(RelationSchema schema,
                        RelationSchema::Create(name, attr_names));
  Relation out(std::move(schema));
  for (const std::vector<Term>& t : tuples) {
    Tuple row;
    row.reserve(t.size());
    for (Term term : t) {
      row.push_back(term.IsConstant()
                        ? vocab.ConstantValue(term.id())
                        : Value::Str(vocab.TermToString(term)));
    }
    MDQA_RETURN_IF_ERROR(out.Insert(std::move(row)));
  }
  return out;
}

Result<AnswerSet> Answer(Engine engine, const Program& program,
                         const ConjunctiveQuery& query,
                         const AnswerOptions& aopts) {
  switch (engine) {
    case Engine::kChase: {
      // Pure query answering: negative constraints are a consistency
      // concern reported by quality::Assessor, and the other engines do
      // not evaluate them either.
      datalog::ChaseOptions options;
      options.check_constraints = false;
      options.budget = aopts.budget;
      options.pool = aopts.pool;
      MDQA_ASSIGN_OR_RETURN(ChaseQa qa, ChaseQa::Create(program, options));
      Status interruption;
      MDQA_ASSIGN_OR_RETURN(std::vector<std::vector<Term>> tuples,
                            qa.Answers(query, aopts.budget, &interruption));
      AnswerSet out = AnswerSet::Of(std::move(tuples));
      if (qa.stats().completeness == Completeness::kTruncated) {
        out.completeness = Completeness::kTruncated;
        out.interruption = qa.stats().interruption;
      } else if (!interruption.ok()) {
        out.completeness = Completeness::kTruncated;
        out.interruption = std::move(interruption);
      }
      return out;
    }
    case Engine::kDeterministicWs: {
      WsQaOptions options;
      options.budget = aopts.budget;
      DeterministicWsQa qa(program, options);
      MDQA_ASSIGN_OR_RETURN(std::vector<std::vector<Term>> tuples,
                            qa.Answers(query));
      AnswerSet out = AnswerSet::Of(std::move(tuples));
      out.completeness = qa.stats().completeness;
      out.interruption = qa.stats().interruption;
      return out;
    }
    case Engine::kRewriting: {
      Instance edb = Instance::FromProgram(program);
      RewriteOptions options;
      options.budget = aopts.budget;
      options.pool = aopts.pool;
      RewriteStats stats;
      MDQA_ASSIGN_OR_RETURN(
          std::vector<std::vector<Term>> tuples,
          UcqRewriter::Answers(program, edb, query, options, &stats));
      AnswerSet out = AnswerSet::Of(std::move(tuples));
      out.completeness = stats.completeness;
      out.interruption = stats.interruption;
      return out;
    }
  }
  return Status::InvalidArgument("unknown engine");
}

Result<AnswerSet> Answer(Engine engine, const Program& program,
                         const ConjunctiveQuery& query) {
  return Answer(engine, program, query, AnswerOptions{});
}

Result<AnswerSet> CrossCheck(const Program& program,
                             const ConjunctiveQuery& query,
                             const std::vector<Engine>& engines,
                             const AnswerOptions& options) {
  if (engines.empty()) {
    return Status::InvalidArgument("CrossCheck needs at least one engine");
  }
  auto complete = [](const AnswerSet& s) {
    return s.completeness == Completeness::kComplete;
  };
  MDQA_ASSIGN_OR_RETURN(AnswerSet reference,
                        Answer(engines[0], program, query, options));
  size_t reference_engine = 0;
  for (size_t i = 1; i < engines.size(); ++i) {
    MDQA_ASSIGN_OR_RETURN(AnswerSet other,
                          Answer(engines[i], program, query, options));
    // Truncated runs only promise a sound subset, so: equal when both
    // complete, subset when exactly one is, unconstrained when neither.
    bool violation;
    if (complete(reference) && complete(other)) {
      violation = other != reference;
    } else if (complete(other)) {
      violation = !reference.IsSubsetOf(other);
    } else if (complete(reference)) {
      violation = !other.IsSubsetOf(reference);
    } else {
      violation = false;
    }
    if (violation) {
      const Vocabulary& vocab = *program.vocab();
      return Status::Internal(
          std::string("engine disagreement on query ") +
          vocab.QueryToString(query) + ": " +
          EngineToString(engines[reference_engine]) + " = " +
          reference.ToString(vocab) + " vs " + EngineToString(engines[i]) +
          " = " + other.ToString(vocab));
    }
    // Prefer reporting a complete engine's answers when available.
    if (!complete(reference) && complete(other)) {
      reference = std::move(other);
      reference_engine = i;
    }
  }
  return reference;
}

Result<AnswerSet> CrossCheck(const Program& program,
                             const ConjunctiveQuery& query,
                             const std::vector<Engine>& engines) {
  return CrossCheck(program, query, engines, AnswerOptions{});
}

}  // namespace mdqa::qa
