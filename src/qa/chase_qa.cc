#include "qa/chase_qa.h"

namespace mdqa::qa {

using datalog::Chase;
using datalog::ChaseOptions;
using datalog::ChaseStats;
using datalog::ConjunctiveQuery;
using datalog::CqEvaluator;
using datalog::Instance;
using datalog::Program;
using datalog::Term;

Result<ChaseQa> ChaseQa::Create(const Program& program,
                                const ChaseOptions& options) {
  Instance instance = Instance::FromProgram(program, options.storage);
  MDQA_ASSIGN_OR_RETURN(ChaseStats stats,
                        Chase::Run(program, &instance, options));
  return ChaseQa(program, options, std::move(instance), stats);
}

Result<ChaseQa> ChaseQa::Adopt(Program program, const ChaseOptions& options,
                               Instance instance, ChaseStats stats) {
  if (instance.vocab().get() != program.vocab().get()) {
    return Status::InvalidArgument(
        "ChaseQa::Adopt: instance and program must share one vocabulary");
  }
  if (stats.frontier.valid &&
      stats.frontier.generation != instance.generation()) {
    return Status::FailedPrecondition(
        "ChaseQa::Adopt: frontier generation " +
        std::to_string(stats.frontier.generation) +
        " does not match instance generation " +
        std::to_string(instance.generation()));
  }
  return ChaseQa(std::move(program), options, std::move(instance), stats);
}

Result<ChaseStats> ChaseQa::AddFactsAndRechase(
    const std::vector<datalog::Atom>& facts) {
  for (const datalog::Atom& f : facts) {
    if (!f.IsGround()) {
      return Status::InvalidArgument("new facts must be ground");
    }
    instance_.AddFact(f, /*level=*/0);
  }
  MDQA_ASSIGN_OR_RETURN(ChaseStats stats,
                        Chase::Run(program_, &instance_, options_));
  stats_ = stats;
  return stats;
}

Result<ChaseStats> ChaseQa::Extend(const std::vector<datalog::Atom>& facts) {
  // Keep the program's extensional set in sync first: Chase::Extend's
  // fallback path (and any later one) rebuilds from program_.facts().
  for (const datalog::Atom& f : facts) {
    MDQA_RETURN_IF_ERROR(program_.AddFact(f));
  }
  ChaseStats stats;
  MDQA_RETURN_IF_ERROR(Chase::Extend(program_, &instance_, stats_.frontier,
                                     facts, options_, &stats));
  stats_ = stats;
  return stats;
}

Result<ChaseStats> ChaseQa::Update(const std::vector<datalog::Atom>& inserts,
                                   const std::vector<datalog::Atom>& deletes) {
  if (deletes.empty()) return Extend(inserts);
  // Deletions are non-monotone: no frontier-seeded restart can retract
  // the consequences of a removed fact. Rebuild the extensional set and
  // re-chase from scratch — exact, and recorded as a fallback.
  std::vector<bool> removed(deletes.size(), false);
  Program next(program_.vocab());
  for (const datalog::Rule& r : program_.rules()) {
    MDQA_RETURN_IF_ERROR(next.AddRule(r));
  }
  for (const datalog::Atom& f : program_.facts()) {
    bool keep = true;
    for (size_t i = 0; i < deletes.size(); ++i) {
      if (f == deletes[i]) {
        removed[i] = true;
        keep = false;
        break;
      }
    }
    if (keep) MDQA_RETURN_IF_ERROR(next.AddFact(f));
  }
  for (size_t i = 0; i < deletes.size(); ++i) {
    if (!removed[i]) {
      return Status::NotFound("cannot delete " +
                              program_.vocab()->AtomToString(deletes[i]) +
                              ": not an extensional fact");
    }
  }
  for (const datalog::Atom& f : inserts) {
    MDQA_RETURN_IF_ERROR(next.AddFact(f));
  }
  Instance instance = Instance::FromProgram(next, options_.storage);
  ChaseStats stats;
  MDQA_RETURN_IF_ERROR(Chase::Run(next, &instance, options_, &stats));
  stats.incremental = true;
  stats.extend_fallback = true;
  stats.fallback_reason = "deletions require a full re-chase";
  program_ = std::move(next);
  instance_ = std::move(instance);
  stats_ = stats;
  return stats;
}

Result<std::vector<std::vector<Term>>> ChaseQa::Answers(
    const ConjunctiveQuery& query, ExecutionBudget* budget,
    Status* interruption) const {
  CqEvaluator eval(instance_, nullptr, budget);
  MDQA_ASSIGN_OR_RETURN(std::vector<std::vector<Term>> all,
                        eval.Answers(query, interruption));
  std::vector<std::vector<Term>> certain;
  for (std::vector<Term>& t : all) {
    if (!CqEvaluator::HasNull(t)) certain.push_back(std::move(t));
  }
  return certain;
}

Result<std::vector<std::vector<Term>>> ChaseQa::PossibleAnswers(
    const ConjunctiveQuery& query, ExecutionBudget* budget,
    Status* interruption) const {
  CqEvaluator eval(instance_, nullptr, budget);
  return eval.Answers(query, interruption);
}

Result<bool> ChaseQa::AnswerBoolean(const ConjunctiveQuery& query,
                                    ExecutionBudget* budget,
                                    Status* interruption) const {
  CqEvaluator eval(instance_, nullptr, budget);
  return eval.AnswerBoolean(query, interruption);
}

}  // namespace mdqa::qa
