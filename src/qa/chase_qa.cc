#include "qa/chase_qa.h"

namespace mdqa::qa {

using datalog::Chase;
using datalog::ChaseOptions;
using datalog::ChaseStats;
using datalog::ConjunctiveQuery;
using datalog::CqEvaluator;
using datalog::Instance;
using datalog::Program;
using datalog::Term;

Result<ChaseQa> ChaseQa::Create(const Program& program,
                                const ChaseOptions& options) {
  Instance instance = Instance::FromProgram(program);
  MDQA_ASSIGN_OR_RETURN(ChaseStats stats,
                        Chase::Run(program, &instance, options));
  return ChaseQa(program, options, std::move(instance), stats);
}

Result<ChaseStats> ChaseQa::AddFactsAndRechase(
    const std::vector<datalog::Atom>& facts) {
  for (const datalog::Atom& f : facts) {
    if (!f.IsGround()) {
      return Status::InvalidArgument("new facts must be ground");
    }
    instance_.AddFact(f, /*level=*/0);
  }
  MDQA_ASSIGN_OR_RETURN(ChaseStats stats,
                        Chase::Run(program_, &instance_, options_));
  stats_ = stats;
  return stats;
}

Result<std::vector<std::vector<Term>>> ChaseQa::Answers(
    const ConjunctiveQuery& query, ExecutionBudget* budget,
    Status* interruption) const {
  CqEvaluator eval(instance_, nullptr, budget);
  MDQA_ASSIGN_OR_RETURN(std::vector<std::vector<Term>> all,
                        eval.Answers(query, interruption));
  std::vector<std::vector<Term>> certain;
  for (std::vector<Term>& t : all) {
    if (!CqEvaluator::HasNull(t)) certain.push_back(std::move(t));
  }
  return certain;
}

Result<std::vector<std::vector<Term>>> ChaseQa::PossibleAnswers(
    const ConjunctiveQuery& query, ExecutionBudget* budget,
    Status* interruption) const {
  CqEvaluator eval(instance_, nullptr, budget);
  return eval.Answers(query, interruption);
}

Result<bool> ChaseQa::AnswerBoolean(const ConjunctiveQuery& query,
                                    ExecutionBudget* budget,
                                    Status* interruption) const {
  CqEvaluator eval(instance_, nullptr, budget);
  return eval.AnswerBoolean(query, interruption);
}

}  // namespace mdqa::qa
