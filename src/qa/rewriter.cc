#include "qa/rewriter.h"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "datalog/containment.h"
#include "datalog/unify.h"

namespace mdqa::qa {

using datalog::Atom;
using datalog::Comparison;
using datalog::ConjunctiveQuery;
using datalog::CqEvaluator;
using datalog::Instance;
using datalog::Program;
using datalog::Resolve;
using datalog::Rule;
using datalog::Subst;
using datalog::SubstAtom;
using datalog::Term;
using datalog::UnifyAtoms;
using datalog::Vocabulary;

namespace {

// Applies `s` to a whole query.
ConjunctiveQuery SubstQuery(const Subst& s, const ConjunctiveQuery& q) {
  ConjunctiveQuery out = q;
  for (Term& t : out.answer) t = Resolve(s, t);
  for (Atom& a : out.body) a = SubstAtom(s, a);
  for (Comparison& c : out.comparisons) {
    c.lhs = Resolve(s, c.lhs);
    c.rhs = Resolve(s, c.rhs);
  }
  return out;
}

// Removes duplicate body atoms (set semantics of conjunction).
void DedupBody(ConjunctiveQuery* q) {
  std::vector<Atom> out;
  for (const Atom& a : q->body) {
    if (std::find(out.begin(), out.end(), a) == out.end()) out.push_back(a);
  }
  q->body = std::move(out);
}

// Occurrences of variable `v` across the whole query.
size_t CountVar(const ConjunctiveQuery& q, uint32_t v) {
  size_t n = 0;
  for (Term t : q.answer) {
    if (t.IsVariable() && t.id() == v) ++n;
  }
  for (const Atom& a : q.body) {
    for (Term t : a.terms) {
      if (t.IsVariable() && t.id() == v) ++n;
    }
  }
  for (const Comparison& c : q.comparisons) {
    for (Term t : {c.lhs, c.rhs}) {
      if (t.IsVariable() && t.id() == v) ++n;
    }
  }
  return n;
}

// Variable-name-independent signature used to sort atoms before
// canonical renaming.
std::string AtomSignature(const Atom& a) {
  std::string s = std::to_string(a.predicate);
  for (Term t : a.terms) {
    s += t.IsVariable() ? "|?" : "|" + std::to_string(t.Key());
  }
  return s;
}

// Canonical string of a CQ: body sorted by signature, variables renamed in
// scan order. A dedup key (near-canonical: variable automorphisms may
// produce distinct keys, costing only redundant work).
std::string CanonicalKey(const ConjunctiveQuery& q) {
  ConjunctiveQuery sorted = q;
  std::stable_sort(sorted.body.begin(), sorted.body.end(),
                   [](const Atom& a, const Atom& b) {
                     return AtomSignature(a) < AtomSignature(b);
                   });
  std::unordered_map<uint32_t, int> names;
  auto term_key = [&names](Term t) {
    if (!t.IsVariable()) return std::to_string(t.Key());
    auto [it, _] = names.emplace(t.id(), static_cast<int>(names.size()));
    return "v" + std::to_string(it->second);
  };
  std::string key;
  for (Term t : sorted.answer) key += term_key(t) + ",";
  key += ":-";
  for (const Atom& a : sorted.body) {
    key += std::to_string(a.predicate) + "(";
    for (Term t : a.terms) key += term_key(t) + ",";
    key += ")";
  }
  for (const Comparison& c : sorted.comparisons) {
    key += term_key(c.lhs);
    key += datalog::CmpOpToString(c.op);
    key += term_key(c.rhs);
  }
  return key;
}

}  // namespace

Result<std::vector<ConjunctiveQuery>> UcqRewriter::Rewrite(
    const Program& program, const ConjunctiveQuery& query,
    const RewriteOptions& options, RewriteStats* stats) {
  MDQA_RETURN_IF_ERROR(query.Validate());
  if (query.HasNegation()) {
    return Status::Unimplemented(
        "UCQ rewriting does not support negated query atoms; use the "
        "chase engine");
  }
  const std::vector<Rule> tgds = program.Tgds();
  for (const Rule& r : tgds) {
    if (r.head.size() != 1) {
      return Status::Unimplemented(
          "UCQ rewriting supports single-atom-head TGDs only (form (10) "
          "rules require the chase/WS engines)");
    }
    if (r.HasNegation()) {
      return Status::Unimplemented(
          "UCQ rewriting does not support rules with negation; use the "
          "chase engine");
    }
  }
  Vocabulary* vocab = program.vocab().get();

  std::vector<ConjunctiveQuery> result;
  std::unordered_set<std::string> seen;
  std::deque<size_t> worklist;

  auto push = [&](ConjunctiveQuery q) -> bool {
    DedupBody(&q);
    std::string key = CanonicalKey(q);
    ++stats->generated;
    if (!seen.insert(std::move(key)).second) return true;
    result.push_back(std::move(q));
    worklist.push_back(result.size() - 1);
    return result.size() <= options.max_queries;
  };
  if (!push(query)) {
    return Status::ResourceExhausted("rewriting exceeded max_queries");
  }

  while (!worklist.empty()) {
    if (options.budget != nullptr) {
      Status bs = options.budget->Check("rewrite:iter");
      if (bs.ok()) bs = options.budget->ChargeSteps(1);
      if (!bs.ok()) {
        if (!ExecutionBudget::IsTruncation(bs)) return bs;
        // Graceful: every CQ generated so far is individually sound, so
        // the partial UCQ under-approximates the certain answers.
        stats->completeness = Completeness::kTruncated;
        stats->interruption = std::move(bs);
        break;
      }
    }
    if (++stats->iterations > options.max_iterations) {
      return Status::ResourceExhausted("rewriting exceeded max_iterations");
    }
    const ConjunctiveQuery q = result[worklist.front()];
    worklist.pop_front();

    // Rewriting steps: resolve one atom against one TGD head.
    for (size_t ai = 0; ai < q.body.size(); ++ai) {
      for (const Rule& tgd : tgds) {
        if (tgd.head[0].predicate != q.body[ai].predicate) continue;
        // Rename the TGD apart from the query.
        Subst renaming;
        for (uint32_t v : tgd.BodyVariables()) {
          renaming.emplace(v, vocab->FreshVariable());
        }
        for (uint32_t v : tgd.HeadVariables()) {
          renaming.emplace(v, vocab->FreshVariable());
        }
        Atom head = SubstAtom(renaming, tgd.head[0]);
        std::optional<Subst> mgu = UnifyAtoms(q.body[ai], head);
        if (!mgu.has_value()) continue;

        // Applicability: wherever the head carries an existential
        // variable, the query atom must carry a variable that occurs
        // exactly once in the whole query (a non-answer, non-shared
        // "don't care" — anything else could not be matched by the fresh
        // null). Distinct existentials must meet distinct query
        // variables, and one existential must not meet two.
        std::unordered_set<uint32_t> renamed_exist;
        for (uint32_t z : tgd.ExistentialVariables()) {
          renamed_exist.insert(Resolve(renaming, Term::Variable(z)).id());
        }
        bool applicable = true;
        std::unordered_map<uint32_t, uint32_t> exist_to_query;
        std::unordered_set<uint32_t> used_query_vars;
        for (size_t i = 0; i < head.terms.size() && applicable; ++i) {
          Term h_t = head.terms[i];
          if (!h_t.IsVariable() || renamed_exist.count(h_t.id()) == 0) {
            continue;
          }
          Term q_t = q.body[ai].terms[i];
          if (!q_t.IsVariable() || CountVar(q, q_t.id()) != 1) {
            applicable = false;
            break;
          }
          auto [it, inserted] = exist_to_query.emplace(h_t.id(), q_t.id());
          if (!inserted && it->second != q_t.id()) {
            applicable = false;  // one existential, two query variables
          } else if (inserted && !used_query_vars.insert(q_t.id()).second) {
            applicable = false;  // two existentials, one query variable
          }
        }
        if (!applicable) continue;

        ConjunctiveQuery rewritten = q;
        rewritten.body.erase(rewritten.body.begin() +
                             static_cast<long>(ai));
        for (const Atom& b : tgd.body) {
          rewritten.body.push_back(SubstAtom(renaming, b));
        }
        for (const Comparison& c : tgd.comparisons) {
          Comparison rc;
          rc.op = c.op;
          rc.lhs = Resolve(renaming, c.lhs);
          rc.rhs = Resolve(renaming, c.rhs);
          rewritten.comparisons.push_back(rc);
        }
        rewritten = SubstQuery(*mgu, rewritten);
        if (!push(std::move(rewritten))) {
          return Status::ResourceExhausted("rewriting exceeded max_queries");
        }
      }
    }

    // Factorization: unify two same-predicate atoms (keeps completeness
    // when existential positions must coincide before a rewriting step).
    for (size_t i = 0; i < q.body.size(); ++i) {
      for (size_t j = i + 1; j < q.body.size(); ++j) {
        if (q.body[i].predicate != q.body[j].predicate) continue;
        std::optional<Subst> mgu = UnifyAtoms(q.body[i], q.body[j]);
        if (!mgu.has_value() || mgu->empty()) continue;
        ConjunctiveQuery merged = SubstQuery(*mgu, q);
        if (!push(std::move(merged))) {
          return Status::ResourceExhausted("rewriting exceeded max_queries");
        }
      }
    }
  }

  // Exact minimization: first take each CQ to its core (resolution can
  // leave redundant atoms), then drop members contained in another (the
  // factorization step in particular produces subsumed CQs).
  for (ConjunctiveQuery& cq : result) {
    cq = datalog::MinimizeQuery(std::move(cq), *vocab);
  }
  result = datalog::MinimizeUcq(std::move(result), *vocab);
  stats->kept = result.size();
  return result;
}

Result<std::vector<std::vector<Term>>> UcqRewriter::Answers(
    const Program& program, const Instance& edb,
    const ConjunctiveQuery& query, const RewriteOptions& options,
    RewriteStats* stats) {
  RewriteStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = RewriteStats{};
  MDQA_ASSIGN_OR_RETURN(std::vector<ConjunctiveQuery> ucq,
                        Rewrite(program, query, options, stats));

  // Evaluate each disjunct; with a pool, concurrently (the EDB is
  // read-only and the budget's counters are atomic). Merging happens
  // below in disjunct order either way, so serial and parallel runs
  // produce the same tuple list; only the point at which a shared-budget
  // trip lands can differ (the result stays a sound subset).
  struct DisjunctResult {
    std::vector<std::vector<Term>> tuples;
    Status status = Status::Ok();        // hard evaluation error
    Status interruption = Status::Ok();  // budget truncation
  };
  std::vector<DisjunctResult> parts(ucq.size());
  auto eval_one = [&](size_t i) {
    CqEvaluator eval(edb, nullptr, options.budget);
    Result<std::vector<std::vector<Term>>> r =
        eval.Answers(ucq[i], &parts[i].interruption);
    if (r.ok()) {
      parts[i].tuples = std::move(*r);
    } else {
      parts[i].status = r.status();
    }
  };
  if (options.pool != nullptr && ucq.size() > 1) {
    options.pool->ParallelFor(ucq.size(), eval_one);
  }

  std::vector<std::vector<Term>> out;
  for (size_t i = 0; i < ucq.size(); ++i) {
    if (options.pool == nullptr || ucq.size() <= 1) eval_one(i);
    MDQA_RETURN_IF_ERROR(parts[i].status);
    for (std::vector<Term>& t : parts[i].tuples) {
      if (CqEvaluator::HasNull(t)) continue;
      if (std::find(out.begin(), out.end(), t) == out.end()) {
        out.push_back(std::move(t));
      }
    }
    if (!parts[i].interruption.ok()) {
      // Answers found so far (across the disjuncts merged so far) stand.
      stats->completeness = Completeness::kTruncated;
      if (stats->interruption.ok()) {
        stats->interruption = std::move(parts[i].interruption);
      }
      break;
    }
  }
  return out;
}

}  // namespace mdqa::qa
