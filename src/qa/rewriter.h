#ifndef MDQA_QA_REWRITER_H_
#define MDQA_QA_REWRITER_H_

#include <vector>

#include "base/budget.h"
#include "base/result.h"
#include "base/thread_pool.h"
#include "datalog/cq_eval.h"
#include "datalog/instance.h"

namespace mdqa::qa {

struct RewriteOptions {
  /// Caps on the generated UCQ and on rewrite iterations; exceeding either
  /// fails with kResourceExhausted (the input was not FO-rewritable in
  /// budget — e.g. a recursive rule set).
  size_t max_queries = 20'000;
  size_t max_iterations = 100'000;
  /// When non-null, the rewriting loop polls this budget (probe
  /// "rewrite:iter") and evaluation polls it per row. A budget trip stops
  /// the rewriting *gracefully*: the UCQ built so far is returned with
  /// `RewriteStats::completeness == kTruncated` — every disjunct is
  /// individually sound, so evaluating the partial UCQ under-approximates
  /// the certain answers. The legacy caps above remain hard errors. Not
  /// owned.
  ExecutionBudget* budget = nullptr;
  /// When non-null, `Answers` evaluates the UCQ's disjuncts concurrently
  /// on this pool (the EDB is read-only) and merges the per-disjunct
  /// tuples in disjunct order, so the result is identical to the serial
  /// evaluation. Rewriting itself stays single-threaded (it is a shared
  /// worklist, and generation order fixes the disjunct order). Not owned.
  ThreadPool* pool = nullptr;
};

struct RewriteStats {
  size_t generated = 0;   ///< CQs produced (before dedup)
  size_t kept = 0;        ///< CQs in the final UCQ
  size_t iterations = 0;
  /// kTruncated when the budget cut rewriting (or evaluation) short.
  Completeness completeness = Completeness::kComplete;
  /// The budget status that interrupted the run (OK when complete).
  Status interruption;
};

/// Backward-chaining UCQ rewriting (PerfectRef/XRewrite style) for the
/// paper's §IV claim: *upward-only* MD ontologies admit first-order
/// rewritings evaluable directly on the extensional database. Starting
/// from the input CQ, every atom unifiable with a TGD head is replaced by
/// the TGD body under the unifier, subject to the standard applicability
/// condition: a term unified with an existential head variable must be a
/// non-answer, non-shared variable (otherwise the resolution cannot be
/// sound). A factorization step merges unifiable same-predicate atoms to
/// keep the procedure complete in the presence of existentials. Results
/// are canonicalized and deduplicated.
///
/// The procedure works for any TGD set with single-atom heads; it simply
/// may not terminate within budget when the program is recursive — which
/// is why the ontology layer gates it on `OntologyProperties::upward_only`
/// (upward navigation strictly descends the finite category DAG, so the
/// rewriting terminates).
class UcqRewriter {
 public:
  /// Rewrites `query` against `program`'s TGDs into a UCQ over the
  /// extensional predicates.
  static Result<std::vector<datalog::ConjunctiveQuery>> Rewrite(
      const datalog::Program& program, const datalog::ConjunctiveQuery& query,
      const RewriteOptions& options, RewriteStats* stats);

  static Result<std::vector<datalog::ConjunctiveQuery>> Rewrite(
      const datalog::Program& program,
      const datalog::ConjunctiveQuery& query) {
    RewriteStats stats;
    return Rewrite(program, query, RewriteOptions{}, &stats);
  }

  /// Rewrites and evaluates over `edb` (which must NOT be chased —
  /// that is the point), returning certain answers. A non-null `stats`
  /// receives the rewrite statistics including the completeness tag.
  static Result<std::vector<std::vector<datalog::Term>>> Answers(
      const datalog::Program& program, const datalog::Instance& edb,
      const datalog::ConjunctiveQuery& query,
      const RewriteOptions& options = RewriteOptions(),
      RewriteStats* stats = nullptr);
};

}  // namespace mdqa::qa

#endif  // MDQA_QA_REWRITER_H_
