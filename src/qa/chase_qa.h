#ifndef MDQA_QA_CHASE_QA_H_
#define MDQA_QA_CHASE_QA_H_

#include <vector>

#include "base/result.h"
#include "datalog/chase.h"
#include "datalog/cq_eval.h"

namespace mdqa::qa {

/// Materialization-based certain-answer engine: runs the (restricted,
/// possibly level-bounded) chase of the program over its extensional data
/// once, then evaluates conjunctive queries against the chased instance.
/// Certain answers are the null-free tuples — sound and, for weakly-sticky
/// programs chased deep enough for the query at hand, complete (the paper's
/// §IV tractability claim; `ChaseOptions::max_rounds` is the level bound).
class ChaseQa {
 public:
  /// A `ChaseOptions::budget` trip during materialization yields a
  /// *usable* engine over the partial (sound) instance; inspect
  /// `stats().completeness` to see whether the chase was truncated.
  static Result<ChaseQa> Create(
      const datalog::Program& program,
      const datalog::ChaseOptions& options = datalog::ChaseOptions());

  /// Adopts an already-materialized chase result instead of running one —
  /// the checkpoint-restore path (storage/session_image.h): the instance
  /// was rebuilt from a persisted image of a completed chase over exactly
  /// this program's extensional facts, and `stats` are the stats of that
  /// original run (with the frontier regenerated against the rebuilt
  /// instance). Validates the wiring it can see: the instance must share
  /// the program's vocabulary, and a valid frontier must match the
  /// instance's generation — everything deeper is the caller's contract,
  /// enforced end-to-end by the crash matrix's oracle byte-compare.
  static Result<ChaseQa> Adopt(datalog::Program program,
                               const datalog::ChaseOptions& options,
                               datalog::Instance instance,
                               datalog::ChaseStats stats);

  /// Adds new extensional facts and re-chases the existing materialized
  /// instance (facts already derived are kept; the restricted chase
  /// skips satisfied heads, so only consequences of the new facts are
  /// actually computed). The common data-quality workflow: today's
  /// measurements arrive, yesterday's materialization stays warm.
  Result<datalog::ChaseStats> AddFactsAndRechase(
      const std::vector<datalog::Atom>& facts);

  /// Incremental counterpart of AddFactsAndRechase: resumes the chase
  /// from the frontier captured by the last materialization
  /// (`Chase::Extend`) instead of re-running it. Exact — programs the
  /// incremental path cannot maintain fall back to a full re-chase,
  /// recorded in the returned stats (`extend_fallback`). The new facts
  /// are also appended to the engine's program so fallbacks (now or on a
  /// later update) re-base on the complete extensional set.
  /// kFailedPrecondition when the last chase was truncated (no frontier).
  Result<datalog::ChaseStats> Extend(const std::vector<datalog::Atom>& facts);

  /// General update: `inserts` and `deletes` of extensional facts. With
  /// no deletions this is `Extend`. Deletions are non-monotone, so they
  /// rebuild the extensional set and re-chase from scratch — an exact
  /// result, recorded as a fallback in the returned stats. Each deleted
  /// atom must currently be an extensional fact (kNotFound otherwise).
  Result<datalog::ChaseStats> Update(const std::vector<datalog::Atom>& inserts,
                                     const std::vector<datalog::Atom>& deletes);

  /// Certain answers: null-free tuples only. A non-null `budget` bounds
  /// the query evaluation itself (probe "cq:row"); on a budget trip the
  /// answers found so far are returned and the truncation status is
  /// stored in `*interruption` (which must be non-null iff `budget` is).
  Result<std::vector<std::vector<datalog::Term>>> Answers(
      const datalog::ConjunctiveQuery& query,
      ExecutionBudget* budget = nullptr,
      Status* interruption = nullptr) const;

  /// All homomorphic answers, including tuples with labeled nulls
  /// (the "possible answers" view used for form-(10) disjunctive data).
  Result<std::vector<std::vector<datalog::Term>>> PossibleAnswers(
      const datalog::ConjunctiveQuery& query,
      ExecutionBudget* budget = nullptr,
      Status* interruption = nullptr) const;

  Result<bool> AnswerBoolean(const datalog::ConjunctiveQuery& query,
                             ExecutionBudget* budget = nullptr,
                             Status* interruption = nullptr) const;

  const datalog::Instance& instance() const { return instance_; }
  const datalog::ChaseStats& stats() const { return stats_; }
  /// The engine's program — rules as given, extensional facts kept in
  /// sync with every applied update (Extend appends, Update rebuilds).
  const datalog::Program& program() const { return program_; }

 private:
  ChaseQa(datalog::Program program, datalog::ChaseOptions options,
          datalog::Instance instance, datalog::ChaseStats stats)
      : program_(std::move(program)),
        options_(options),
        instance_(std::move(instance)),
        stats_(stats) {}

  datalog::Program program_;  // kept for incremental re-chasing
  datalog::ChaseOptions options_;
  datalog::Instance instance_;
  datalog::ChaseStats stats_;
};

}  // namespace mdqa::qa

#endif  // MDQA_QA_CHASE_QA_H_
