#include "scenarios/synthetic.h"

#include <string>

#include "md/categorical.h"
#include "md/dimension.h"

namespace mdqa::scenarios {

using md::CategoricalAttribute;
using md::CategoricalRelation;
using md::Dimension;
using md::DimensionBuilder;

namespace {

// Deterministic ward assignment; no global randomness (benchmarks must be
// reproducible run to run).
struct Lcg {
  uint64_t state;
  uint64_t Next() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  }
};

std::string WardName(int i) { return "sw" + std::to_string(i); }
std::string UnitName(int i) { return "su" + std::to_string(i); }
std::string InstName(int i) { return "si" + std::to_string(i); }
std::string DayName(int i) { return "sd" + std::to_string(i); }
std::string TimeName(int i) { return "st" + std::to_string(i); }
std::string PatientName(int i) { return "sp" + std::to_string(i); }
std::string NurseName(int i) { return "sn" + std::to_string(i); }

}  // namespace

size_t EstimateFacts(const SyntheticSpec& spec) {
  const size_t wards = static_cast<size_t>(spec.institutions) *
                       spec.units_per_institution * spec.wards_per_unit;
  const size_t units =
      static_cast<size_t>(spec.institutions) * spec.units_per_institution;
  const size_t pd = static_cast<size_t>(spec.patients) * spec.days;
  return wards * 2 + units * 2 + pd /*SPatientWard*/ +
         units * spec.days /*SWorkingSchedules*/ + wards /*SThermometer*/ +
         spec.days * 2 /*time*/ + pd /*SMeasurements*/;
}

Result<std::shared_ptr<core::MdOntology>> BuildSyntheticOntology(
    const SyntheticSpec& spec) {
  auto ontology = std::make_shared<core::MdOntology>();
  const int units_total = spec.institutions * spec.units_per_institution;
  const int wards_total = units_total * spec.wards_per_unit;

  {
    DimensionBuilder b("SynHospital");
    b.Category("SWard").Category("SUnit").Category("SInstitution")
        .Category("SAllHospital");
    b.Edge("SWard", "SUnit").Edge("SUnit", "SInstitution")
        .Edge("SInstitution", "SAllHospital");
    b.Member("SAllHospital", "sall");
    for (int i = 0; i < spec.institutions; ++i) {
      b.Member("SInstitution", InstName(i)).Link(InstName(i), "sall");
    }
    for (int u = 0; u < units_total; ++u) {
      b.Member("SUnit", UnitName(u))
          .Link(UnitName(u), InstName(u / spec.units_per_institution));
    }
    for (int w = 0; w < wards_total; ++w) {
      b.Member("SWard", WardName(w))
          .Link(WardName(w), UnitName(w / spec.wards_per_unit));
    }
    Dimension::Options opts;
    opts.require_strict = true;
    opts.require_homogeneous = true;
    MDQA_ASSIGN_OR_RETURN(Dimension d, b.Build(opts));
    MDQA_RETURN_IF_ERROR(ontology->AddDimension(std::move(d)));
  }
  {
    DimensionBuilder b("SynTime");
    b.Category("STime").Category("SDay").Category("SAllTime");
    b.Edge("STime", "SDay").Edge("SDay", "SAllTime");
    b.Member("SAllTime", "sallt");
    for (int d = 0; d < spec.days; ++d) {
      b.Member("SDay", DayName(d)).Link(DayName(d), "sallt");
      b.Member("STime", TimeName(d)).Link(TimeName(d), DayName(d));
    }
    Dimension::Options opts;
    opts.require_strict = true;
    opts.require_homogeneous = true;
    MDQA_ASSIGN_OR_RETURN(Dimension d, b.Build(opts));
    MDQA_RETURN_IF_ERROR(ontology->AddDimension(std::move(d)));
  }
  {
    DimensionBuilder b("SynInstrument");
    b.Category("SType").Category("SBrand").Category("SAllInstrument");
    b.Edge("SType", "SBrand").Edge("SBrand", "SAllInstrument");
    b.Member("SAllInstrument", "salli");
    b.Member("SBrand", "B1").Member("SBrand", "B2");
    b.Link("B1", "salli").Link("B2", "salli");
    b.Member("SType", "T1").Member("SType", "T3");
    b.Link("T1", "B1").Link("T3", "B2");
    Dimension::Options opts;
    opts.require_strict = true;
    opts.require_homogeneous = true;
    MDQA_ASSIGN_OR_RETURN(Dimension d, b.Build(opts));
    MDQA_RETURN_IF_ERROR(ontology->AddDimension(std::move(d)));
  }

  Lcg rng{spec.seed};

  {
    MDQA_ASSIGN_OR_RETURN(
        CategoricalRelation rel,
        CategoricalRelation::Create(
            "SPatientWard",
            {CategoricalAttribute::Categorical("Ward", "SynHospital", "SWard"),
             CategoricalAttribute::Categorical("Day", "SynTime", "SDay"),
             CategoricalAttribute::Plain("Patient")}));
    for (int p = 0; p < spec.patients; ++p) {
      // A patient stays in one ward for the whole horizon — realistic and
      // keeps the quality fraction stable across scales.
      int ward = static_cast<int>(rng.Next() % wards_total);
      for (int d = 0; d < spec.days; ++d) {
        MDQA_RETURN_IF_ERROR(
            rel.InsertText({WardName(ward), DayName(d), PatientName(p)}));
      }
    }
    MDQA_RETURN_IF_ERROR(ontology->AddCategoricalRelation(std::move(rel)));
  }
  {
    MDQA_ASSIGN_OR_RETURN(
        CategoricalRelation rel,
        CategoricalRelation::Create(
            "SPatientUnit",
            {CategoricalAttribute::Categorical("Unit", "SynHospital", "SUnit"),
             CategoricalAttribute::Categorical("Day", "SynTime", "SDay"),
             CategoricalAttribute::Plain("Patient")}));
    MDQA_RETURN_IF_ERROR(ontology->AddCategoricalRelation(std::move(rel)));
  }
  {
    MDQA_ASSIGN_OR_RETURN(
        CategoricalRelation rel,
        CategoricalRelation::Create(
            "SWorkingSchedules",
            {CategoricalAttribute::Categorical("Unit", "SynHospital", "SUnit"),
             CategoricalAttribute::Categorical("Day", "SynTime", "SDay"),
             CategoricalAttribute::Plain("Nurse"),
             CategoricalAttribute::Plain("Type")}));
    for (int u = 0; u < units_total; ++u) {
      for (int d = 0; d < spec.days; ++d) {
        // Even units are staffed by certified nurses.
        const char* type = (u % 2 == 0) ? "cert." : "non-c.";
        MDQA_RETURN_IF_ERROR(rel.InsertText(
            {UnitName(u), DayName(d), NurseName(u), type}));
      }
    }
    MDQA_RETURN_IF_ERROR(ontology->AddCategoricalRelation(std::move(rel)));
  }
  {
    MDQA_ASSIGN_OR_RETURN(
        CategoricalRelation rel,
        CategoricalRelation::Create(
            "SShifts",
            {CategoricalAttribute::Categorical("Ward", "SynHospital", "SWard"),
             CategoricalAttribute::Categorical("Day", "SynTime", "SDay"),
             CategoricalAttribute::Plain("Nurse"),
             CategoricalAttribute::Plain("Shift")}));
    MDQA_RETURN_IF_ERROR(ontology->AddCategoricalRelation(std::move(rel)));
  }
  {
    MDQA_ASSIGN_OR_RETURN(
        CategoricalRelation rel,
        CategoricalRelation::Create(
            "SThermometer",
            {CategoricalAttribute::Categorical("Ward", "SynHospital", "SWard"),
             CategoricalAttribute::Categorical("Type", "SynInstrument",
                                               "SType"),
             CategoricalAttribute::Plain("Nurse")}));
    for (int w = 0; w < wards_total; ++w) {
      // Whole units share a type so EGD (6)'s analogue stays satisfiable.
      const char* type = ((w / spec.wards_per_unit) % 2 == 0) ? "T1" : "T3";
      MDQA_RETURN_IF_ERROR(rel.InsertText(
          {WardName(w), type, NurseName(w / spec.wards_per_unit)}));
    }
    MDQA_RETURN_IF_ERROR(ontology->AddCategoricalRelation(std::move(rel)));
  }

  MDQA_RETURN_IF_ERROR(ontology->AddDimensionalRule(
      "SPatientUnit(U, D, P) :- SPatientWard(W, D, P), SUnitSWard(U, W)."));
  if (spec.include_downward_rules) {
    MDQA_RETURN_IF_ERROR(ontology->AddDimensionalRule(
        "SShifts(W, D, N, Z) :- SWorkingSchedules(U, D, N, T), "
        "SUnitSWard(U, W)."));
  }
  // EGD analogue of (6): per-unit thermometer type uniqueness.
  MDQA_RETURN_IF_ERROR(ontology->AddDimensionalConstraint(
      "T = T2 :- SThermometer(W, T, N), SThermometer(W2, T2, N2), "
      "SUnitSWard(U, W), SUnitSWard(U, W2)."));
  return ontology;
}

Result<quality::QualityContext> BuildSyntheticContext(
    const SyntheticSpec& spec) {
  MDQA_ASSIGN_OR_RETURN(std::shared_ptr<core::MdOntology> ontology,
                        BuildSyntheticOntology(spec));
  quality::QualityContext context(ontology);

  Database db;
  MDQA_ASSIGN_OR_RETURN(
      RelationSchema schema,
      RelationSchema::Create("SMeasurements",
                             std::vector<std::string>{"Time", "Patient",
                                                      "Value"}));
  MDQA_RETURN_IF_ERROR(db.AddRelation(std::move(schema)));
  for (int p = 0; p < spec.patients; ++p) {
    for (int d = 0; d < spec.days; ++d) {
      double value = 36.0 + (p * 7 + d * 3) % 30 / 10.0;
      MDQA_RETURN_IF_ERROR(db.InsertText(
          "SMeasurements",
          {TimeName(d), PatientName(p), std::to_string(value)}));
    }
  }
  MDQA_RETURN_IF_ERROR(context.SetDatabase(std::move(db)));
  MDQA_RETURN_IF_ERROR(
      context.MapRelationToContext("SMeasurements", "SMeasurementc"));
  // Quality: certified nurse (via upward navigation into SPatientUnit)
  // and a brand-B1 thermometer (via roll-up through SynInstrument).
  MDQA_RETURN_IF_ERROR(context.AddContextualRules(
      "STakenByNurse(T, P, N, Y) :- SWorkingSchedules(U, D, N, Y), "
      "SDaySTime(D, T), SPatientUnit(U, D, P).\n"
      "STakenWithTherm(T, P, B) :- SPatientWard(W, D, P), "
      "SThermometer(W, Ty, N), SBrandSType(B, Ty), SDaySTime(D, T).\n"
      "SMeasurementp(T, P, V, Y, B) :- SMeasurementc(T, P, V), "
      "STakenByNurse(T, P, N, Y), STakenWithTherm(T, P, B).\n"));
  MDQA_RETURN_IF_ERROR(context.DefineQualityVersion(
      "SMeasurements", "SMeasurementsq",
      "SMeasurementsq(T, P, V) :- "
      "SMeasurementp(T, P, V, \"cert.\", \"B1\").\n"));
  return context;
}

}  // namespace mdqa::scenarios
