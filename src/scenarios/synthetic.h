#ifndef MDQA_SCENARIOS_SYNTHETIC_H_
#define MDQA_SCENARIOS_SYNTHETIC_H_

#include <cstdint>
#include <memory>

#include "base/result.h"
#include "core/md_ontology.h"
#include "quality/context.h"

namespace mdqa::scenarios {

/// Parametric generator that grows the paper's hospital schema for the
/// scaling experiments (EXPERIMENTS.md C2–C4): the authors' testbed is
/// not available (the paper reports no measurements at all), so
/// polynomial-shape claims are exercised on synthetic instances with the
/// same dimensional structure.
///
/// Dimension SynHospital: SWard → SUnit → SInstitution → SAll, with
/// `institutions × units_per_institution × wards_per_unit` wards.
/// Dimension SynTime: STime → SDay → SAll2 with one instant per day.
/// Dimension SynInstrument: SType → SBrand → SAll3 (T1→B1, T3→B2).
/// Categorical relations: SPatientWard (patients × days), SPatientUnit
/// (virtual), SWorkingSchedules (units × days), SShifts (virtual),
/// SThermometer (one type per ward, alternating brands).
/// Rules: upward (7'-analog); optional downward (8'-analog).
/// Quality context: SMeasurements (patients × days rows); quality
/// version = certified nurse + brand-B1 thermometer, via roll-up through
/// SynInstrument.
struct SyntheticSpec {
  int institutions = 2;
  int units_per_institution = 3;
  int wards_per_unit = 3;
  int patients = 20;
  int days = 10;
  bool include_downward_rules = true;
  uint64_t seed = 42;  ///< deterministic LCG seed for ward assignment
};

/// Approximate extensional fact count the spec will generate (for
/// reporting x-axes).
size_t EstimateFacts(const SyntheticSpec& spec);

Result<std::shared_ptr<core::MdOntology>> BuildSyntheticOntology(
    const SyntheticSpec& spec);

Result<quality::QualityContext> BuildSyntheticContext(
    const SyntheticSpec& spec);

}  // namespace mdqa::scenarios

#endif  // MDQA_SCENARIOS_SYNTHETIC_H_
