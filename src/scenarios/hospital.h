#ifndef MDQA_SCENARIOS_HOSPITAL_H_
#define MDQA_SCENARIOS_HOSPITAL_H_

#include <memory>

#include "base/result.h"
#include "core/md_ontology.h"
#include "quality/context.h"

namespace mdqa::scenarios {

/// The paper's running example (Examples 1–7, Tables I–V, Fig. 1),
/// assembled faithfully. Data the paper only shows pictorially
/// (PatientWard, thermometers) is synthesized per DESIGN.md §3 so that
/// Table II reproduces exactly.
///
/// Dimensions:
///   Hospital:   Ward → Unit → Institution → AllHospital
///   Time:       Time → Day → Month → Year → AllTime
///   Instrument: Thermometertype → Brand → AllInstrument
/// Categorical relations: PatientWard, PatientUnit (virtual),
///   WorkingSchedules, Shifts, Thermometer, DischargePatients.
/// Σ_M: rules (7) upward, (8) downward w/ existential shift, (9) form-(10)
///   disjunctive downward; EGD (6); the Intensive/August-2005 NC.
struct HospitalOptions {
  /// Rule (8) (Shifts drill-down) and rule (9) (DischargePatients,
  /// form (10)). Disable to obtain the upward-only ontology of §IV whose
  /// queries are FO-rewritable.
  bool include_downward_rules = true;
  /// EGD (6) and the Intensive-care negative constraint.
  bool include_constraints = true;
  /// Adds the PatientWard tuple (W3, Aug/20, Elvis Costello) that violates
  /// the Intensive/August-2005 constraint — the paper's "third tuple ...
  /// should be discarded" scenario (E3).
  bool include_violating_stay = false;
  /// Adds Thermometer(W2, T2, Nancy), breaking EGD (6) with a
  /// constant/constant clash (E5).
  bool include_therm_conflict = false;
};

/// Builds the ontology M of the hospital scenario.
Result<std::shared_ptr<core::MdOntology>> BuildHospitalOntology(
    const HospitalOptions& options);

/// Table I, exactly.
Result<Database> BuildMeasurementsDatabase();

/// The full Fig. 2 context: ontology + Measurements + the contextual
/// predicates of Example 7 (TakenByNurse, TakenWithTherm) + the quality
/// version `Measurementsq` ("certified nurse, brand-B1 thermometer").
Result<quality::QualityContext> BuildHospitalContext(
    const HospitalOptions& options);

}  // namespace mdqa::scenarios

#endif  // MDQA_SCENARIOS_HOSPITAL_H_
