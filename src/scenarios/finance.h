#ifndef MDQA_SCENARIOS_FINANCE_H_
#define MDQA_SCENARIOS_FINANCE_H_

#include <memory>

#include "base/result.h"
#include "core/md_ontology.h"
#include "quality/context.h"

namespace mdqa::scenarios {

/// A second complete domain (banking transaction audit), exercising
/// parts of the framework the hospital scenario does not:
///
///  * a **footprint mapping** (paper footnote 4): `Transactions(Time,
///    Account, Amount)` is the footprint of a broader contextual
///    relation `TransactionWide(..., Terminal)` whose terminal attribute
///    is unknown (a labeled null) until a contextual **EGD** equates it
///    with the terminal log;
///  * a **downward dimensional rule without existentials** (schemas
///    match): a region-level audit covers every branch of the region;
///  * **inter-dimensional categorical relations** (Org × Channel ×
///    CalTime).
///
/// Dimensions:
///   Org:     Branch → Region → Country → AllOrg
///            (b1, b2 in east; b3 in west; CA)
///   Channel: Terminal → ChannelType → AllChannel
///            (t1@ATM, t2@ATM, t3@Online)
///   CalTime: Time → Day → Month → Year → AllCalTime (built via
///            md::BuildTimeDimension, March 2026)
///
/// Quality requirement: a transaction is a quality tuple when its
/// (log-resolved) terminal sits at a branch whose region was audited on
/// the transaction's day. Expected: rows 1–2 of the 4-row Transactions
/// table qualify (precision 0.5).
struct FinanceOptions {
  /// Adds FraudAlert(t2, Mar/1) and the NC "no logged activity on an
  /// alerted terminal that day" — the dirty variant.
  bool include_fraud_alert = false;
};

Result<std::shared_ptr<core::MdOntology>> BuildFinanceOntology(
    const FinanceOptions& options);

/// The 4-row Transactions table (see header comment).
Result<Database> BuildTransactionsDatabase();

/// The full quality context: footprint mapping, terminal-log EGD,
/// contextual join, quality version `Transactionsq`.
Result<quality::QualityContext> BuildFinanceContext(
    const FinanceOptions& options);

}  // namespace mdqa::scenarios

#endif  // MDQA_SCENARIOS_FINANCE_H_
