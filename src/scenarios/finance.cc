#include "scenarios/finance.h"

#include "md/categorical.h"
#include "md/dimension.h"
#include "md/time_util.h"

namespace mdqa::scenarios {

using md::CategoricalAttribute;
using md::CategoricalRelation;
using md::Dimension;
using md::DimensionBuilder;

namespace {

Result<Dimension> BuildOrgDimension() {
  DimensionBuilder b("Org");
  b.Category("Branch").Category("Region").Category("Country")
      .Category("AllOrg");
  b.Edge("Branch", "Region").Edge("Region", "Country")
      .Edge("Country", "AllOrg");
  for (const char* br : {"b1", "b2", "b3"}) b.Member("Branch", br);
  b.Member("Region", "east").Member("Region", "west");
  b.Member("Country", "CA").Member("AllOrg", "allOrg");
  b.Link("b1", "east").Link("b2", "east").Link("b3", "west");
  b.Link("east", "CA").Link("west", "CA").Link("CA", "allOrg");
  Dimension::Options opts;
  opts.require_strict = true;
  opts.require_homogeneous = true;
  return b.Build(opts);
}

Result<Dimension> BuildChannelDimension() {
  DimensionBuilder b("Channel");
  b.Category("Terminal").Category("ChannelType").Category("AllChannel");
  b.Edge("Terminal", "ChannelType").Edge("ChannelType", "AllChannel");
  for (const char* t : {"t1", "t2", "t3"}) b.Member("Terminal", t);
  b.Member("ChannelType", "ATM").Member("ChannelType", "Online");
  b.Member("AllChannel", "allChannel");
  b.Link("t1", "ATM").Link("t2", "ATM").Link("t3", "Online");
  b.Link("ATM", "allChannel").Link("Online", "allChannel");
  Dimension::Options opts;
  opts.require_strict = true;
  opts.require_homogeneous = true;
  return b.Build(opts);
}

Result<Dimension> BuildCalTimeDimension() {
  return md::BuildTimeDimension(
      "CalTime", 2026, {"Mar/1", "Mar/2"},
      {"Mar/1-10:00", "Mar/1-11:00", "Mar/2-09:30", "Mar/2-14:00"});
}

}  // namespace

Result<std::shared_ptr<core::MdOntology>> BuildFinanceOntology(
    const FinanceOptions& options) {
  auto ontology = std::make_shared<core::MdOntology>();
  MDQA_ASSIGN_OR_RETURN(Dimension org, BuildOrgDimension());
  MDQA_RETURN_IF_ERROR(ontology->AddDimension(std::move(org)));
  MDQA_ASSIGN_OR_RETURN(Dimension channel, BuildChannelDimension());
  MDQA_RETURN_IF_ERROR(ontology->AddDimension(std::move(channel)));
  MDQA_ASSIGN_OR_RETURN(Dimension cal, BuildCalTimeDimension());
  MDQA_RETURN_IF_ERROR(ontology->AddDimension(std::move(cal)));

  {
    // Which terminal stands in which branch (Org × Channel).
    MDQA_ASSIGN_OR_RETURN(
        CategoricalRelation rel,
        CategoricalRelation::Create(
            "TerminalAtBranch",
            {CategoricalAttribute::Categorical("Branch", "Org", "Branch"),
             CategoricalAttribute::Categorical("Terminal", "Channel",
                                               "Terminal")}));
    MDQA_RETURN_IF_ERROR(rel.InsertText({"b1", "t1"}));
    MDQA_RETURN_IF_ERROR(rel.InsertText({"b2", "t2"}));
    MDQA_RETURN_IF_ERROR(rel.InsertText({"b3", "t3"}));
    MDQA_RETURN_IF_ERROR(ontology->AddCategoricalRelation(std::move(rel)));
  }
  {
    // The terminal log: which terminal served each instant. The fourth
    // transaction instant (Mar/2-14:00) is intentionally unlogged.
    MDQA_ASSIGN_OR_RETURN(
        CategoricalRelation rel,
        CategoricalRelation::Create(
            "TerminalLog",
            {CategoricalAttribute::Categorical("TxTime", "CalTime", "Time"),
             CategoricalAttribute::Categorical("Terminal", "Channel",
                                               "Terminal")}));
    MDQA_RETURN_IF_ERROR(rel.InsertText({"Mar/1-10:00", "t1"}));
    MDQA_RETURN_IF_ERROR(rel.InsertText({"Mar/1-11:00", "t2"}));
    MDQA_RETURN_IF_ERROR(rel.InsertText({"Mar/2-09:30", "t3"}));
    MDQA_RETURN_IF_ERROR(ontology->AddCategoricalRelation(std::move(rel)));
  }
  {
    // Region-level audits; only east on Mar/1.
    MDQA_ASSIGN_OR_RETURN(
        CategoricalRelation rel,
        CategoricalRelation::Create(
            "RegionAudit",
            {CategoricalAttribute::Categorical("Region", "Org", "Region"),
             CategoricalAttribute::Categorical("Day", "CalTime", "Day"),
             CategoricalAttribute::Plain("Auditor")}));
    MDQA_RETURN_IF_ERROR(rel.InsertText({"east", "Mar/1", "alice"}));
    MDQA_RETURN_IF_ERROR(ontology->AddCategoricalRelation(std::move(rel)));
  }
  {
    // Virtual branch-level audit coverage, filled by drill-down.
    MDQA_ASSIGN_OR_RETURN(
        CategoricalRelation rel,
        CategoricalRelation::Create(
            "BranchAudited",
            {CategoricalAttribute::Categorical("Branch", "Org", "Branch"),
             CategoricalAttribute::Categorical("Day", "CalTime", "Day"),
             CategoricalAttribute::Plain("Auditor")}));
    MDQA_RETURN_IF_ERROR(ontology->AddCategoricalRelation(std::move(rel)));
  }
  if (options.include_fraud_alert) {
    MDQA_ASSIGN_OR_RETURN(
        CategoricalRelation rel,
        CategoricalRelation::Create(
            "FraudAlert",
            {CategoricalAttribute::Categorical("Terminal", "Channel",
                                               "Terminal"),
             CategoricalAttribute::Categorical("Day", "CalTime", "Day")}));
    MDQA_RETURN_IF_ERROR(rel.InsertText({"t2", "Mar/1"}));
    MDQA_RETURN_IF_ERROR(ontology->AddCategoricalRelation(std::move(rel)));
  }

  // Downward navigation WITHOUT existentials (schemas match): an audited
  // region means every branch of that region was audited that day.
  MDQA_RETURN_IF_ERROR(ontology->AddDimensionalRule(
      "BranchAudited(B, D, A) :- RegionAudit(R, D, A), RegionBranch(R, B)."));

  if (options.include_fraud_alert) {
    // No logged terminal activity on an alerted terminal that day.
    MDQA_RETURN_IF_ERROR(ontology->AddDimensionalConstraint(
        "! :- FraudAlert(Tl, D), TerminalLog(Ti, Tl), DayTime(D, Ti)."));
  }
  return ontology;
}

Result<Database> BuildTransactionsDatabase() {
  Database db;
  MDQA_ASSIGN_OR_RETURN(
      RelationSchema schema,
      RelationSchema::Create("Transactions",
                             std::vector<std::string>{"TxTime", "Account",
                                                      "Amount"}));
  MDQA_RETURN_IF_ERROR(db.AddRelation(std::move(schema)));
  MDQA_RETURN_IF_ERROR(
      db.InsertText("Transactions", {"Mar/1-10:00", "acc1", "500"}));
  MDQA_RETURN_IF_ERROR(
      db.InsertText("Transactions", {"Mar/1-11:00", "acc2", "75"}));
  MDQA_RETURN_IF_ERROR(
      db.InsertText("Transactions", {"Mar/2-09:30", "acc1", "120"}));
  MDQA_RETURN_IF_ERROR(
      db.InsertText("Transactions", {"Mar/2-14:00", "acc3", "60"}));
  return db;
}

Result<quality::QualityContext> BuildFinanceContext(
    const FinanceOptions& options) {
  MDQA_ASSIGN_OR_RETURN(std::shared_ptr<core::MdOntology> ontology,
                        BuildFinanceOntology(options));
  quality::QualityContext context(ontology);
  MDQA_ASSIGN_OR_RETURN(Database db, BuildTransactionsDatabase());
  MDQA_RETURN_IF_ERROR(context.SetDatabase(std::move(db)));

  // Footprint: the context knows transactions have a terminal, the
  // original table does not record it.
  MDQA_RETURN_IF_ERROR(context.MapRelationAsFootprint(
      "Transactions", "TransactionWide", /*extra_attributes=*/1));
  // The terminal log pins the invented null down (EGD).
  MDQA_RETURN_IF_ERROR(context.AddContextualRules(
      "Tl = T2 :- TransactionWide(Ti, Ac, Am, Tl), TerminalLog(Ti, T2).\n"
      "TxnAt(Ti, Ac, Am, B, D) :- TransactionWide(Ti, Ac, Am, Tl), "
      "TerminalAtBranch(B, Tl), DayTime(D, Ti).\n"));
  MDQA_RETURN_IF_ERROR(context.DefineQualityVersion(
      "Transactions", "Transactionsq",
      "Transactionsq(Ti, Ac, Am) :- TxnAt(Ti, Ac, Am, B, D), "
      "BranchAudited(B, D, A).\n"));
  return context;
}

}  // namespace mdqa::scenarios
