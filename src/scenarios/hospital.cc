#include "scenarios/hospital.h"

#include "md/categorical.h"
#include "md/time_util.h"
#include "md/dimension.h"

namespace mdqa::scenarios {

using md::CategoricalAttribute;
using md::CategoricalRelation;
using md::Dimension;
using md::DimensionBuilder;

namespace {

Result<Dimension> BuildHospitalDimension() {
  DimensionBuilder b("Hospital");
  b.Category("Ward").Category("Unit").Category("Institution")
      .Category("AllHospital");
  b.Edge("Ward", "Unit").Edge("Unit", "Institution")
      .Edge("Institution", "AllHospital");
  for (const char* w : {"W1", "W2", "W3", "W4", "W5"}) b.Member("Ward", w);
  for (const char* u : {"Standard", "Intensive", "Terminal", "DayCare"}) {
    b.Member("Unit", u);
  }
  b.Member("Institution", "H1").Member("Institution", "H2");
  b.Member("AllHospital", "allHospital");
  b.Link("W1", "Standard").Link("W2", "Standard").Link("W3", "Intensive");
  b.Link("W4", "Terminal").Link("W5", "DayCare");
  b.Link("Standard", "H1").Link("Intensive", "H1").Link("Terminal", "H1");
  b.Link("DayCare", "H2");
  b.Link("H1", "allHospital").Link("H2", "allHospital");
  Dimension::Options opts;
  opts.require_strict = true;
  opts.require_homogeneous = true;
  return b.Build(opts);
}

Result<Dimension> BuildPaperTimeDimension() {
  // Generated from labels via md::BuildTimeDimension: Time -> Day ->
  // Month -> Year -> AllTime, with the paper's days and Table I's
  // instants (plus the doctor's window endpoints, so range queries have
  // members).
  return md::BuildTimeDimension(
      "Time", 2005,
      {"Sep/5", "Sep/6", "Sep/7", "Sep/8", "Sep/9", "Oct/5", "Aug/20"},
      {"Sep/5-12:10", "Sep/6-11:50", "Sep/7-12:15", "Sep/9-12:00",
       "Sep/6-11:05", "Sep/5-12:05", "Sep/5-11:45", "Sep/5-12:15"});
}

Result<Dimension> BuildInstrumentDimension() {
  DimensionBuilder b("Instrument");
  b.Category("Thermometertype").Category("Brand").Category("AllInstrument");
  b.Edge("Thermometertype", "Brand").Edge("Brand", "AllInstrument");
  for (const char* t : {"T1", "T2", "T3"}) b.Member("Thermometertype", t);
  b.Member("Brand", "B1").Member("Brand", "B2");
  b.Member("AllInstrument", "allInstrument");
  b.Link("T1", "B1").Link("T2", "B1").Link("T3", "B2");
  b.Link("B1", "allInstrument").Link("B2", "allInstrument");
  Dimension::Options opts;
  opts.require_strict = true;
  opts.require_homogeneous = true;
  return b.Build(opts);
}

Result<CategoricalRelation> BuildPatientWard(bool include_violating_stay) {
  MDQA_ASSIGN_OR_RETURN(
      CategoricalRelation rel,
      CategoricalRelation::Create(
          "PatientWard",
          {CategoricalAttribute::Categorical("Ward", "Hospital", "Ward"),
           CategoricalAttribute::Categorical("Day", "Time", "Day"),
           CategoricalAttribute::Plain("Patient")}));
  // Synthesized per DESIGN.md: exactly Table I rows 1-2 end up quality.
  MDQA_RETURN_IF_ERROR(rel.InsertText({"W1", "Sep/5", "Tom Waits"}));
  MDQA_RETURN_IF_ERROR(rel.InsertText({"W1", "Sep/6", "Tom Waits"}));
  MDQA_RETURN_IF_ERROR(rel.InsertText({"W3", "Sep/7", "Tom Waits"}));
  MDQA_RETURN_IF_ERROR(rel.InsertText({"W4", "Sep/9", "Tom Waits"}));
  MDQA_RETURN_IF_ERROR(rel.InsertText({"W4", "Sep/5", "Lou Reed"}));
  MDQA_RETURN_IF_ERROR(rel.InsertText({"W4", "Sep/6", "Lou Reed"}));
  if (include_violating_stay) {
    // Intensive-care stay recorded for August/2005 — the E3 violation.
    MDQA_RETURN_IF_ERROR(rel.InsertText({"W3", "Aug/20", "Elvis Costello"}));
  }
  return rel;
}

Result<CategoricalRelation> BuildPatientUnit() {
  // Virtual relation at the Unit level, populated by rules (7)/(9).
  return CategoricalRelation::Create(
      "PatientUnit",
      {CategoricalAttribute::Categorical("Unit", "Hospital", "Unit"),
       CategoricalAttribute::Categorical("Day", "Time", "Day"),
       CategoricalAttribute::Plain("Patient")});
}

Result<CategoricalRelation> BuildWorkingSchedules() {
  MDQA_ASSIGN_OR_RETURN(
      CategoricalRelation rel,
      CategoricalRelation::Create(
          "WorkingSchedules",
          {CategoricalAttribute::Categorical("Unit", "Hospital", "Unit"),
           CategoricalAttribute::Categorical("Day", "Time", "Day"),
           CategoricalAttribute::Plain("Nurse"),
           CategoricalAttribute::Plain("Type")}));
  // Table III, exactly.
  MDQA_RETURN_IF_ERROR(rel.InsertText({"Intensive", "Sep/5", "Cathy", "cert."}));
  MDQA_RETURN_IF_ERROR(rel.InsertText({"Standard", "Sep/5", "Helen", "cert."}));
  MDQA_RETURN_IF_ERROR(rel.InsertText({"Standard", "Sep/6", "Helen", "cert."}));
  MDQA_RETURN_IF_ERROR(rel.InsertText({"Terminal", "Sep/5", "Susan", "non-c."}));
  MDQA_RETURN_IF_ERROR(rel.InsertText({"Standard", "Sep/9", "Mark", "non-c."}));
  return rel;
}

Result<CategoricalRelation> BuildShifts() {
  MDQA_ASSIGN_OR_RETURN(
      CategoricalRelation rel,
      CategoricalRelation::Create(
          "Shifts",
          {CategoricalAttribute::Categorical("Ward", "Hospital", "Ward"),
           CategoricalAttribute::Categorical("Day", "Time", "Day"),
           CategoricalAttribute::Plain("Nurse"),
           CategoricalAttribute::Plain("Shift")}));
  // Table IV, exactly.
  MDQA_RETURN_IF_ERROR(rel.InsertText({"W4", "Sep/5", "Cathy", "night"}));
  MDQA_RETURN_IF_ERROR(rel.InsertText({"W1", "Sep/6", "Helen", "morning"}));
  MDQA_RETURN_IF_ERROR(rel.InsertText({"W4", "Sep/5", "Susan", "evening"}));
  return rel;
}

Result<CategoricalRelation> BuildThermometer(bool include_conflict) {
  MDQA_ASSIGN_OR_RETURN(
      CategoricalRelation rel,
      CategoricalRelation::Create(
          "Thermometer",
          {CategoricalAttribute::Categorical("Ward", "Hospital", "Ward"),
           CategoricalAttribute::Categorical("Type", "Instrument",
                                             "Thermometertype"),
           CategoricalAttribute::Plain("Nurse")}));
  MDQA_RETURN_IF_ERROR(rel.InsertText({"W1", "T1", "Helen"}));
  MDQA_RETURN_IF_ERROR(rel.InsertText({"W2", "T1", "Helen"}));
  MDQA_RETURN_IF_ERROR(rel.InsertText({"W3", "T3", "Cathy"}));
  MDQA_RETURN_IF_ERROR(rel.InsertText({"W4", "T3", "Susan"}));
  MDQA_RETURN_IF_ERROR(rel.InsertText({"W5", "T3", "Nancy"}));
  if (include_conflict) {
    // Same Standard unit as W1's T1 but a different type: EGD (6) clash.
    MDQA_RETURN_IF_ERROR(rel.InsertText({"W2", "T2", "Nancy"}));
  }
  return rel;
}

Result<CategoricalRelation> BuildDischargePatients() {
  MDQA_ASSIGN_OR_RETURN(
      CategoricalRelation rel,
      CategoricalRelation::Create(
          "DischargePatients",
          {CategoricalAttribute::Categorical("Inst", "Hospital",
                                             "Institution"),
           CategoricalAttribute::Categorical("Day", "Time", "Day"),
           CategoricalAttribute::Plain("Patient")}));
  // Table V, exactly.
  MDQA_RETURN_IF_ERROR(rel.InsertText({"H1", "Sep/9", "Tom Waits"}));
  MDQA_RETURN_IF_ERROR(rel.InsertText({"H1", "Sep/6", "Lou Reed"}));
  MDQA_RETURN_IF_ERROR(rel.InsertText({"H2", "Oct/5", "Elvis Costello"}));
  return rel;
}

}  // namespace

Result<std::shared_ptr<core::MdOntology>> BuildHospitalOntology(
    const HospitalOptions& options) {
  auto ontology = std::make_shared<core::MdOntology>();

  MDQA_ASSIGN_OR_RETURN(Dimension hospital, BuildHospitalDimension());
  MDQA_RETURN_IF_ERROR(ontology->AddDimension(std::move(hospital)));
  MDQA_ASSIGN_OR_RETURN(Dimension time, BuildPaperTimeDimension());
  MDQA_RETURN_IF_ERROR(ontology->AddDimension(std::move(time)));
  MDQA_ASSIGN_OR_RETURN(Dimension instrument, BuildInstrumentDimension());
  MDQA_RETURN_IF_ERROR(ontology->AddDimension(std::move(instrument)));

  MDQA_ASSIGN_OR_RETURN(CategoricalRelation patient_ward,
                        BuildPatientWard(options.include_violating_stay));
  MDQA_RETURN_IF_ERROR(
      ontology->AddCategoricalRelation(std::move(patient_ward)));
  MDQA_ASSIGN_OR_RETURN(CategoricalRelation patient_unit, BuildPatientUnit());
  MDQA_RETURN_IF_ERROR(
      ontology->AddCategoricalRelation(std::move(patient_unit)));
  MDQA_ASSIGN_OR_RETURN(CategoricalRelation schedules,
                        BuildWorkingSchedules());
  MDQA_RETURN_IF_ERROR(ontology->AddCategoricalRelation(std::move(schedules)));
  MDQA_ASSIGN_OR_RETURN(CategoricalRelation shifts, BuildShifts());
  MDQA_RETURN_IF_ERROR(ontology->AddCategoricalRelation(std::move(shifts)));
  MDQA_ASSIGN_OR_RETURN(CategoricalRelation therm,
                        BuildThermometer(options.include_therm_conflict));
  MDQA_RETURN_IF_ERROR(ontology->AddCategoricalRelation(std::move(therm)));
  MDQA_ASSIGN_OR_RETURN(CategoricalRelation discharge,
                        BuildDischargePatients());
  MDQA_RETURN_IF_ERROR(ontology->AddCategoricalRelation(std::move(discharge)));

  // Rule (7): upward navigation Ward -> Unit.
  MDQA_RETURN_IF_ERROR(ontology->AddDimensionalRule(
      "PatientUnit(U, D, P) :- PatientWard(W, D, P), UnitWard(U, W)."));
  if (options.include_downward_rules) {
    // Rule (8): downward navigation Unit -> Ward, existential shift Z.
    MDQA_RETURN_IF_ERROR(ontology->AddDimensionalRule(
        "Shifts(W, D, N, Z) :- WorkingSchedules(U, D, N, T), "
        "UnitWard(U, W)."));
    // Rule (9), form (10): existential categorical variable U.
    MDQA_RETURN_IF_ERROR(ontology->AddDimensionalRule(
        "InstitutionUnit(I, U), PatientUnit(U, D, P) :- "
        "DischargePatients(I, D, P)."));
  }
  if (options.include_constraints) {
    // EGD (6): all thermometers used in a unit are of the same type.
    MDQA_RETURN_IF_ERROR(ontology->AddDimensionalConstraint(
        "T = T2 :- Thermometer(W, T, N), Thermometer(W2, T2, N2), "
        "UnitWard(U, W), UnitWard(U, W2)."));
    // "No patient was in intensive care during August/2005" (Example 1's
    // inter-dimensional constraint, as written in the paper).
    MDQA_RETURN_IF_ERROR(ontology->AddDimensionalConstraint(
        "! :- PatientWard(W, D, P), UnitWard(\"Intensive\", W), "
        "MonthDay(\"August/2005\", D)."));
  }
  return ontology;
}

Result<Database> BuildMeasurementsDatabase() {
  Database db;
  MDQA_ASSIGN_OR_RETURN(
      RelationSchema schema,
      RelationSchema::Create("Measurements",
                             std::vector<std::string>{"Time", "Patient",
                                                      "Value"}));
  MDQA_RETURN_IF_ERROR(db.AddRelation(std::move(schema)));
  // Table I, exactly.
  MDQA_RETURN_IF_ERROR(
      db.InsertText("Measurements", {"Sep/5-12:10", "Tom Waits", "38.2"}));
  MDQA_RETURN_IF_ERROR(
      db.InsertText("Measurements", {"Sep/6-11:50", "Tom Waits", "37.1"}));
  MDQA_RETURN_IF_ERROR(
      db.InsertText("Measurements", {"Sep/7-12:15", "Tom Waits", "37.7"}));
  MDQA_RETURN_IF_ERROR(
      db.InsertText("Measurements", {"Sep/9-12:00", "Tom Waits", "37.0"}));
  MDQA_RETURN_IF_ERROR(
      db.InsertText("Measurements", {"Sep/6-11:05", "Lou Reed", "37.5"}));
  MDQA_RETURN_IF_ERROR(
      db.InsertText("Measurements", {"Sep/5-12:05", "Lou Reed", "38.0"}));
  return db;
}

Result<quality::QualityContext> BuildHospitalContext(
    const HospitalOptions& options) {
  MDQA_ASSIGN_OR_RETURN(std::shared_ptr<core::MdOntology> ontology,
                        BuildHospitalOntology(options));
  quality::QualityContext context(ontology);
  MDQA_ASSIGN_OR_RETURN(Database db, BuildMeasurementsDatabase());
  MDQA_RETURN_IF_ERROR(context.SetDatabase(std::move(db)));
  MDQA_RETURN_IF_ERROR(
      context.MapRelationToContext("Measurements", "Measurementc"));
  // Example 7's contextual predicates. The guideline "temperatures in the
  // standard unit are taken with brand-B1 thermometers" is the
  // TakenWithTherm rule; nurse certification flows from WorkingSchedules
  // through upward navigation into PatientUnit.
  MDQA_RETURN_IF_ERROR(context.AddContextualRules(
      "TakenByNurse(T, P, N, Y) :- WorkingSchedules(U, D, N, Y), "
      "DayTime(D, T), PatientUnit(U, D, P).\n"
      "TakenWithTherm(T, P, \"B1\") :- PatientUnit(\"Standard\", D, P), "
      "DayTime(D, T).\n"
      "Measurementp(T, P, V, Y, B) :- Measurementc(T, P, V), "
      "TakenByNurse(T, P, N, Y), TakenWithTherm(T, P, B).\n"));
  MDQA_RETURN_IF_ERROR(context.DefineQualityVersion(
      "Measurements", "Measurementsq",
      "Measurementsq(T, P, V) :- "
      "Measurementp(T, P, V, \"cert.\", \"B1\").\n"));
  return context;
}

}  // namespace mdqa::scenarios
