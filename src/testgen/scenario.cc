#include "testgen/scenario.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <random>
#include <set>
#include <sstream>
#include <utility>

#include "md/categorical.h"
#include "md/dimension.h"
#include "relational/value.h"

namespace mdqa::testgen {

using md::CategoricalAttribute;
using md::CategoricalRelation;
using md::Dimension;
using md::DimensionBuilder;
using quality::DeltaBatch;
using quality::QualityContext;
using quality::RelationDelta;

namespace {

// --- naming -----------------------------------------------------------
// Everything is prefixed "G" (generated) so scenario predicates never
// collide with the hospital/sales/finance/synthetic families when linked
// into the same binary.

std::string Cat(int level) { return "GL" + std::to_string(level); }
std::string Mem(int level, int i) {
  return "g" + std::to_string(level) + "m" + std::to_string(i);
}
std::string DayName(int d) { return "gd" + std::to_string(d); }
std::string TimeName(int d) { return "gt" + std::to_string(d); }
std::string EntityName(int i) { return "ge" + std::to_string(i); }
std::string NurseName(int i) { return "gn" + std::to_string(i); }
std::string GhostName(int i) { return "ghost" + std::to_string(i); }
std::string PhantomName(int i) { return "gx" + std::to_string(i); }
std::string KindName(int i) { return "gk" + std::to_string(i); }
std::string AssignAt(int level) { return "GAssignL" + std::to_string(level); }
std::string EdgeAt(int upper, int lower) {
  return Dimension::EdgePredicate(Cat(upper), Cat(lower));
}

// The instrument kind whose grade rolls up to "gbad" (see the GInstr
// dimension below); wards holding it produce organically dirty rows in
// the multi-dimensional family.
constexpr int kBadKind = 1;

// --- family shape -----------------------------------------------------

struct Shape {
  int cert_level = 1;     ///< level whose members carry certification
  bool ragged = false;    ///< skip edge GL0 -> GL2, some wards use it
  bool disjunctive = false;  ///< GDischarge + the form-(10) rule
  bool multidim = false;     ///< instrument dimension + GDevice
  bool strict_homogeneous = true;
};

Shape ShapeFor(const ScenarioSpec& spec) {
  Shape s;
  switch (spec.family) {
    case ScenarioFamily::kDeepHomogeneous:
      s.cert_level = spec.depth - 2;
      break;
    case ScenarioFamily::kRaggedHeterogeneous:
      s.cert_level = 2;
      s.ragged = true;
      s.strict_homogeneous = false;
      break;
    case ScenarioFamily::kDisjunctiveDownward:
      s.cert_level = 1;
      s.disjunctive = true;
      break;
    case ScenarioFamily::kMultiDimensional:
      s.cert_level = 1;
      s.multidim = true;
      break;
    case ScenarioFamily::kSkewedTenants:
      s.cert_level = 1;
      break;
  }
  return s;
}

// Zipf picker over {0..n-1}: weight(i) = 1/(i+1)^s, so index 0 is the hot
// element. s == 0 degenerates to uniform. Draws consume exactly one rng
// word, keeping the generator's draw sequence easy to reason about.
class ZipfPicker {
 public:
  ZipfPicker(int n, double s) {
    double total = 0;
    cumulative_.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cumulative_.push_back(total);
    }
  }

  int Pick(std::mt19937& rng) {
    const double u = static_cast<double>(rng() % (1u << 24)) /
                     static_cast<double>(1u << 24) * cumulative_.back();
    auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
    if (it == cumulative_.end()) --it;
    return static_cast<int>(it - cumulative_.begin());
  }

 private:
  std::vector<double> cumulative_;
};

// One measurement row as the generator tracks it: enough to re-derive its
// expected verdict from the hierarchy/schedule state at any point.
struct RowInfo {
  int day = 0;
  std::string entity;
  std::string value;
};

// The generator's private world model — an independent re-implementation
// of the dimensional navigation the chase performs, used as the
// differential oracle that produces ground truth.
struct World {
  ScenarioSpec spec;
  Shape shape;
  std::vector<int> counts;  ///< members per hierarchy level
  /// Parent link of each level-0 ward: (level, index). Levels >= 1 are a
  /// regular tree (parent index = index / fanout); only wards get ragged
  /// or misplaced links.
  std::vector<std::pair<int, int>> ward_parent;
  std::vector<bool> certified;       ///< per cert-level member
  std::map<std::string, int> entity_ward;
  std::vector<int> kind_of_ward;     ///< multidim only
  std::set<int> misplaced_wards;
  std::set<std::pair<int, int>> missing_schedule;  ///< (cert member, day)
  std::set<std::string> discharge_entities;  ///< phantoms with form-(10) support

  int CertOf(int ward) const {
    auto [level, index] = ward_parent[static_cast<size_t>(ward)];
    while (level < shape.cert_level) {
      index /= spec.fanout;
      ++level;
    }
    return index;
  }

  /// Certification member a level-1 parent rolls up to.
  int CertOfLevel1(int u) const {
    int index = u, level = 1;
    while (level < shape.cert_level) {
      index /= spec.fanout;
      ++level;
    }
    return index;
  }

  ViolationKind Expected(const RowInfo& row) const {
    auto it = entity_ward.find(row.entity);
    if (it == entity_ward.end()) {
      // Unknown entity: either a phantom whose only support is the
      // disjunctive (possible-world) navigation, or a planted ghost.
      return discharge_entities.count(row.entity)
                 ? ViolationKind::kPossibleOnly
                 : ViolationKind::kCorruptAttribute;
    }
    const int ward = it->second;
    const int cert = CertOf(ward);
    if (missing_schedule.count({cert, row.day})) {
      return ViolationKind::kMissingContext;
    }
    if (!certified[static_cast<size_t>(cert)]) {
      return misplaced_wards.count(ward) ? ViolationKind::kMisplacedMember
                                         : ViolationKind::kUncertified;
    }
    if (shape.multidim &&
        kind_of_ward[static_cast<size_t>(ward)] == kBadKind) {
      return ViolationKind::kWrongInstrument;
    }
    return ViolationKind::kNone;
  }

  std::vector<TupleVerdict> Verdicts(const std::vector<RowInfo>& rows) const {
    std::vector<TupleVerdict> out;
    out.reserve(rows.size());
    for (const RowInfo& row : rows) {
      TupleVerdict v;
      v.fields = {TimeName(row.day), row.entity, row.value};
      v.violation = Expected(row);
      v.clean = v.violation == ViolationKind::kNone;
      out.push_back(std::move(v));
    }
    return out;
  }
};

Tuple TupleOf(const std::vector<std::string>& fields) {
  Tuple t;
  t.reserve(fields.size());
  for (const std::string& f : fields) t.push_back(Value::FromText(f));
  return t;
}

Result<std::shared_ptr<core::MdOntology>> BuildOntology(const World& world) {
  const ScenarioSpec& spec = world.spec;
  const Shape& shape = world.shape;
  auto ontology = std::make_shared<core::MdOntology>();

  {
    DimensionBuilder b("GArea");
    for (int l = 0; l < spec.depth; ++l) b.Category(Cat(l));
    for (int l = 0; l + 1 < spec.depth; ++l) b.Edge(Cat(l), Cat(l + 1));
    if (shape.ragged) b.Edge(Cat(0), Cat(2));
    b.Member(Cat(spec.depth - 1), Mem(spec.depth - 1, 0));
    for (int l = spec.depth - 2; l >= 1; --l) {
      for (int i = 0; i < world.counts[static_cast<size_t>(l)]; ++i) {
        b.Member(Cat(l), Mem(l, i)).Link(Mem(l, i), Mem(l + 1, i / spec.fanout));
      }
    }
    for (int w = 0; w < world.counts[0]; ++w) {
      auto [pl, pi] = world.ward_parent[static_cast<size_t>(w)];
      b.Member(Cat(0), Mem(0, w)).Link(Mem(0, w), Mem(pl, pi));
    }
    Dimension::Options opts;
    opts.require_strict = shape.strict_homogeneous;
    opts.require_homogeneous = shape.strict_homogeneous;
    MDQA_ASSIGN_OR_RETURN(Dimension d, b.Build(opts));
    MDQA_RETURN_IF_ERROR(ontology->AddDimension(std::move(d)));
  }
  {
    DimensionBuilder b("GTime");
    b.Category("GTim").Category("GDay").Category("GAllT");
    b.Edge("GTim", "GDay").Edge("GDay", "GAllT");
    b.Member("GAllT", "gallt");
    for (int d = 0; d < spec.days; ++d) {
      b.Member("GDay", DayName(d)).Link(DayName(d), "gallt");
      b.Member("GTim", TimeName(d)).Link(TimeName(d), DayName(d));
    }
    Dimension::Options opts;
    opts.require_strict = true;
    opts.require_homogeneous = true;
    MDQA_ASSIGN_OR_RETURN(Dimension d, b.Build(opts));
    MDQA_RETURN_IF_ERROR(ontology->AddDimension(std::move(d)));
  }
  if (shape.multidim) {
    DimensionBuilder b("GInstr");
    b.Category("GKind").Category("GGrade").Category("GAllI");
    b.Edge("GKind", "GGrade").Edge("GGrade", "GAllI");
    b.Member("GAllI", "galli");
    b.Member("GGrade", "ggood").Link("ggood", "galli");
    b.Member("GGrade", "gbad").Link("gbad", "galli");
    for (int k = 0; k < 3; ++k) {
      b.Member("GKind", KindName(k))
          .Link(KindName(k), k == kBadKind ? "gbad" : "ggood");
    }
    Dimension::Options opts;
    opts.require_strict = true;
    opts.require_homogeneous = true;
    MDQA_ASSIGN_OR_RETURN(Dimension d, b.Build(opts));
    MDQA_RETURN_IF_ERROR(ontology->AddDimension(std::move(d)));
  }

  {
    MDQA_ASSIGN_OR_RETURN(
        CategoricalRelation rel,
        CategoricalRelation::Create(
            "GAssign",
            {CategoricalAttribute::Categorical("Ward", "GArea", Cat(0)),
             CategoricalAttribute::Categorical("Day", "GTime", "GDay"),
             CategoricalAttribute::Plain("Entity")}));
    for (const auto& [entity, ward] : world.entity_ward) {
      for (int d = 0; d < spec.days; ++d) {
        MDQA_RETURN_IF_ERROR(
            rel.InsertText({Mem(0, ward), DayName(d), entity}));
      }
    }
    MDQA_RETURN_IF_ERROR(ontology->AddCategoricalRelation(std::move(rel)));
  }
  // Virtual roll-ups of GAssign, one per level up to the certification
  // level — populated only by the dimensional rules below.
  for (int l = 1; l <= shape.cert_level; ++l) {
    MDQA_ASSIGN_OR_RETURN(
        CategoricalRelation rel,
        CategoricalRelation::Create(
            AssignAt(l),
            {CategoricalAttribute::Categorical("Member", "GArea", Cat(l)),
             CategoricalAttribute::Categorical("Day", "GTime", "GDay"),
             CategoricalAttribute::Plain("Entity")}));
    MDQA_RETURN_IF_ERROR(ontology->AddCategoricalRelation(std::move(rel)));
  }
  {
    MDQA_ASSIGN_OR_RETURN(
        CategoricalRelation rel,
        CategoricalRelation::Create(
            "GSchedule",
            {CategoricalAttribute::Categorical("Unit", "GArea",
                                               Cat(shape.cert_level)),
             CategoricalAttribute::Categorical("Day", "GTime", "GDay"),
             CategoricalAttribute::Plain("Nurse"),
             CategoricalAttribute::Plain("Type")}));
    const int cert_members =
        world.counts[static_cast<size_t>(shape.cert_level)];
    for (int c = 0; c < cert_members; ++c) {
      for (int d = 0; d < spec.days; ++d) {
        if (world.missing_schedule.count({c, d})) continue;
        const char* type =
            world.certified[static_cast<size_t>(c)] ? "cert." : "non-c.";
        MDQA_RETURN_IF_ERROR(
            rel.InsertText({Mem(shape.cert_level, c), DayName(d),
                            NurseName(c), type}));
      }
    }
    MDQA_RETURN_IF_ERROR(ontology->AddCategoricalRelation(std::move(rel)));
  }
  if (shape.disjunctive) {
    // GDischarge places entities in *some* unit of a region (one level
    // above certification) — the paper's DischargePatients.
    MDQA_ASSIGN_OR_RETURN(
        CategoricalRelation rel,
        CategoricalRelation::Create(
            "GDischarge",
            {CategoricalAttribute::Categorical(
                 "Region", "GArea", Cat(shape.cert_level + 1)),
             CategoricalAttribute::Categorical("Day", "GTime", "GDay"),
             CategoricalAttribute::Plain("Entity")}));
    for (const std::string& phantom : world.discharge_entities) {
      for (int d = 0; d < spec.days; ++d) {
        MDQA_RETURN_IF_ERROR(rel.InsertText(
            {Mem(shape.cert_level + 1, 0), DayName(d), phantom}));
      }
    }
    // Redundant discharge facts for a couple of real entities: their
    // certain support must keep winning over the possible-world one.
    int added = 0;
    for (const auto& [entity, ward] : world.entity_ward) {
      if (added++ == 2) break;
      const int region = world.CertOf(ward) / spec.fanout;
      for (int d = 0; d < spec.days; ++d) {
        MDQA_RETURN_IF_ERROR(rel.InsertText(
            {Mem(shape.cert_level + 1, region), DayName(d), entity}));
      }
    }
    MDQA_RETURN_IF_ERROR(ontology->AddCategoricalRelation(std::move(rel)));
  }
  if (shape.multidim) {
    MDQA_ASSIGN_OR_RETURN(
        CategoricalRelation rel,
        CategoricalRelation::Create(
            "GDevice",
            {CategoricalAttribute::Categorical("Ward", "GArea", Cat(0)),
             CategoricalAttribute::Categorical("Kind", "GInstr", "GKind")}));
    for (int w = 0; w < world.counts[0]; ++w) {
      MDQA_RETURN_IF_ERROR(rel.InsertText(
          {Mem(0, w), KindName(world.kind_of_ward[static_cast<size_t>(w)])}));
    }
    MDQA_RETURN_IF_ERROR(ontology->AddCategoricalRelation(std::move(rel)));
  }

  // Upward navigation chain — rule (7) iterated once per level.
  MDQA_RETURN_IF_ERROR(ontology->AddDimensionalRule(
      AssignAt(1) + "(U, D, E) :- GAssign(W, D, E), " + EdgeAt(1, 0) +
      "(U, W)."));
  for (int l = 2; l <= shape.cert_level; ++l) {
    MDQA_RETURN_IF_ERROR(ontology->AddDimensionalRule(
        AssignAt(l) + "(X, D, E) :- " + AssignAt(l - 1) + "(U, D, E), " +
        EdgeAt(l, l - 1) + "(X, U)."));
  }
  if (shape.ragged) {
    // The skip edge: ragged wards roll up straight to the certification
    // level, bypassing GL1 entirely.
    MDQA_RETURN_IF_ERROR(ontology->AddDimensionalRule(
        AssignAt(2) + "(X, D, E) :- GAssign(W, D, E), " + EdgeAt(2, 0) +
        "(X, W)."));
  }
  if (shape.disjunctive) {
    // Form (10): existential categorical variable U — a discharged entity
    // was in *some* unit of the region (the paper's rule (9)).
    MDQA_RETURN_IF_ERROR(ontology->AddDimensionalRule(
        EdgeAt(shape.cert_level + 1, shape.cert_level) + "(R, U), " +
        AssignAt(shape.cert_level) +
        "(U, D, E) :- GDischarge(R, D, E)."));
  }
  return ontology;
}

Status BuildContextRules(const World& world, QualityContext* context) {
  const Shape& shape = world.shape;
  std::ostringstream rules;
  rules << "GTakenBy(T, E, N, Y) :- GSchedule(C, D, N, Y), GDayGTim(D, T), "
        << AssignAt(shape.cert_level) << "(C, D, E).\n";
  if (shape.multidim) {
    rules << "GWithDev(T, E, G) :- GAssign(W, D, E), GDevice(W, K), "
             "GGradeGKind(G, K), GDayGTim(D, T).\n";
    rules << "GMeasP(T, E, V, Y, G) :- GMeasC(T, E, V), "
             "GTakenBy(T, E, N, Y), GWithDev(T, E, G).\n";
  } else {
    rules << "GMeasP(T, E, V, Y) :- GMeasC(T, E, V), "
             "GTakenBy(T, E, N, Y).\n";
  }
  MDQA_RETURN_IF_ERROR(context->AddContextualRules(rules.str()));
  return context->DefineQualityVersion(
      "GMeasurements", "GMeasurementsq",
      shape.multidim
          ? "GMeasurementsq(T, E, V) :- "
            "GMeasP(T, E, V, \"cert.\", \"ggood\").\n"
          : "GMeasurementsq(T, E, V) :- GMeasP(T, E, V, \"cert.\").\n");
}

}  // namespace

const char* ScenarioFamilyToString(ScenarioFamily f) {
  switch (f) {
    case ScenarioFamily::kDeepHomogeneous:
      return "deep-homogeneous";
    case ScenarioFamily::kRaggedHeterogeneous:
      return "ragged-heterogeneous";
    case ScenarioFamily::kDisjunctiveDownward:
      return "disjunctive-downward";
    case ScenarioFamily::kMultiDimensional:
      return "multi-dimensional";
    case ScenarioFamily::kSkewedTenants:
      return "skewed-tenants";
  }
  return "unknown";
}

const char* ViolationKindToString(ViolationKind k) {
  switch (k) {
    case ViolationKind::kNone:
      return "none";
    case ViolationKind::kCorruptAttribute:
      return "corrupt-attribute";
    case ViolationKind::kMisplacedMember:
      return "misplaced-member";
    case ViolationKind::kMissingContext:
      return "missing-context";
    case ViolationKind::kUncertified:
      return "uncertified";
    case ViolationKind::kWrongInstrument:
      return "wrong-instrument";
    case ViolationKind::kPossibleOnly:
      return "possible-only";
  }
  return "unknown";
}

ScenarioSpec SpecFor(ScenarioFamily family, uint32_t seed) {
  ScenarioSpec s;
  s.family = family;
  s.seed = seed;
  s.entities = 8 + static_cast<int>(seed % 5);
  s.days = 2 + static_cast<int>(seed % 2);
  s.rows = s.entities * 3;
  s.corruptions = 1 + static_cast<int>(seed % 3);
  s.misplacements = 1;
  s.missing_facts = 1;
  s.update_batches = 2;
  s.updates_per_batch = 2 + static_cast<int>(seed % 3);
  switch (family) {
    case ScenarioFamily::kDeepHomogeneous:
      s.depth = 5;
      s.fanout = 2;
      break;
    case ScenarioFamily::kRaggedHeterogeneous:
      s.depth = 4;
      s.fanout = 2;
      break;
    case ScenarioFamily::kDisjunctiveDownward:
      s.depth = 3;
      s.fanout = 3;
      break;
    case ScenarioFamily::kMultiDimensional:
      s.depth = 3;
      s.fanout = 3;
      break;
    case ScenarioFamily::kSkewedTenants:
      s.depth = 3;
      s.fanout = 4;
      s.zipf_s = 0.9 + 0.2 * static_cast<double>(seed % 3);
      s.entities = 12 + static_cast<int>(seed % 5);
      s.rows = 48;
      break;
  }
  return s;
}

Result<GeneratedScenario> ScenarioGenerator::Generate(
    const ScenarioSpec& spec) {
  World world;
  world.spec = spec;
  world.shape = ShapeFor(spec);
  const Shape& shape = world.shape;
  if (spec.depth < 3 || spec.fanout < 2 || spec.days < 1 ||
      spec.entities < 2 || spec.rows < 1) {
    return Status(StatusCode::kInvalidArgument,
                  "scenario spec out of range (depth >= 3, fanout >= 2, "
                  "days/entities/rows >= 1 required)");
  }
  if (shape.cert_level < 1 ||
      shape.cert_level + (shape.disjunctive ? 1 : 0) >= spec.depth) {
    return Status(StatusCode::kInvalidArgument,
                  "hierarchy too shallow for the family's certification "
                  "level");
  }

  // Regular tree sizes, top down; level 0 holds the wards.
  world.counts.assign(static_cast<size_t>(spec.depth), 1);
  for (int l = spec.depth - 2; l >= 0; --l) {
    world.counts[static_cast<size_t>(l)] =
        world.counts[static_cast<size_t>(l + 1)] * spec.fanout;
  }
  if (world.counts[static_cast<size_t>(shape.cert_level)] < 2) {
    return Status(StatusCode::kInvalidArgument,
                  "certification level needs at least two members");
  }

  // Seed scrambling decorrelates the scenario stream from the other
  // testgen families at equal seeds; the family index joins in so sibling
  // cells of one matrix row differ structurally too.
  std::mt19937 rng(spec.seed * 2166136261u +
                   static_cast<uint32_t>(spec.family) * 97u + 7u);

  const int wards = world.counts[0];
  world.ward_parent.reserve(static_cast<size_t>(wards));
  for (int w = 0; w < wards; ++w) {
    if (shape.ragged && rng() % 4 == 0) {
      world.ward_parent.emplace_back(
          2, static_cast<int>(rng() % static_cast<uint32_t>(
                 world.counts[2])));
    } else {
      world.ward_parent.emplace_back(1, w / spec.fanout);
    }
  }

  const int cert_members = world.counts[static_cast<size_t>(shape.cert_level)];
  world.certified.resize(static_cast<size_t>(cert_members));
  for (int c = 0; c < cert_members; ++c) {
    world.certified[static_cast<size_t>(c)] = rng() % 10 < 6;
  }
  // Both planted-misplacement targets and clean rows must exist, so force
  // at least one certified and one uncertified member.
  if (std::none_of(world.certified.begin(), world.certified.end(),
                   [](bool b) { return b; })) {
    world.certified.front() = true;
  }
  if (std::all_of(world.certified.begin(), world.certified.end(),
                  [](bool b) { return b; })) {
    world.certified.back() = false;
  }

  if (shape.multidim) {
    world.kind_of_ward.resize(static_cast<size_t>(wards));
    for (int w = 0; w < wards; ++w) {
      world.kind_of_ward[static_cast<size_t>(w)] =
          static_cast<int>(rng() % 3);
    }
  }

  ZipfPicker ward_picker(wards, spec.zipf_s);
  for (int e = 0; e < spec.entities; ++e) {
    world.entity_ward[EntityName(e)] = ward_picker.Pick(rng);
  }

  // Measurement rows. Values are unique per row (a monotonic counter that
  // keeps running through the update stream), so set semantics never
  // collapses two rows and per-tuple ground truth stays per-row.
  int value_counter = 0;
  auto next_value = [&value_counter]() {
    const int v = value_counter++;
    return std::to_string(34 + v / 10) + "." + std::to_string(v % 10);
  };
  std::vector<RowInfo> rows;
  ZipfPicker entity_picker(spec.entities, spec.zipf_s);
  for (int r = 0; r < spec.rows; ++r) {
    RowInfo row;
    row.day = static_cast<int>(rng() % static_cast<uint32_t>(spec.days));
    row.entity = EntityName(entity_picker.Pick(rng));
    row.value = next_value();
    rows.push_back(std::move(row));
  }
  if (shape.disjunctive) {
    for (int j = 0; j < 2; ++j) {
      world.discharge_entities.insert(PhantomName(j));
      for (int k = 0; k < 2; ++k) {
        RowInfo row;
        row.day = static_cast<int>(rng() % static_cast<uint32_t>(spec.days));
        row.entity = PhantomName(j);
        row.value = next_value();
        rows.push_back(std::move(row));
      }
    }
  }

  // --- dirty injection, in a fixed order ------------------------------
  // 1) attribute corruption: overwrite a row's entity with a ghost.
  std::set<size_t> corrupted;
  for (int k = 0; k < spec.corruptions && corrupted.size() < rows.size();
       ++k) {
    size_t victim = rng() % rows.size();
    while (corrupted.count(victim)) victim = (victim + 1) % rows.size();
    corrupted.insert(victim);
    rows[victim].entity = GhostName(k);
  }
  // 2) hierarchy misplacement: re-link an occupied, currently-certified
  //    ward under a parent whose certification member is uncertified.
  {
    std::vector<int> candidates;
    for (const auto& [entity, ward] : world.entity_ward) {
      (void)entity;
      if (world.ward_parent[static_cast<size_t>(ward)].first != 1) continue;
      if (!world.certified[static_cast<size_t>(world.CertOf(ward))]) continue;
      if (std::find(candidates.begin(), candidates.end(), ward) ==
          candidates.end()) {
        candidates.push_back(ward);
      }
    }
    std::sort(candidates.begin(), candidates.end());
    for (int k = 0; k < spec.misplacements && !candidates.empty(); ++k) {
      const int ward =
          candidates[rng() % static_cast<uint32_t>(candidates.size())];
      if (world.misplaced_wards.count(ward)) continue;
      // Find a level-1 parent rolling up to an uncertified member.
      const int l1 = world.counts[1];
      int target = -1;
      const int start = static_cast<int>(rng() % static_cast<uint32_t>(l1));
      for (int i = 0; i < l1; ++i) {
        const int u = (start + i) % l1;
        if (!world.certified[static_cast<size_t>(world.CertOfLevel1(u))]) {
          target = u;
          break;
        }
      }
      if (target < 0) break;  // every chain certified; nothing to plant
      world.ward_parent[static_cast<size_t>(ward)] = {1, target};
      world.misplaced_wards.insert(ward);
    }
  }
  // Guarantee at least one certainly-clean row — the matrix cell is
  // vacuous without both verdict classes, and an unlucky certification
  // draw (or heavy skew onto an uncertified ward) can dirty everything.
  // Repair the first repairable row's navigation: re-link its ward under
  // a certified chain and (multi-dimensional) hand it a good instrument.
  {
    auto any_clean = [&world, &rows] {
      for (const RowInfo& row : rows) {
        if (world.Expected(row) == ViolationKind::kNone) return true;
      }
      return false;
    };
    if (!any_clean()) {
      for (const RowInfo& row : rows) {
        auto it = world.entity_ward.find(row.entity);
        if (it == world.entity_ward.end()) continue;
        const int ward = it->second;
        for (int u = 0; u < world.counts[1]; ++u) {
          if (world.certified[static_cast<size_t>(world.CertOfLevel1(u))]) {
            world.ward_parent[static_cast<size_t>(ward)] = {1, u};
            world.misplaced_wards.erase(ward);
            break;
          }
        }
        if (shape.multidim) {
          world.kind_of_ward[static_cast<size_t>(ward)] = 0;
        }
        break;
      }
    }
  }
  // 3) missing contextual fact: drop the schedule entry a clean row's
  //    navigation lands on.
  std::vector<std::pair<int, int>> dropped_schedules;
  for (int k = 0; k < spec.missing_facts; ++k) {
    bool planted = false;
    const size_t start = rng() % rows.size();
    for (size_t i = 0; i < rows.size() && !planted; ++i) {
      const RowInfo& row = rows[(start + i) % rows.size()];
      if (world.Expected(row) != ViolationKind::kNone) continue;
      const std::pair<int, int> pair = {
          world.CertOf(world.entity_ward.at(row.entity)), row.day};
      world.missing_schedule.insert(pair);
      dropped_schedules.push_back(pair);
      planted = true;
    }
    if (!planted) break;  // no clean row left to dirty
  }
  // Never let the missing-fact injection consume the last clean row.
  while (!dropped_schedules.empty() &&
         std::none_of(rows.begin(), rows.end(), [&world](const RowInfo& r) {
           return world.Expected(r) == ViolationKind::kNone;
         })) {
    world.missing_schedule.erase(dropped_schedules.back());
    dropped_schedules.pop_back();
  }

  // --- assemble the context -------------------------------------------
  MDQA_ASSIGN_OR_RETURN(std::shared_ptr<core::MdOntology> ontology,
                        BuildOntology(world));
  quality::QualityContext context(std::move(ontology));

  Database db;
  MDQA_ASSIGN_OR_RETURN(
      RelationSchema schema,
      RelationSchema::Create(
          "GMeasurements",
          std::vector<std::string>{"Time", "Entity", "Value"}));
  MDQA_RETURN_IF_ERROR(db.AddRelation(std::move(schema)));
  for (const RowInfo& row : rows) {
    MDQA_RETURN_IF_ERROR(db.InsertText(
        "GMeasurements", {TimeName(row.day), row.entity, row.value}));
  }
  MDQA_RETURN_IF_ERROR(context.SetDatabase(std::move(db)));
  MDQA_RETURN_IF_ERROR(
      context.MapRelationToContext("GMeasurements", "GMeasC"));
  MDQA_RETURN_IF_ERROR(BuildContextRules(world, &context));

  GeneratedScenario out{spec, std::move(context), "GMeasurements"};
  out.truth = world.Verdicts(rows);
  for (const TupleVerdict& v : out.truth) {
    switch (v.violation) {
      case ViolationKind::kCorruptAttribute:
        ++out.planted_corrupt;
        break;
      case ViolationKind::kMisplacedMember:
        ++out.planted_misplaced;
        break;
      case ViolationKind::kMissingContext:
        ++out.planted_missing;
        break;
      default:
        break;
    }
  }

  // --- seeded update stream -------------------------------------------
  for (int b = 0; b < spec.update_batches; ++b) {
    ScenarioUpdate update;
    RelationDelta delta;
    delta.relation = "GMeasurements";
    const bool last = b + 1 == spec.update_batches;
    if (last && spec.delete_in_last_batch && !rows.empty()) {
      const size_t victim = rng() % rows.size();
      const RowInfo& row = rows[victim];
      delta.delete_rows.push_back(
          TupleOf({TimeName(row.day), row.entity, row.value}));
      rows.erase(rows.begin() + static_cast<long>(victim));
    }
    for (int i = 0; i < spec.updates_per_batch; ++i) {
      RowInfo row;
      row.day = static_cast<int>(rng() % static_cast<uint32_t>(spec.days));
      if (rng() % 5 == 0) {
        // A dirty insert: fresh ghost entity nothing in the ontology knows.
        row.entity =
            "ghu" + std::to_string(b) + "x" + std::to_string(i);
      } else {
        row.entity = EntityName(entity_picker.Pick(rng));
      }
      row.value = next_value();
      delta.insert_rows.push_back(
          TupleOf({TimeName(row.day), row.entity, row.value}));
      rows.push_back(std::move(row));
    }
    update.batch.deltas.push_back(std::move(delta));
    update.verdicts_after = world.Verdicts(rows);
    out.updates.push_back(std::move(update));
  }
  return out;
}

Result<std::string> ScenarioFingerprint(const GeneratedScenario& scenario) {
  std::ostringstream fp;
  fp << "#### spec " << ScenarioFamilyToString(scenario.spec.family)
     << " seed=" << scenario.spec.seed << "\n";
  MDQA_ASSIGN_OR_RETURN(datalog::Program program,
                        scenario.context.BuildProgram());
  fp << "#### program\n" << program.ToString();
  fp << "#### database\n" << scenario.context.database().ToString();
  fp << "#### truth\n";
  for (const TupleVerdict& v : scenario.truth) {
    for (const std::string& f : v.fields) fp << f << "|";
    fp << (v.clean ? "clean" : ViolationKindToString(v.violation)) << "\n";
  }
  for (size_t b = 0; b < scenario.updates.size(); ++b) {
    const ScenarioUpdate& u = scenario.updates[b];
    fp << "#### batch " << b << "\n";
    for (const RelationDelta& d : u.batch.deltas) {
      for (const Tuple& t : d.delete_rows) {
        fp << "-" << d.relation << "(";
        for (const Value& v : t) fp << v.ToString() << ",";
        fp << ")\n";
      }
      for (const Tuple& t : d.insert_rows) {
        fp << "+" << d.relation << "(";
        for (const Value& v : t) fp << v.ToString() << ",";
        fp << ")\n";
      }
    }
    for (const TupleVerdict& v : u.verdicts_after) {
      for (const std::string& f : v.fields) fp << f << "|";
      fp << (v.clean ? "clean" : ViolationKindToString(v.violation)) << "\n";
    }
  }
  return fp.str();
}

Result<VerdictScore> ScoreVerdicts(const quality::AssessmentReport& report,
                                   const std::string& relation,
                                   const std::vector<TupleVerdict>& truth) {
  const Relation* clean_rows = report.QualityVersionOf(relation);
  const Relation* dirty_rows = report.DirtyOf(relation);
  const quality::QualityMeasures* measures = report.MeasuresOf(relation);
  if (clean_rows == nullptr || dirty_rows == nullptr || measures == nullptr) {
    return Status(StatusCode::kNotFound,
                  "report carries no verdicts for '" + relation +
                      "' (degraded or unassessed)");
  }
  if (measures->original_size != truth.size()) {
    return Status(StatusCode::kFailedPrecondition,
                  "report covers " + std::to_string(measures->original_size) +
                      " rows of '" + relation + "' but ground truth has " +
                      std::to_string(truth.size()));
  }
  VerdictScore score;
  score.rows = truth.size();
  for (const TupleVerdict& v : truth) {
    const Tuple t = TupleOf(v.fields);
    const bool flagged = dirty_rows->Contains(t);
    const bool kept = clean_rows->Contains(t);
    std::ostringstream rendered;
    for (const std::string& f : v.fields) rendered << f << "|";
    if (flagged == kept) {
      // A stored row belongs to exactly one of D^q and D \ D^q.
      score.mismatches.push_back(rendered.str() +
                                 " absent from the report's partition");
      if (!v.clean) ++score.expected_dirty;
      continue;
    }
    if (!v.clean) ++score.expected_dirty;
    if (flagged) {
      ++score.flagged_dirty;
      if (!v.clean) {
        ++score.true_positives;
      } else {
        score.mismatches.push_back(
            rendered.str() + " expected clean, flagged dirty");
      }
    } else if (!v.clean) {
      score.mismatches.push_back(rendered.str() + " expected dirty (" +
                                 ViolationKindToString(v.violation) +
                                 "), reported clean");
    }
  }
  score.precision = score.flagged_dirty == 0
                        ? 1.0
                        : static_cast<double>(score.true_positives) /
                              static_cast<double>(score.flagged_dirty);
  score.recall = score.expected_dirty == 0
                     ? 1.0
                     : static_cast<double>(score.true_positives) /
                           static_cast<double>(score.expected_dirty);
  return score;
}

void WriteScenarioBenchRecords(
    JsonWriter* w, const std::vector<ScenarioBenchRecord>& records) {
  w->BeginArray();
  for (const ScenarioBenchRecord& r : records) {
    w->BeginObject();
    w->Key("family").String(r.family);
    w->Key("seed").Number(static_cast<int64_t>(r.seed));
    w->Key("edb_rows").Number(r.edb_rows);
    w->Key("chase_facts").Number(r.chase_facts);
    w->Key("dirty_expected").Number(r.dirty_expected);
    w->Key("engine_recommended").String(r.engine_recommended);
    w->Key("engines").BeginArray();
    for (size_t i = 0; i < r.engines.size(); ++i) {
      w->BeginArray();
      w->String(r.engines[i]);
      w->Number(i < r.assess_ms.size() ? r.assess_ms[i] : 0.0);
      w->EndArray();
    }
    w->EndArray();
    w->Key("incremental_ms").Number(r.incremental_ms);
    w->Key("full_reassess_ms").Number(r.full_reassess_ms);
    w->Key("planner_pick_fastest").Bool(r.planner_pick_fastest);
    w->Key("reports_identical").Bool(r.reports_identical);
    w->EndObject();
  }
  w->EndArray();
}

}  // namespace mdqa::testgen
