// Seeded random program/query/workload generators shared by the
// property-test harnesses (engines_property_test, parallel_diff_test,
// incremental_diff_test, serve_soak_test) and the bench binaries.
// Everything here is a pure function of its seed — no wall-clock
// randomness — so any failing case reproduces from its test parameter
// alone. Compiled once into the mdqa_testgen library (the definitions
// used to live header-only in tests/generators.h and were re-codegen'd
// into every test binary).
#ifndef MDQA_TESTGEN_GENERATORS_H_
#define MDQA_TESTGEN_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace mdqa::testgen {

/// A generated Datalog± program plus a batch of queries over it.
struct GeneratedCase {
  std::string program_text;
  std::vector<std::string> queries;
  /// True when the program includes the existential (downward) rule —
  /// such programs are outside the rewriter's upward-only guarantee.
  bool downward = false;
};

/// Random two-level hierarchy program in the MD ontology's shape: base
/// facts PW(ward, patient), UW(unit, ward), WS(unit, nurse), an upward
/// rule PU, and (on even seeds) a downward rule SH with an existential.
/// Weakly acyclic, so every engine terminates on it.
GeneratedCase GenerateHierarchy(uint32_t seed);

/// Random directed graph with transitive-closure rules — plain recursive
/// Datalog, the multi-round semi-naive stress case. Seed scrambling
/// (`seed * 7919 + 3`) keeps the graph family decorrelated from the
/// hierarchy family at equal seeds.
GeneratedCase GenerateClosure(uint32_t seed);

/// A base case plus a sequence of update batches for the incremental-chase
/// differential harness (tests/incremental_diff_test.cc): each batch is a
/// list of ground atoms (rendered WITHOUT the trailing period, ready for
/// `Parser::ParseGroundAtom`). Batches mix constants already present in
/// the base program with fresh ones, so extensions both lengthen existing
/// join frontiers and open brand-new ones.
struct UpdateSequence {
  GeneratedCase base;
  std::vector<std::vector<std::string>> batches;
};

UpdateSequence GenerateUpdateSequence(uint32_t seed);

/// One client action in a serve workload. Rows are triples for the
/// hospital Measurements schema (Time, Patient, Value), rendered as the
/// JSON bodies mdqa_serve's /query and /update endpoints accept.
struct ServeOp {
  enum class Kind { kQuery, kReport, kInsert, kDelete };
  Kind kind = Kind::kQuery;
  /// Tenant id, drawn from a skewed distribution so one hot tenant
  /// exercises the rate limiter while the cold ones sail through.
  std::string tenant;
  /// Request body for POST /query or /update ("" for GET /report).
  std::string body;
  /// For kInsert: the time keys of the batch's rows; for kDelete: the one
  /// row being deleted. Clients track which inserts the server actually
  /// acknowledged (200/202, not shed) and skip deletes of unacknowledged
  /// rows — the server rejects deleting absent rows with 404.
  std::vector<std::string> row_times;
};

/// A seeded mixed serve workload: mostly queries, a stream of insert
/// bursts, and deletes drawn only from this stream's own earlier inserts
/// (rendered in emit order, so replaying ops[0..i] in order keeps every
/// delete valid once its insert was acknowledged). Tenant choice is
/// skewed: ~half the ops come from "hot", the rest spread over
/// `tenants - 1` cold tenants. Pure function of the seed — shared by
/// tests/serve_soak_test.cc and bench/bench_serve.cc so a soak failure
/// reproduces from (seed, op index) alone.
struct ServeWorkload {
  std::vector<ServeOp> ops;
};

ServeWorkload GenerateServeWorkload(uint32_t seed, size_t n_ops,
                                    int tenants = 4);

}  // namespace mdqa::testgen

#endif  // MDQA_TESTGEN_GENERATORS_H_
