#include "testgen/generators.h"

#include <random>
#include <sstream>
#include <string_view>

namespace mdqa::testgen {

GeneratedCase GenerateHierarchy(uint32_t seed) {
  std::mt19937 rng(seed);
  auto pick = [&rng](int n) {
    return static_cast<int>(rng() % static_cast<uint32_t>(n));
  };
  const int wards = 2 + pick(4);
  const int units = 1 + pick(3);
  const int patients = 2 + pick(5);

  std::ostringstream program;
  for (int w = 0; w < wards; ++w) {
    program << "UW(\"u" << pick(units) << "\", \"w" << w << "\").\n";
  }
  for (int p = 0; p < patients; ++p) {
    program << "PW(\"w" << pick(wards) << "\", \"p" << p << "\").\n";
  }
  for (int u = 0; u < units; ++u) {
    program << "WS(\"u" << u << "\", \"n" << u << "\").\n";
  }
  program << "PU(U, P) :- PW(W, P), UW(U, W).\n";
  const bool downward = (seed % 2) == 0;
  if (downward) {
    program << "SH(W, N, Z) :- WS(U, N), UW(U, W).\n";
  }

  GeneratedCase out;
  out.program_text = program.str();
  out.downward = downward;
  out.queries = {
      "Q(U, P) :- PU(U, P).",
      "Q(P) :- PU(\"u0\", P).",
      "Q(U) :- PU(U, \"p0\").",
      "Q(U, P) :- PU(U, P), UW(U, W), PW(W, P).",
      "Q(P, P2) :- PU(U, P), PU(U, P2), P != P2.",
  };
  if (downward) {
    out.queries.push_back("Q(W, N) :- SH(W, N, Z).");
    out.queries.push_back("Q(N) :- SH(\"w0\", N, Z).");
  }
  return out;
}

GeneratedCase GenerateClosure(uint32_t seed) {
  std::mt19937 rng(seed * 7919 + 3);
  const int nodes = 4 + static_cast<int>(rng() % 4);
  std::ostringstream program;
  for (int i = 0; i < nodes + 2; ++i) {
    program << "E(" << rng() % static_cast<uint32_t>(nodes) << ", "
            << rng() % static_cast<uint32_t>(nodes) << ").\n";
  }
  program << "T(X, Y) :- E(X, Y).\n";
  program << "T(X, Z) :- T(X, Y), E(Y, Z).\n";

  GeneratedCase out;
  out.program_text = program.str();
  out.queries = {
      "Q(X, Y) :- T(X, Y).",
      "Q(Y) :- T(0, Y).",
      "Q(X) :- T(X, X).",
  };
  return out;
}

UpdateSequence GenerateUpdateSequence(uint32_t seed) {
  UpdateSequence out;
  // Every fifth sequence updates the recursive-closure family (multi-round
  // semi-naive re-derivation); the rest update the hierarchy family
  // (existential nulls on even seeds).
  const bool closure = (seed % 5) == 4;
  out.base = closure ? GenerateClosure(seed) : GenerateHierarchy(seed);
  std::mt19937 rng(seed * 2654435761u + 17);
  auto pick = [&rng](int n) {
    return static_cast<int>(rng() % static_cast<uint32_t>(n));
  };
  const int n_batches = 1 + pick(3);
  for (int b = 0; b < n_batches; ++b) {
    std::vector<std::string> batch;
    const int n_facts = 1 + pick(3);
    for (int f = 0; f < n_facts; ++f) {
      std::ostringstream fact;
      if (closure) {
        fact << "E(" << pick(9) << ", " << pick(9) << ")";
      } else {
        switch (pick(3)) {
          case 0:
            fact << "PW(\"w" << pick(8) << "\", \"p" << pick(10) << "\")";
            break;
          case 1:
            fact << "UW(\"u" << pick(6) << "\", \"w" << pick(8) << "\")";
            break;
          default:
            fact << "WS(\"u" << pick(6) << "\", \"n" << pick(6) << "\")";
            break;
        }
      }
      batch.push_back(fact.str());
    }
    out.batches.push_back(std::move(batch));
  }
  return out;
}

ServeWorkload GenerateServeWorkload(uint32_t seed, size_t n_ops,
                                    int tenants) {
  std::mt19937 rng(seed * 40503u + 9973u);
  auto pick = [&rng](int n) {
    return static_cast<int>(rng() % static_cast<uint32_t>(n));
  };
  if (tenants < 2) tenants = 2;

  ServeWorkload out;
  out.ops.reserve(n_ops);
  // Inserted-but-not-yet-deleted rows, in insert order. The row key is
  // seed-tagged so workloads with different seeds (one per client thread
  // in the soak test) never generate colliding rows.
  struct Row {
    std::string time, patient, value;
  };
  std::vector<Row> live;
  uint32_t next_row = 0;

  const char* queries[] = {
      "Q(P, V) :- Measurements(T, P, V).",
      "Q(T, V) :- Measurements(T, \"Tom Waits\", V).",
      "Q(T, P, V) :- Measurements(T, P, V), V > 37.5.",
      "Q(P) :- Measurements(T, P, V).",
  };

  for (size_t i = 0; i < n_ops; ++i) {
    ServeOp op;
    op.tenant = (pick(2) == 0) ? "hot"
                               : "cold" + std::to_string(pick(tenants - 1));
    const int roll = pick(10);
    if (roll < 6) {  // 60% queries, mixed clean/raw
      op.kind = ServeOp::Kind::kQuery;
      // Datalog constants carry quotes; escape them for the JSON body.
      std::string escaped;
      for (char c : std::string_view(queries[pick(4)])) {
        if (c == '"' || c == '\\') escaped.push_back('\\');
        escaped.push_back(c);
      }
      std::ostringstream body;
      body << "{\"query\": \"" << escaped << "\", \"clean\": "
           << (pick(3) == 0 ? "false" : "true") << "}";
      op.body = body.str();
    } else if (roll < 7) {  // 10% report reads
      op.kind = ServeOp::Kind::kReport;
    } else if (roll < 9 || live.empty()) {  // inserts, in bursts of 1..3
      op.kind = ServeOp::Kind::kInsert;
      std::ostringstream body;
      body << "{\"relation\": \"Measurements\", \"insert\": [";
      const int burst = 1 + pick(3);
      for (int b = 0; b < burst; ++b) {
        Row row;
        row.time = "Sep/" + std::to_string(5 + pick(5)) + "-" +
                   std::to_string(10 + pick(10)) + ":" +
                   std::to_string(10 + pick(50)) + ".s" +
                   std::to_string(seed) + "r" + std::to_string(next_row++);
        row.patient = "Gen Patient " + std::to_string(pick(6));
        row.value =
            std::to_string(36 + pick(3)) + "." + std::to_string(pick(10));
        if (b > 0) body << ", ";
        body << "[\"" << row.time << "\", \"" << row.patient << "\", \""
             << row.value << "\"]";
        op.row_times.push_back(row.time);
        live.push_back(std::move(row));
      }
      body << "]}";
      op.body = body.str();
    } else {  // deletes, only of rows this stream inserted earlier
      op.kind = ServeOp::Kind::kDelete;
      const size_t victim = static_cast<size_t>(
          pick(static_cast<int>(live.size())));
      const Row& row = live[victim];
      std::ostringstream body;
      body << "{\"relation\": \"Measurements\", \"delete\": [[\""
           << row.time << "\", \"" << row.patient << "\", \"" << row.value
           << "\"]]}";
      op.body = body.str();
      op.row_times.push_back(row.time);
      live.erase(live.begin() + static_cast<long>(victim));
    }
    out.ops.push_back(std::move(op));
  }
  return out;
}

}  // namespace mdqa::testgen
