// Seeded scenario corpus + adversarial workload generator: builds full
// quality-assessment contexts (ontology + contextual/quality rules +
// database) across the scenario families of the journal version of the
// paper (arXiv:1704.00115) — deep and ragged dimension hierarchies,
// form-(10) disjunctive downward navigation, multi-dimension categorical
// relations, skewed fact distributions — with **dirty-data injection and
// recorded ground truth**: the generator plants known violations
// (attribute corruption, hierarchy misplacement, missing contextual
// facts) and computes the expected quality verdict of every database
// tuple by an independent graph-walk simulation, so `Assessor` verdicts
// get precision/recall numbers instead of just byte-diff parity.
//
// Everything is a pure function of `ScenarioSpec` (no wall-clock
// randomness, no global state), so any failing matrix cell reproduces
// from (family, seed) alone — see docs/testing.md.
#ifndef MDQA_TESTGEN_SCENARIO_H_
#define MDQA_TESTGEN_SCENARIO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/json.h"
#include "base/result.h"
#include "quality/assessor.h"
#include "quality/context.h"

namespace mdqa::testgen {

/// The scenario families of the matrix, mapped to the paper's forms in
/// docs/paper_mapping.md.
enum class ScenarioFamily {
  /// Deep linear homogeneous hierarchy (depth 5): quality requires
  /// upward navigation over a chain of virtual categorical relations,
  /// one per level — rule (7) iterated.
  kDeepHomogeneous,
  /// Ragged/heterogeneous hierarchy: the base category has TWO parent
  /// categories (a skip edge straight to the certification level), and
  /// some members roll up only through the skip edge.
  kRaggedHeterogeneous,
  /// Form-(10) disjunctive downward navigation (rule (9)'s shape): a
  /// discharge-style relation places entities in *some* unit of a
  /// region via an existential categorical variable. Entities supported
  /// only by that possible-world navigation are never certainly clean.
  kDisjunctiveDownward,
  /// Three dimensions; the quality condition navigates two of them
  /// (certification through the area hierarchy AND an instrument-grade
  /// roll-up), joining multi-dimension categorical relations.
  kMultiDimensional,
  /// Zipf-skewed fact distribution: a hot ward holds most entities and
  /// a hot entity produces most measurements — the adversarial shape
  /// for per-relation fan-out and trigger sharding.
  kSkewedTenants,
};

inline constexpr ScenarioFamily kAllScenarioFamilies[] = {
    ScenarioFamily::kDeepHomogeneous,
    ScenarioFamily::kRaggedHeterogeneous,
    ScenarioFamily::kDisjunctiveDownward,
    ScenarioFamily::kMultiDimensional,
    ScenarioFamily::kSkewedTenants,
};

const char* ScenarioFamilyToString(ScenarioFamily f);

/// Why a database tuple is expected to be dirty (kNone = expected clean).
enum class ViolationKind {
  kNone,
  kCorruptAttribute,   ///< planted: entity overwritten with a ghost value
  kMisplacedMember,    ///< planted: ward re-linked under an uncertified unit
  kMissingContext,     ///< planted: the supporting schedule fact was dropped
  kUncertified,        ///< organic: the path exists but ends uncertified
  kWrongInstrument,    ///< organic: instrument rolls up to a bad grade
  kPossibleOnly,       ///< form (10): only disjunctive (null) support
};

const char* ViolationKindToString(ViolationKind k);

/// Ground truth for one database row: the row (rendered exactly as it was
/// inserted), its expected verdict, and — when dirty — why.
struct TupleVerdict {
  std::vector<std::string> fields;
  bool clean = false;
  ViolationKind violation = ViolationKind::kNone;
};

/// Knobs of one generated scenario. `SpecFor` fills family-canonical
/// values; every field is honored by `Generate`, so tests can also build
/// off-matrix shapes.
struct ScenarioSpec {
  ScenarioFamily family = ScenarioFamily::kDeepHomogeneous;
  uint32_t seed = 0;
  int depth = 3;     ///< hierarchy levels incl. the single-member top
  int fanout = 3;    ///< children per member, level to level
  int entities = 10; ///< distinct measured entities
  int days = 3;
  int rows = 30;     ///< measurement rows (entity drawn per row)
  double zipf_s = 0.0;  ///< >0: Zipf exponent for ward/entity skew
  // Planted violations (each count is a target; the generator plants at
  // most that many and records what it actually planted).
  int corruptions = 2;
  int misplacements = 1;
  int missing_facts = 1;
  // Seeded update stream for the incremental/serve paths.
  int update_batches = 2;
  int updates_per_batch = 3;
  /// The last batch also deletes one base row (exercising the recorded
  /// full-re-chase path) when true.
  bool delete_in_last_batch = true;
};

/// Canonical spec of (family, seed): small enough that the full matrix
/// runs in seconds, varied enough that seeds differ structurally.
ScenarioSpec SpecFor(ScenarioFamily family, uint32_t seed);

/// One update batch plus the ground truth of the WHOLE database after
/// applying it (cumulative — batch k's verdicts describe the state after
/// batches 0..k).
struct ScenarioUpdate {
  quality::DeltaBatch batch;
  std::vector<TupleVerdict> verdicts_after;
};

/// A fully generated scenario: a ready-to-assess quality context over
/// the generated ontology, the per-tuple ground truth of its database,
/// and a seeded update stream with ground truth after every batch.
struct GeneratedScenario {
  ScenarioSpec spec;
  quality::QualityContext context;
  /// Name of the (single) assessed relation.
  std::string relation;
  /// Ground truth of the initial database, one entry per row.
  std::vector<TupleVerdict> truth;
  std::vector<ScenarioUpdate> updates;
  /// How many violations of each planted kind actually landed (a planted
  /// corruption can hit a row that was already dirty; these count rows
  /// whose expected verdict is dirty *with that reason*).
  size_t planted_corrupt = 0;
  size_t planted_misplaced = 0;
  size_t planted_missing = 0;
};

/// Deterministic scenario construction: same spec ⇒ byte-identical
/// scenario (program, database, ground truth, update stream) — pinned by
/// tests/testgen_test.cc across threads and process runs.
class ScenarioGenerator {
 public:
  static Result<GeneratedScenario> Generate(const ScenarioSpec& spec);
};

/// Canonical byte-level rendering of everything `Generate` produced:
/// the compiled contextual program, the database, the ground truth, and
/// the update stream. Two scenarios are the same iff their fingerprints
/// are byte-identical.
Result<std::string> ScenarioFingerprint(const GeneratedScenario& scenario);

/// Precision/recall of an assessment's per-tuple verdicts against ground
/// truth, treating *dirty* as the positive (detection) class:
///   precision = |flagged ∩ truly-dirty| / |flagged|
///   recall    = |flagged ∩ truly-dirty| / |truly-dirty|
/// (1.0 on empty denominators). Exact engines on the generated families
/// must score precision = recall = 1.0.
struct VerdictScore {
  size_t rows = 0;
  size_t expected_dirty = 0;
  size_t flagged_dirty = 0;
  size_t true_positives = 0;
  double precision = 1.0;
  double recall = 1.0;
  /// Rendered mismatches (empty when precision == recall == 1.0).
  std::vector<std::string> mismatches;
};

/// Scores `report`'s verdicts for `relation` against `truth`. Fails with
/// kNotFound when the report carries no entry for the relation (e.g. it
/// was degraded), and kFailedPrecondition when the report's row coverage
/// does not match the ground truth's rows.
Result<VerdictScore> ScoreVerdicts(const quality::AssessmentReport& report,
                                   const std::string& relation,
                                   const std::vector<TupleVerdict>& truth);

/// One row of the BENCH_scenarios.json matrix (see bench_scenarios.cc).
/// The schema is rendered by `WriteScenarioBenchRecords` and round-trip
/// pinned by tests/json_test.cc.
struct ScenarioBenchRecord {
  std::string family;
  uint32_t seed = 0;
  size_t edb_rows = 0;          ///< database + contextual facts
  size_t chase_facts = 0;       ///< materialized instance size
  size_t dirty_expected = 0;
  std::string engine_recommended;
  /// Wall-clock per engine configuration, milliseconds. Parallel vectors.
  std::vector<std::string> engines;
  std::vector<double> assess_ms;
  double incremental_ms = 0;    ///< Reassess after one update batch
  double full_reassess_ms = 0;  ///< fresh Assess on the updated database
  bool planner_pick_fastest = false;
  bool reports_identical = false;  ///< serial == parallel == incremental
};

/// Renders `records` as the `"families"` array of BENCH_scenarios.json:
/// an array of objects whose `"engines"` member is a nested array of
/// `[name, assess_ms]` pairs. The writer must be inside an open object
/// with a pending key situation handled by the caller (call
/// `w->Key("families")` first).
void WriteScenarioBenchRecords(JsonWriter* w,
                               const std::vector<ScenarioBenchRecord>& records);

}  // namespace mdqa::testgen

#endif  // MDQA_TESTGEN_SCENARIO_H_
