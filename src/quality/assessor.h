#ifndef MDQA_QUALITY_ASSESSOR_H_
#define MDQA_QUALITY_ASSESSOR_H_

#include <string>
#include <vector>

#include "base/budget.h"
#include "base/result.h"
#include "base/thread_pool.h"
#include "quality/context.h"
#include "quality/measures.h"

namespace mdqa::quality {

/// A relation whose quality version could not be computed within its
/// budget (or tripped a fault probe): the assessment degrades this entry
/// instead of failing the whole report.
struct RelationFailure {
  std::string relation;
  /// The status that stopped the computation (after the final attempt).
  Status status;
  /// Attempts made, including retries under escalated budgets.
  int attempts = 0;
};

/// A full assessment of the database under a context: per-relation quality
/// versions and measures, plus validation results.
struct AssessmentReport {
  /// One entry per relation with a defined quality version.
  std::vector<QualityMeasures> per_relation;
  /// Computed quality versions, parallel to `per_relation`.
  std::vector<Relation> quality_versions;
  /// The dirty tuples per relation (D \ D^q), parallel to `per_relation`
  /// — the rows a cleaning pass would flag for review.
  std::vector<Relation> dirty_tuples;
  /// Micro-averaged precision over all assessed relations.
  double overall_precision = 1.0;
  /// Outcome of the ontology's dimensional constraints against the
  /// contextual data (OK, or the first kInconsistent witness).
  Status constraint_check;
  /// Outcome of the form-(1) referential validation.
  Status referential_check;
  /// Relations whose quality version blew its budget / tripped a fault —
  /// excluded from the vectors above and from `overall_precision`.
  std::vector<RelationFailure> degraded;
  /// kTruncated when the report rests on partial work: a truncated
  /// materialization, a truncated quality-version read-off, or one or
  /// more degraded relations. The measures reported are still sound
  /// under-approximations of the quality versions (chase monotonicity).
  Completeness completeness = Completeness::kComplete;
  /// The first budget status that forced the degradation (OK when
  /// complete).
  Status interruption;

  // --- pre-run gate (mdqa_lint + classification; see AssessOptions) ---
  /// Syntactic class of the compiled contextual program
  /// (ProgramAnalysis::ClassName()).
  std::string program_class;
  /// Engine the run actually used.
  qa::Engine engine_used = qa::Engine::kChase;
  /// Engine the cost-based planner recommends (== engine_used under
  /// `auto_engine`), and why.
  qa::Engine engine_recommended = qa::Engine::kChase;
  std::string engine_reason;
  /// The planner's predicted cost of `engine_used` (deterministic work
  /// units — a pure function of rules + EDB statistics, see
  /// analysis::CostModel) and the measured counterpart: the total fact
  /// count of the materialized instance the run evaluated on (0 when
  /// materialization failed as kInconsistent). Both are integers so
  /// reports stay byte-identical across serial/parallel and
  /// incremental/from-scratch runs.
  uint64_t predicted_cost = 0;
  uint64_t actual_cost = 0;
  /// Lint findings over the compiled program and ontology (0/0 when the
  /// gate is disabled). `lint_text` renders warnings and errors.
  size_t lint_errors = 0;
  size_t lint_warnings = 0;
  std::string lint_text;

  /// Per-tuple verdict lookups by relation name (the scenario-matrix
  /// harness scores these against generated ground truth): the quality
  /// version D^q, the dirty rows D \ D^q, and the measures entry.
  /// nullptr when the relation was degraded or never assessed.
  const Relation* QualityVersionOf(const std::string& relation) const;
  const Relation* DirtyOf(const std::string& relation) const;
  const QualityMeasures* MeasuresOf(const std::string& relation) const;

  std::string ToString() const;

  /// Machine-readable form: checks, per-relation measures, and the dirty
  /// tuples (as arrays of display strings) — for dashboards/monitoring.
  std::string ToJson() const;
};

/// Controls for one assessment run.
struct AssessOptions {
  qa::Engine engine = qa::Engine::kChase;
  /// Global budget for the run: its deadline, cancellation token, and
  /// fault injector also govern every per-relation computation (via
  /// derived budgets), and the initial materialization charges against
  /// it directly. Not owned.
  ExecutionBudget* budget = nullptr;
  /// Per-relation counter caps (0 = uncapped). Each relation's quality
  /// version is computed under its own derived budget with these caps,
  /// so one runaway relation cannot starve the others.
  uint64_t per_relation_max_facts = 0;
  uint64_t per_relation_max_steps = 0;
  /// A relation whose budget trips is retried up to `max_retries` more
  /// times, multiplying its counter caps by `escalation_factor` each
  /// attempt, before being degraded to a RelationFailure entry.
  int max_retries = 1;
  double escalation_factor = 4.0;
  /// Extra fault injector applied to per-relation budgets (probe
  /// "assessor:relation" fires once per relation gate). Takes precedence
  /// over `budget`'s injector for those probes when set. Not owned.
  FaultInjector* fault_injector = nullptr;
  /// Pre-run static analysis gate: lints the compiled contextual program
  /// and the ontology before any chase work. Error-level findings abort
  /// the run with kFailedPrecondition (the rendered diagnostics ride in
  /// the status message) unless `lint_warn_only` downgrades the refusal
  /// to a report entry. Findings are recorded in the report either way.
  bool lint_gate = true;
  bool lint_warn_only = false;
  /// Adopt the engine the cost-based planner recommends (minimum
  /// predicted cost among the engines that are sound for the program)
  /// instead of `engine`. The recommendation is recorded in the report
  /// even when this is off.
  bool auto_engine = false;
  /// Drop TGDs the dead-rule analysis proves irrelevant (no influence on
  /// any quality predicate, EGD, constraint, or output predicate) before
  /// materializing — the chase then skips their consequences entirely.
  /// Answer-preserving: quality versions, measures, and consistency
  /// verdicts are unchanged; only the materialization (and therefore
  /// `actual_cost`) shrinks. The pre-run gate still classifies and lints
  /// the *unpruned* program. Off by default.
  bool prune_dead_rules = false;
  /// When non-null: the materialization chase parallelizes its trigger
  /// matching on this pool, and — on the prepared kChase path — the
  /// per-relation quality versions are computed concurrently, each under
  /// its own derived budget, and merged into the report in relation
  /// order. Reports are byte-identical to a serial run as long as no
  /// deadline, cancellation, or fault probe trips (per-relation *counter*
  /// caps are private to each relation, so their kTruncated outcomes are
  /// deterministic at any thread count). After a cancellation a parallel
  /// run may still report relations a serial run would have skipped —
  /// work already finished is kept. Not owned.
  ThreadPool* pool = nullptr;
  /// Physical fact-table layout for the materialization chase and every
  /// per-relation evaluation. Columnar (the default) enables the
  /// vectorized block-join executor; `kRow` is the legacy row store,
  /// kept as an escape hatch and as the reference side of the
  /// row-vs-columnar differential harness. Reports are byte-identical
  /// under either mode.
  datalog::StorageMode storage = datalog::StorageMode::kColumnar;
};

/// Drives the Fig. 2 pipeline end to end: validates the ontology, runs
/// constraint checks, computes every registered quality version, and
/// measures each original relation against it.
///
/// With an `AssessOptions` budget, failures are isolated per relation:
/// a relation whose computation exhausts its (escalating) budget is
/// recorded in `AssessmentReport::degraded` while every other relation
/// is still assessed; cancellation stops the run but still returns the
/// report built so far.
class Assessor {
 public:
  explicit Assessor(const QualityContext* context) : context_(context) {}

  Result<AssessmentReport> Assess(
      qa::Engine engine = qa::Engine::kChase) const;

  Result<AssessmentReport> Assess(const AssessOptions& options) const;

  /// Incremental re-assessment after a `PreparedContext::ApplyUpdate`:
  /// `session` is the updated session, `previous` the report of the
  /// session it was derived from. Only relations whose quality queries
  /// transitively depend on the updated relations (predicate-dependency
  /// closure over the contextual program) — plus any relation missing
  /// from or degraded in `previous` — are recomputed; every other entry
  /// is copied from `previous` verbatim. Programs with EGDs recompute
  /// every relation (a null merge can ripple into any predicate). The
  /// report renders byte-identically to a full assessment of the updated
  /// database. Always reads the session's materialized instance (chase
  /// engine), whatever `options.engine` says.
  Result<AssessmentReport> Reassess(
      const PreparedContext& session, const AssessmentReport& previous,
      const AssessOptions& options = AssessOptions()) const;

 private:
  const QualityContext* context_;
};

}  // namespace mdqa::quality

#endif  // MDQA_QUALITY_ASSESSOR_H_
