#ifndef MDQA_QUALITY_ASSESSOR_H_
#define MDQA_QUALITY_ASSESSOR_H_

#include <string>
#include <vector>

#include "base/result.h"
#include "quality/context.h"
#include "quality/measures.h"

namespace mdqa::quality {

/// A full assessment of the database under a context: per-relation quality
/// versions and measures, plus validation results.
struct AssessmentReport {
  /// One entry per relation with a defined quality version.
  std::vector<QualityMeasures> per_relation;
  /// Computed quality versions, parallel to `per_relation`.
  std::vector<Relation> quality_versions;
  /// The dirty tuples per relation (D \ D^q), parallel to `per_relation`
  /// — the rows a cleaning pass would flag for review.
  std::vector<Relation> dirty_tuples;
  /// Micro-averaged precision over all assessed relations.
  double overall_precision = 1.0;
  /// Outcome of the ontology's dimensional constraints against the
  /// contextual data (OK, or the first kInconsistent witness).
  Status constraint_check;
  /// Outcome of the form-(1) referential validation.
  Status referential_check;

  std::string ToString() const;

  /// Machine-readable form: checks, per-relation measures, and the dirty
  /// tuples (as arrays of display strings) — for dashboards/monitoring.
  std::string ToJson() const;
};

/// Drives the Fig. 2 pipeline end to end: validates the ontology, runs
/// constraint checks, computes every registered quality version, and
/// measures each original relation against it.
class Assessor {
 public:
  explicit Assessor(const QualityContext* context) : context_(context) {}

  Result<AssessmentReport> Assess(
      qa::Engine engine = qa::Engine::kChase) const;

 private:
  const QualityContext* context_;
};

}  // namespace mdqa::quality

#endif  // MDQA_QUALITY_ASSESSOR_H_
