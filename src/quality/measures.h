#ifndef MDQA_QUALITY_MEASURES_H_
#define MDQA_QUALITY_MEASURES_H_

#include <string>

#include "base/result.h"
#include "relational/relation.h"

namespace mdqa::quality {

/// Quality of an original relation `D` measured against its quality
/// version `D^q` (the paper's "how much it departs from its quality
/// version", after Bertossi–Rizzolo–Lei):
///
///  - precision: |D ∩ D^q| / |D|   — fraction of stored tuples that are
///    quality tuples (1 when nothing dirty is stored);
///  - recall:    |D ∩ D^q| / |D^q| — fraction of required quality tuples
///    actually stored (1 when the quality version invents nothing new);
///  - f1: their harmonic mean.
///
/// Empty denominators yield measure 1.0 (an empty relation departs from
/// an empty quality version by nothing).
struct QualityMeasures {
  std::string relation;
  size_t original_size = 0;
  size_t quality_size = 0;
  size_t common = 0;
  double precision = 1.0;
  double recall = 1.0;
  double f1 = 1.0;

  std::string ToString() const;

  /// `{"relation": ..., "original_size": ..., "precision": ...}`.
  std::string ToJson() const;
};

/// Computes the measures for `original` against `quality` (arity must
/// match; attribute names may differ).
Result<QualityMeasures> Measure(const Relation& original,
                                const Relation& quality);

}  // namespace mdqa::quality

#endif  // MDQA_QUALITY_MEASURES_H_
