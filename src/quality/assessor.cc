#include "quality/assessor.h"

#include <algorithm>
#include <cstdio>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include <memory>

#include "analysis/cost_model.h"
#include "analysis/lint.h"
#include "base/json.h"
#include "datalog/analysis.h"
#include "datalog/chase.h"

namespace mdqa::quality {

namespace {

// Index of `relation` in the report's parallel vectors, or -1.
int RelationIndex(const std::vector<QualityMeasures>& per_relation,
                  const std::string& relation) {
  for (size_t i = 0; i < per_relation.size(); ++i) {
    if (per_relation[i].relation == relation) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace

const Relation* AssessmentReport::QualityVersionOf(
    const std::string& relation) const {
  const int i = RelationIndex(per_relation, relation);
  if (i < 0 || static_cast<size_t>(i) >= quality_versions.size()) {
    return nullptr;
  }
  return &quality_versions[static_cast<size_t>(i)];
}

const Relation* AssessmentReport::DirtyOf(const std::string& relation) const {
  const int i = RelationIndex(per_relation, relation);
  if (i < 0 || static_cast<size_t>(i) >= dirty_tuples.size()) return nullptr;
  return &dirty_tuples[static_cast<size_t>(i)];
}

const QualityMeasures* AssessmentReport::MeasuresOf(
    const std::string& relation) const {
  const int i = RelationIndex(per_relation, relation);
  return i < 0 ? nullptr : &per_relation[static_cast<size_t>(i)];
}

std::string AssessmentReport::ToString() const {
  std::string out = "=== quality assessment report ===\n";
  if (!program_class.empty()) {
    out += "program class: " + program_class + "\n";
    out += std::string("engine: ") + qa::EngineToString(engine_used) +
           " (recommended: " + qa::EngineToString(engine_recommended) +
           " — " + engine_reason + ")\n";
    out += "cost: predicted " + std::to_string(predicted_cost) +
           " work units, actual " + std::to_string(actual_cost) +
           " facts materialized\n";
  }
  if (lint_errors + lint_warnings > 0) {
    out += "lint: " + std::to_string(lint_errors) + " error(s), " +
           std::to_string(lint_warnings) + " warning(s)\n";
    out += lint_text;
  }
  out += "referential (form (1)): " + referential_check.ToString() + "\n";
  out += "dimensional constraints: " + constraint_check.ToString() + "\n";
  for (const QualityMeasures& m : per_relation) {
    out += "  " + m.ToString() + "\n";
  }
  for (const RelationFailure& f : degraded) {
    out += "  DEGRADED " + f.relation + ": " + f.status.ToString() +
           " (after " + std::to_string(f.attempts) + " attempt" +
           (f.attempts == 1 ? "" : "s") + ")\n";
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "overall precision: %.3f\n",
                overall_precision);
  out += buf;
  if (completeness == Completeness::kTruncated) {
    out += std::string("completeness: truncated (") +
           interruption.ToString() + ")\n";
  }
  return out;
}

std::string AssessmentReport::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("program_class").String(program_class);
  w.Key("engine_used").String(qa::EngineToString(engine_used));
  w.Key("engine_recommended").String(qa::EngineToString(engine_recommended));
  w.Key("engine_reason").String(engine_reason);
  w.Key("predicted_cost").Number(static_cast<size_t>(predicted_cost));
  w.Key("actual_cost").Number(static_cast<size_t>(actual_cost));
  w.Key("lint_errors").Number(lint_errors);
  w.Key("lint_warnings").Number(lint_warnings);
  w.Key("referential_check").String(referential_check.ToString());
  w.Key("constraint_check").String(constraint_check.ToString());
  w.Key("overall_precision").Number(overall_precision);
  w.Key("completeness").String(CompletenessToString(completeness));
  w.Key("interruption").String(interruption.ToString());
  w.Key("relations").BeginArray();
  for (size_t i = 0; i < per_relation.size(); ++i) {
    const QualityMeasures& m = per_relation[i];
    w.BeginObject();
    w.Key("relation").String(m.relation);
    w.Key("original_size").Number(m.original_size);
    w.Key("quality_size").Number(m.quality_size);
    w.Key("common").Number(m.common);
    w.Key("precision").Number(m.precision);
    w.Key("recall").Number(m.recall);
    w.Key("f1").Number(m.f1);
    w.Key("dirty_tuples").BeginArray();
    if (i < dirty_tuples.size()) {
      for (const Tuple& row : dirty_tuples[i].SortedRows()) {
        w.BeginArray();
        for (const Value& v : row) w.String(v.ToString());
        w.EndArray();
      }
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.Key("degraded").BeginArray();
  for (const RelationFailure& f : degraded) {
    w.BeginObject();
    w.Key("relation").String(f.relation);
    w.Key("status").String(f.status.ToString());
    w.Key("attempts").Number(static_cast<int64_t>(f.attempts));
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

Result<AssessmentReport> Assessor::Assess(qa::Engine engine) const {
  AssessOptions options;
  options.engine = engine;
  return Assess(options);
}

Result<AssessmentReport> Assessor::Assess(const AssessOptions& opts) const {
  AssessmentReport report;

  // Pre-run gate: compile and classify the contextual program ONCE —
  // the analysis is shared by the lint gate, the cost-based engine
  // planner, and (through the prepared session) the incremental chase.
  MDQA_ASSIGN_OR_RETURN(datalog::Program program, context_->BuildProgram());
  auto program_analysis =
      std::make_shared<const datalog::ProgramAnalysis>(program);
  std::vector<std::string> quality_preds;
  for (const std::string& rel : context_->AssessedRelations()) {
    Result<std::string> q = context_->QualityPredicateOf(rel);
    if (q.ok()) quality_preds.push_back(*q);
  }
  qa::Engine engine = opts.engine;
  {
    report.program_class = program_analysis->ClassName();
    MDQA_ASSIGN_OR_RETURN(core::OntologyProperties properties,
                          context_->ontology().Analyze());
    qa::EngineSelectOptions select_options;
    select_options.egds_separable = properties.separable_egds;
    const analysis::CostModel cost_model(
        program, *program_analysis,
        analysis::CostModel::CollectEdbStats(program));
    select_options.cost_model = &cost_model;
    qa::EngineSelection selection =
        qa::SelectEngine(program, *program_analysis, select_options);
    report.engine_recommended = selection.engine;
    report.engine_reason = std::move(selection.reason);
    if (opts.auto_engine) engine = report.engine_recommended;
    report.engine_used = engine;
    for (const qa::EngineCandidate& c : selection.candidates) {
      if (c.engine == engine) report.predicted_cost = c.predicted_cost;
    }

    if (opts.lint_gate) {
      analysis::DiagnosticBag bag;
      analysis::LintOptions lint_options;
      lint_options.min_severity = analysis::Severity::kWarning;
      lint_options.form_notes = false;
      lint_options.file = "<context>";
      lint_options.analysis = program_analysis.get();
      lint_options.goal_predicates = quality_preds;
      analysis::LintProgram(program, lint_options, &bag);
      analysis::LintOntology(context_->ontology(), lint_options, &bag);
      bag.Sort();
      report.lint_errors = bag.errors();
      report.lint_warnings = bag.warnings();
      report.lint_text = bag.ToText();
      if (bag.errors() > 0 && !opts.lint_warn_only) {
        return Status::FailedPrecondition(
            "lint gate: " + std::to_string(bag.errors()) +
            " error-level finding(s) in the contextual program/ontology "
            "(set lint_warn_only to proceed anyway):\n" +
            bag.ToText());
      }
    }
  }

  report.referential_check = context_->ontology().ValidateReferential();

  auto note_truncated = [&report](const Status& why) {
    report.completeness = Completeness::kTruncated;
    if (report.interruption.ok()) report.interruption = why;
  };

  // One materialization serves both the constraint check and (when the
  // data is consistent and the default engine is in use) every quality
  // version below. An Inconsistent status is a finding, not a failure of
  // the assessment itself; a budget trip here leaves a partial (sound)
  // instance the per-relation read-offs below still work against.
  datalog::ChaseOptions chase_options;
  chase_options.budget = opts.budget;
  chase_options.pool = opts.pool;
  chase_options.storage = opts.storage;
  // Optional answer-preserving prune: TGDs that provably cannot reach a
  // quality predicate, EGD, constraint, or output predicate are dropped
  // from the *chased* program only — the gate above classified and
  // linted the program as written.
  datalog::Program chase_program = std::move(program);
  std::shared_ptr<const datalog::ProgramAnalysis> chase_analysis =
      program_analysis;
  if (opts.prune_dead_rules) {
    std::unordered_set<uint32_t> goals;
    const datalog::Vocabulary* vocab = chase_program.vocab().get();
    for (const std::string& q : quality_preds) {
      const uint32_t pred = vocab->FindPredicate(q);
      if (pred != StringPool::kNotFound) goals.insert(pred);
    }
    chase_program = datalog::PruneDeadRules(chase_program, goals);
    chase_analysis =
        std::make_shared<const datalog::ProgramAnalysis>(chase_program);
  }
  Result<PreparedContext> prepared = context_->Prepare(
      chase_options, std::move(chase_program), std::move(chase_analysis));
  if (!prepared.ok() &&
      prepared.status().code() != StatusCode::kInconsistent) {
    return prepared.status();  // real failure (parse, validation, ...)
  }
  report.constraint_check =
      prepared.ok() ? Status::Ok() : prepared.status();
  report.actual_cost = prepared.ok() ? prepared->statistics().total_facts : 0;
  if (prepared.ok() && prepared->chase_stats().completeness ==
                           Completeness::kTruncated) {
    note_truncated(prepared->chase_stats().interruption);
  }

  const bool use_prepared = prepared.ok() && engine == qa::Engine::kChase;
  const std::vector<std::string> names = context_->AssessedRelations();

  // The outcome of one relation's assessment, produced by `assess_one`
  // without touching any shared report state — so relations can run
  // concurrently and merge deterministically in relation order below.
  struct RelationOutcome {
    Status hard_error;  // non-OK aborts the whole assessment at merge
    bool computed = false;
    Status failure;  // degradation status when !computed
    int attempts = 0;
    std::optional<QualityMeasures> measures;
    std::optional<Relation> quality;
    std::optional<Relation> dirty;
  };
  std::vector<RelationOutcome> outcomes(names.size());

  // Fault isolation: each relation computes under its own derived
  // budget, retrying with escalated counter caps on exhaustion, so a
  // single runaway quality version degrades to a RelationFailure
  // instead of sinking the whole report. The derived budget's counters
  // are private to the relation, which keeps counter-cap kTruncated
  // outcomes deterministic even when relations run concurrently.
  auto assess_one = [&](const std::string& name, RelationOutcome* out) {
    Result<const Relation*> orig = context_->database().GetRelation(name);
    if (!orig.ok()) {
      out->hard_error = orig.status();
      return;
    }
    const Relation* original = *orig;
    Status failure;
    double scale = 1.0;
    for (int attempt = 0; attempt <= opts.max_retries;
         ++attempt, scale *= opts.escalation_factor) {
      ++out->attempts;
      ExecutionBudget rb;
      if (opts.budget != nullptr) rb.InheritControlsFrom(*opts.budget);
      if (opts.fault_injector != nullptr) {
        rb.set_fault_injector(opts.fault_injector);
      }
      if (opts.per_relation_max_facts > 0) {
        rb.set_max_facts(static_cast<uint64_t>(
            static_cast<double>(opts.per_relation_max_facts) * scale));
      }
      if (opts.per_relation_max_steps > 0) {
        rb.set_max_steps(static_cast<uint64_t>(
            static_cast<double>(opts.per_relation_max_steps) * scale));
      }
      failure = rb.CheckNow("assessor:relation");
      if (failure.ok()) {
        Status interruption;
        Result<Relation> r =
            use_prepared
                ? prepared->QualityVersion(name, &rb, &interruption)
                : context_->ComputeQualityVersion(name, engine, &rb,
                                                  &interruption);
        if (r.ok() && interruption.ok()) {
          out->quality = std::move(r).value();
          out->computed = true;
          break;
        }
        // A truncated quality version is a budget trip for this
        // relation: partial measures would misreport, so retry bigger.
        failure = r.ok() ? std::move(interruption) : r.status();
      }
      if (!ExecutionBudget::IsTruncation(failure)) break;  // hard fault
      if (failure.code() == StatusCode::kCancelled) break;
    }
    if (!out->computed) {
      out->failure = std::move(failure);
      return;
    }
    Result<QualityMeasures> m = Measure(*original, *out->quality);
    if (!m.ok()) {
      out->hard_error = m.status();
      return;
    }
    Result<Relation> dirty = original->Minus(*out->quality);
    if (!dirty.ok()) {
      out->hard_error = dirty.status();
      return;
    }
    out->measures = std::move(*m);
    out->dirty = std::move(*dirty);
  };

  // Fan the relations out across the pool on the prepared path, where
  // QualityVersion only reads the shared materialized instance. The
  // other engines rebuild the contextual program per relation, which
  // mutates the shared Vocabulary — those stay serial.
  const bool parallel =
      opts.pool != nullptr && use_prepared && names.size() > 1;
  if (parallel) {
    opts.pool->ParallelFor(
        names.size(), [&](size_t i) { assess_one(names[i], &outcomes[i]); });
  }

  // Merge in relation order — the report is a pure function of the
  // per-relation outcomes, so serial and parallel runs render
  // identically (absent cancellation, see below).
  size_t total_original = 0;
  size_t total_common = 0;
  Status cancelled;  // non-OK once a kCancelled trip stops the run
  for (size_t i = 0; i < names.size(); ++i) {
    RelationOutcome& out = outcomes[i];
    if (!cancelled.ok()) {
      // Serial contract: relations after a cancellation are not
      // attempted. A parallel run may have finished some of them
      // already — completed work is kept, the rest report cancelled.
      if (!parallel || !out.computed) {
        report.degraded.push_back(RelationFailure{names[i], cancelled, 0});
        continue;
      }
    } else if (!parallel) {
      assess_one(names[i], &out);
    }
    MDQA_RETURN_IF_ERROR(out.hard_error);
    if (!out.computed) {
      note_truncated(out.failure);
      if (out.failure.code() == StatusCode::kCancelled) {
        cancelled = out.failure;
      }
      report.degraded.push_back(
          RelationFailure{names[i], std::move(out.failure), out.attempts});
      continue;
    }
    total_original += out.measures->original_size;
    total_common += out.measures->common;
    report.per_relation.push_back(std::move(*out.measures));
    report.quality_versions.push_back(std::move(*out.quality));
    report.dirty_tuples.push_back(std::move(*out.dirty));
  }
  report.overall_precision =
      total_original == 0 ? 1.0
                          : static_cast<double>(total_common) /
                                static_cast<double>(total_original);
  return report;
}

Result<AssessmentReport> Assessor::Reassess(const PreparedContext& session,
                                            const AssessmentReport& previous,
                                            const AssessOptions& opts) const {
  AssessmentReport report;
  const datalog::Program& program = session.program();

  // Same pre-run gate as Assess, over the session's (updated) program,
  // reusing the session's shared analysis (the rules never change across
  // updates) — the report renders byte-identically to a full assessment.
  // The incremental path always reads the session's materialized
  // instance, so the engine used is the chase regardless of
  // `auto_engine` (the recommendation is still recorded).
  std::vector<std::string> quality_preds;
  for (const std::string& rel : context_->AssessedRelations()) {
    Result<std::string> q = context_->QualityPredicateOf(rel);
    if (q.ok()) quality_preds.push_back(*q);
  }
  {
    const datalog::ProgramAnalysis& program_analysis = session.analysis();
    report.program_class = program_analysis.ClassName();
    MDQA_ASSIGN_OR_RETURN(core::OntologyProperties properties,
                          context_->ontology().Analyze());
    qa::EngineSelectOptions select_options;
    select_options.egds_separable = properties.separable_egds;
    const analysis::CostModel cost_model(program, program_analysis,
                                         session.EdbStatistics());
    select_options.cost_model = &cost_model;
    qa::EngineSelection selection =
        qa::SelectEngine(program, program_analysis, select_options);
    report.engine_recommended = selection.engine;
    report.engine_reason = std::move(selection.reason);
    report.engine_used = qa::Engine::kChase;
    for (const qa::EngineCandidate& c : selection.candidates) {
      if (c.engine == report.engine_used) {
        report.predicted_cost = c.predicted_cost;
      }
    }

    if (opts.lint_gate) {
      analysis::DiagnosticBag bag;
      analysis::LintOptions lint_options;
      lint_options.min_severity = analysis::Severity::kWarning;
      lint_options.form_notes = false;
      lint_options.file = "<context>";
      lint_options.analysis = &program_analysis;
      lint_options.goal_predicates = quality_preds;
      analysis::LintProgram(program, lint_options, &bag);
      analysis::LintOntology(context_->ontology(), lint_options, &bag);
      bag.Sort();
      report.lint_errors = bag.errors();
      report.lint_warnings = bag.warnings();
      report.lint_text = bag.ToText();
      if (bag.errors() > 0 && !opts.lint_warn_only) {
        return Status::FailedPrecondition(
            "lint gate: " + std::to_string(bag.errors()) +
            " error-level finding(s) in the contextual program/ontology "
            "(set lint_warn_only to proceed anyway):\n" +
            bag.ToText());
      }
    }
  }

  report.referential_check = context_->ontology().ValidateReferential();
  // The session exists, so its (re-)chase passed the constraint check.
  report.constraint_check = Status::Ok();
  report.actual_cost = session.statistics().total_facts;

  auto note_truncated = [&report](const Status& why) {
    report.completeness = Completeness::kTruncated;
    if (report.interruption.ok()) report.interruption = why;
  };
  if (session.chase_stats().completeness == Completeness::kTruncated) {
    note_truncated(session.chase_stats().interruption);
  }

  const std::vector<std::string> names = context_->AssessedRelations();
  const std::vector<std::string>& updated = session.updated_relations();

  // Previous entries by relation name (per_relation, quality_versions and
  // dirty_tuples are parallel vectors).
  std::unordered_map<std::string, size_t> prev_index;
  for (size_t i = 0; i < previous.per_relation.size(); ++i) {
    prev_index.emplace(previous.per_relation[i].relation, i);
  }

  // Selective re-assessment: recompute a relation iff its own rows
  // changed, its quality predicate transitively depends on a changed
  // predicate, or `previous` has no (complete) entry to copy. EGD
  // programs recompute everything — a null merge can rewrite facts of
  // any predicate, which no body→head reachability captures.
  std::unordered_set<std::string> recompute;
  if (!program.Egds().empty()) {
    recompute.insert(names.begin(), names.end());
  } else {
    const datalog::Vocabulary* vocab = program.vocab().get();
    std::unordered_set<uint32_t> seeds;
    for (const std::string& rel : updated) {
      const uint32_t pred = vocab->FindPredicate(rel);
      if (pred != StringPool::kNotFound) seeds.insert(pred);
    }
    const std::unordered_set<uint32_t> closure =
        datalog::DependentPredicates(program, seeds);
    for (const std::string& name : names) {
      bool need = std::find(updated.begin(), updated.end(), name) !=
                  updated.end();
      if (!need) {
        Result<std::string> qpred_name = context_->QualityPredicateOf(name);
        const uint32_t qpred = qpred_name.ok()
                                   ? vocab->FindPredicate(*qpred_name)
                                   : StringPool::kNotFound;
        need = qpred == StringPool::kNotFound || closure.count(qpred) > 0;
      }
      if (need) recompute.insert(name);
    }
  }
  for (const std::string& name : names) {
    if (prev_index.find(name) == prev_index.end()) recompute.insert(name);
  }

  struct RelationOutcome {
    Status hard_error;
    bool computed = false;
    Status failure;
    int attempts = 0;
    std::optional<QualityMeasures> measures;
    std::optional<Relation> quality;
    std::optional<Relation> dirty;
  };
  std::vector<RelationOutcome> outcomes(names.size());

  // Identical fault-isolation scheme to Assess, reading the session's
  // database (the updated one) and materialized instance.
  auto assess_one = [&](const std::string& name, RelationOutcome* out) {
    Result<const Relation*> orig = session.database().GetRelation(name);
    if (!orig.ok()) {
      out->hard_error = orig.status();
      return;
    }
    const Relation* original = *orig;
    Status failure;
    double scale = 1.0;
    for (int attempt = 0; attempt <= opts.max_retries;
         ++attempt, scale *= opts.escalation_factor) {
      ++out->attempts;
      ExecutionBudget rb;
      if (opts.budget != nullptr) rb.InheritControlsFrom(*opts.budget);
      if (opts.fault_injector != nullptr) {
        rb.set_fault_injector(opts.fault_injector);
      }
      if (opts.per_relation_max_facts > 0) {
        rb.set_max_facts(static_cast<uint64_t>(
            static_cast<double>(opts.per_relation_max_facts) * scale));
      }
      if (opts.per_relation_max_steps > 0) {
        rb.set_max_steps(static_cast<uint64_t>(
            static_cast<double>(opts.per_relation_max_steps) * scale));
      }
      failure = rb.CheckNow("assessor:relation");
      if (failure.ok()) {
        Status interruption;
        Result<Relation> r = session.QualityVersion(name, &rb, &interruption);
        if (r.ok() && interruption.ok()) {
          out->quality = std::move(r).value();
          out->computed = true;
          break;
        }
        failure = r.ok() ? std::move(interruption) : r.status();
      }
      if (!ExecutionBudget::IsTruncation(failure)) break;
      if (failure.code() == StatusCode::kCancelled) break;
    }
    if (!out->computed) {
      out->failure = std::move(failure);
      return;
    }
    Result<QualityMeasures> m = Measure(*original, *out->quality);
    if (!m.ok()) {
      out->hard_error = m.status();
      return;
    }
    Result<Relation> dirty = original->Minus(*out->quality);
    if (!dirty.ok()) {
      out->hard_error = dirty.status();
      return;
    }
    out->measures = std::move(*m);
    out->dirty = std::move(*dirty);
  };

  std::vector<size_t> todo;
  for (size_t i = 0; i < names.size(); ++i) {
    if (recompute.count(names[i]) > 0) todo.push_back(i);
  }
  const bool parallel = opts.pool != nullptr && todo.size() > 1;
  if (parallel) {
    opts.pool->ParallelFor(
        todo.size(), [&](size_t k) {
          assess_one(names[todo[k]], &outcomes[todo[k]]);
        });
  }

  size_t total_original = 0;
  size_t total_common = 0;
  Status cancelled;
  for (size_t i = 0; i < names.size(); ++i) {
    if (recompute.count(names[i]) == 0) {
      // Untouched by the update: copy the previous entry verbatim.
      const size_t p = prev_index.at(names[i]);
      total_original += previous.per_relation[p].original_size;
      total_common += previous.per_relation[p].common;
      report.per_relation.push_back(previous.per_relation[p]);
      report.quality_versions.push_back(previous.quality_versions[p]);
      report.dirty_tuples.push_back(previous.dirty_tuples[p]);
      continue;
    }
    RelationOutcome& out = outcomes[i];
    if (!cancelled.ok()) {
      if (!parallel || !out.computed) {
        report.degraded.push_back(RelationFailure{names[i], cancelled, 0});
        continue;
      }
    } else if (!parallel) {
      assess_one(names[i], &out);
    }
    MDQA_RETURN_IF_ERROR(out.hard_error);
    if (!out.computed) {
      note_truncated(out.failure);
      if (out.failure.code() == StatusCode::kCancelled) {
        cancelled = out.failure;
      }
      report.degraded.push_back(
          RelationFailure{names[i], std::move(out.failure), out.attempts});
      continue;
    }
    total_original += out.measures->original_size;
    total_common += out.measures->common;
    report.per_relation.push_back(std::move(*out.measures));
    report.quality_versions.push_back(std::move(*out.quality));
    report.dirty_tuples.push_back(std::move(*out.dirty));
  }
  report.overall_precision =
      total_original == 0 ? 1.0
                          : static_cast<double>(total_common) /
                                static_cast<double>(total_original);
  return report;
}

}  // namespace mdqa::quality
