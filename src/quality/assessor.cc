#include "quality/assessor.h"

#include <cstdio>

#include "base/json.h"
#include "datalog/chase.h"

namespace mdqa::quality {

std::string AssessmentReport::ToString() const {
  std::string out = "=== quality assessment report ===\n";
  out += "referential (form (1)): " + referential_check.ToString() + "\n";
  out += "dimensional constraints: " + constraint_check.ToString() + "\n";
  for (const QualityMeasures& m : per_relation) {
    out += "  " + m.ToString() + "\n";
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "overall precision: %.3f\n",
                overall_precision);
  out += buf;
  return out;
}

std::string AssessmentReport::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("referential_check").String(referential_check.ToString());
  w.Key("constraint_check").String(constraint_check.ToString());
  w.Key("overall_precision").Number(overall_precision);
  w.Key("relations").BeginArray();
  for (size_t i = 0; i < per_relation.size(); ++i) {
    const QualityMeasures& m = per_relation[i];
    w.BeginObject();
    w.Key("relation").String(m.relation);
    w.Key("original_size").Number(m.original_size);
    w.Key("quality_size").Number(m.quality_size);
    w.Key("common").Number(m.common);
    w.Key("precision").Number(m.precision);
    w.Key("recall").Number(m.recall);
    w.Key("f1").Number(m.f1);
    w.Key("dirty_tuples").BeginArray();
    if (i < dirty_tuples.size()) {
      for (const Tuple& row : dirty_tuples[i].SortedRows()) {
        w.BeginArray();
        for (const Value& v : row) w.String(v.ToString());
        w.EndArray();
      }
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

Result<AssessmentReport> Assessor::Assess(qa::Engine engine) const {
  AssessmentReport report;
  report.referential_check = context_->ontology().ValidateReferential();

  // One materialization serves both the constraint check and (when the
  // data is consistent and the default engine is in use) every quality
  // version below. An Inconsistent status is a finding, not a failure of
  // the assessment itself.
  Result<PreparedContext> prepared = context_->Prepare();
  if (!prepared.ok() &&
      prepared.status().code() != StatusCode::kInconsistent) {
    return prepared.status();  // real failure (budget, validation, ...)
  }
  report.constraint_check =
      prepared.ok() ? Status::Ok() : prepared.status();

  const bool use_prepared = prepared.ok() && engine == qa::Engine::kChase;
  size_t total_original = 0;
  size_t total_common = 0;
  for (const std::string& name : context_->AssessedRelations()) {
    MDQA_ASSIGN_OR_RETURN(const Relation* original,
                          context_->database().GetRelation(name));
    Relation quality = *original;  // placeholder; overwritten below
    if (use_prepared) {
      MDQA_ASSIGN_OR_RETURN(quality, prepared->QualityVersion(name));
    } else {
      MDQA_ASSIGN_OR_RETURN(quality,
                            context_->ComputeQualityVersion(name, engine));
    }
    MDQA_ASSIGN_OR_RETURN(QualityMeasures m, Measure(*original, quality));
    MDQA_ASSIGN_OR_RETURN(Relation dirty, original->Minus(quality));
    total_original += m.original_size;
    total_common += m.common;
    report.per_relation.push_back(std::move(m));
    report.quality_versions.push_back(std::move(quality));
    report.dirty_tuples.push_back(std::move(dirty));
  }
  report.overall_precision =
      total_original == 0 ? 1.0
                          : static_cast<double>(total_common) /
                                static_cast<double>(total_original);
  return report;
}

}  // namespace mdqa::quality
