#include "quality/context.h"

#include <algorithm>
#include <optional>
#include <unordered_set>

#include "analysis/cost_model.h"
#include "datalog/chase.h"
#include "datalog/parser.h"
#include "datalog/provenance.h"
#include "datalog/whynot.h"

namespace mdqa::quality {

using datalog::Atom;
using datalog::ConjunctiveQuery;
using datalog::Parser;
using datalog::Program;
using datalog::Rule;
using datalog::Term;
using datalog::Vocabulary;

QualityContext::QualityContext(std::shared_ptr<core::MdOntology> ontology)
    : ontology_(std::move(ontology)) {}

Status QualityContext::SetDatabase(Database database) {
  for (const std::string& name : database.RelationNames()) {
    if (ontology_->HasPredicate(name)) {
      return Status::InvalidArgument(
          "relation '" + name +
          "' collides with a dimensional predicate of the ontology; map it "
          "under a different name");
    }
    MDQA_ASSIGN_OR_RETURN(const Relation* rel, database.GetRelation(name));
    database_.PutRelation(*rel);
  }
  return Status::Ok();
}

Status QualityContext::ReplaceDatabase(Database database) {
  // Same shape, different rows: the stored mappings, quality definitions
  // and contextual rules were all derived from the current schemas, so a
  // recovered database must agree on them exactly.
  std::vector<std::string> current = database_.RelationNames();
  std::vector<std::string> incoming = database.RelationNames();
  if (current != incoming) {
    return Status::InvalidArgument(
        "ReplaceDatabase: relation set mismatch (expected " +
        std::to_string(current.size()) + " relations, got " +
        std::to_string(incoming.size()) + " or a different name/order)");
  }
  for (const std::string& name : current) {
    MDQA_ASSIGN_OR_RETURN(const Relation* have, database_.GetRelation(name));
    MDQA_ASSIGN_OR_RETURN(const Relation* want, database.GetRelation(name));
    if (have->arity() != want->arity()) {
      return Status::InvalidArgument(
          "ReplaceDatabase: relation '" + name + "' arity mismatch (" +
          std::to_string(have->arity()) + " vs " +
          std::to_string(want->arity()) + ")");
    }
  }
  database_ = std::move(database);
  return Status::Ok();
}

Status QualityContext::MapRelationToContext(const std::string& original,
                                            const std::string& contextual) {
  MDQA_ASSIGN_OR_RETURN(const Relation* rel, database_.GetRelation(original));
  std::string head = contextual + "(";
  std::string body = original + "(";
  for (size_t i = 0; i < rel->arity(); ++i) {
    if (i > 0) {
      head += ", ";
      body += ", ";
    }
    head += "X" + std::to_string(i);
    body += "X" + std::to_string(i);
  }
  MDQA_RETURN_IF_ERROR(AddContextualRules(head + ") :- " + body + ")."));
  mappings_.emplace_back(original, contextual);
  return Status::Ok();
}

Status QualityContext::MapRelationAsFootprint(const std::string& original,
                                              const std::string& contextual,
                                              size_t extra_attributes) {
  MDQA_ASSIGN_OR_RETURN(const Relation* rel, database_.GetRelation(original));
  std::string head = contextual + "(";
  std::string body = original + "(";
  for (size_t i = 0; i < rel->arity(); ++i) {
    if (i > 0) {
      head += ", ";
      body += ", ";
    }
    head += "X" + std::to_string(i);
    body += "X" + std::to_string(i);
  }
  for (size_t i = 0; i < extra_attributes; ++i) {
    head += ", Z" + std::to_string(i);  // existential: not in the body
  }
  MDQA_RETURN_IF_ERROR(AddContextualRules(head + ") :- " + body + ")."));
  mappings_.emplace_back(original, contextual);
  return Status::Ok();
}

Status QualityContext::AddContextualRules(const std::string& text) {
  // Parse once, now: syntax errors surface at add time with their source
  // spans, and the stored ASTs (over the shared ontology vocabulary) are
  // composed — never re-parsed — by every BuildProgram call.
  Program scratch(ontology_->vocab());
  MDQA_RETURN_IF_ERROR(Parser::ParseInto(text, &scratch));
  for (const Rule& r : scratch.rules()) context_rules_.push_back(r);
  for (const Atom& f : scratch.facts()) context_facts_.push_back(f);
  return Status::Ok();
}

Status QualityContext::DefineQualityVersion(const std::string& original,
                                            const std::string& quality_pred,
                                            const std::string& rules_text) {
  if (!database_.HasRelation(original)) {
    return Status::NotFound("no relation '" + original +
                            "' in the database under assessment");
  }
  auto it = quality_of_.find(original);
  if (it != quality_of_.end()) {
    return Status::AlreadyExists("quality version of '" + original +
                                 "' already defined as '" + it->second + "'");
  }
  MDQA_RETURN_IF_ERROR(AddContextualRules(rules_text));
  quality_of_.emplace(original, quality_pred);
  return Status::Ok();
}

Result<std::string> QualityContext::QualityPredicateOf(
    const std::string& original) const {
  auto it = quality_of_.find(original);
  if (it == quality_of_.end()) {
    return Status::NotFound("no quality version defined for '" + original +
                            "'");
  }
  return it->second;
}

std::vector<std::string> QualityContext::AssessedRelations() const {
  std::vector<std::string> out;
  for (const auto& [original, _] : quality_of_) out.push_back(original);
  return out;
}

Result<Program> QualityContext::BuildProgram() const {
  MDQA_ASSIGN_OR_RETURN(Program program, ontology_->Compile());
  Vocabulary* vocab = program.mutable_vocab();
  // Original instance D, under its own relation names.
  for (const std::string& name : database_.RelationNames()) {
    MDQA_ASSIGN_OR_RETURN(const Relation* rel, database_.GetRelation(name));
    MDQA_ASSIGN_OR_RETURN(uint32_t pred,
                          vocab->InternPredicate(name, rel->arity()));
    for (const Tuple& row : rel->rows()) {
      std::vector<Term> terms;
      terms.reserve(row.size());
      for (const Value& v : row) terms.push_back(vocab->Const(v));
      MDQA_RETURN_IF_ERROR(program.AddFact(Atom(pred, std::move(terms))));
    }
  }
  // Mapping, contextual, and quality rules — stored ASTs, composed.
  for (const Rule& r : context_rules_) {
    MDQA_RETURN_IF_ERROR(program.AddRule(r));
  }
  for (const Atom& f : context_facts_) {
    MDQA_RETURN_IF_ERROR(program.AddFact(f));
  }
  return program;
}

Result<Relation> QualityContext::ComputeQualityVersion(
    const std::string& original, qa::Engine engine, ExecutionBudget* budget,
    Status* interruption) const {
  if (interruption != nullptr) *interruption = Status::Ok();
  MDQA_ASSIGN_OR_RETURN(const Relation* rel, database_.GetRelation(original));
  MDQA_ASSIGN_OR_RETURN(std::string quality_pred,
                        QualityPredicateOf(original));
  MDQA_ASSIGN_OR_RETURN(Program program, BuildProgram());
  Vocabulary* vocab = program.mutable_vocab();
  MDQA_ASSIGN_OR_RETURN(uint32_t pred,
                        vocab->InternPredicate(quality_pred, rel->arity()));

  ConjunctiveQuery query;
  query.name = quality_pred;
  std::vector<Term> vars;
  for (size_t i = 0; i < rel->arity(); ++i) {
    vars.push_back(vocab->Var("$q" + std::to_string(i)));
  }
  query.answer = vars;
  query.body.push_back(Atom(pred, vars));

  qa::AnswerOptions aopts;
  aopts.budget = budget;
  MDQA_ASSIGN_OR_RETURN(qa::AnswerSet answers,
                        qa::Answer(engine, program, query, aopts));
  if (answers.completeness == Completeness::kTruncated &&
      interruption != nullptr) {
    *interruption = answers.interruption;
  }

  // Same schema as the original, renamed to the quality predicate.
  std::vector<Attribute> attrs = rel->schema().attributes();
  MDQA_ASSIGN_OR_RETURN(RelationSchema schema,
                        RelationSchema::Create(quality_pred, attrs));
  Relation out(std::move(schema));
  for (const std::vector<Term>& t : answers.tuples) {
    Tuple row;
    row.reserve(t.size());
    for (Term term : t) row.push_back(vocab->ConstantValue(term.id()));
    MDQA_RETURN_IF_ERROR(out.Insert(std::move(row)));
  }
  return out;
}

Result<qa::AnswerSet> QualityContext::CleanAnswers(
    const std::string& query_text, qa::Engine engine) const {
  MDQA_ASSIGN_OR_RETURN(Program program, BuildProgram());
  Vocabulary* vocab = program.mutable_vocab();
  MDQA_ASSIGN_OR_RETURN(ConjunctiveQuery query,
                        Parser::ParseQuery(query_text, vocab));
  // Q -> Q^q: swap original predicates for their quality versions.
  for (Atom& a : query.body) {
    const std::string& pred_name = vocab->PredicateName(a.predicate);
    auto it = quality_of_.find(pred_name);
    if (it == quality_of_.end()) continue;
    MDQA_ASSIGN_OR_RETURN(uint32_t q_pred,
                          vocab->InternPredicate(it->second, a.arity()));
    a.predicate = q_pred;
  }
  return qa::Answer(engine, program, query);
}

Result<std::string> QualityContext::ExplainQualityTuple(
    const std::string& original, const Tuple& tuple) const {
  MDQA_ASSIGN_OR_RETURN(std::string quality_pred,
                        QualityPredicateOf(original));
  MDQA_ASSIGN_OR_RETURN(Program program, BuildProgram());
  Vocabulary* vocab = program.mutable_vocab();
  MDQA_ASSIGN_OR_RETURN(
      uint32_t pred, vocab->InternPredicate(quality_pred, tuple.size()));

  datalog::ProvenanceStore provenance;
  datalog::ChaseOptions options;
  options.provenance = &provenance;
  options.check_constraints = false;
  datalog::Instance instance = datalog::Instance::FromProgram(program);
  MDQA_RETURN_IF_ERROR(
      datalog::Chase::Run(program, &instance, options).status());

  std::vector<Term> terms;
  terms.reserve(tuple.size());
  for (const Value& v : tuple) terms.push_back(vocab->Const(v));
  Atom fact(pred, std::move(terms));
  if (!instance.Contains(fact)) {
    return Status::NotFound("tuple is not in the quality version " +
                            quality_pred);
  }
  return provenance.Explain(fact, *vocab);
}

Result<std::string> QualityContext::ExplainDirtyTuple(
    const std::string& original, const Tuple& tuple) const {
  MDQA_ASSIGN_OR_RETURN(std::string quality_pred,
                        QualityPredicateOf(original));
  MDQA_ASSIGN_OR_RETURN(Program program, BuildProgram());
  Vocabulary* vocab = program.mutable_vocab();
  MDQA_ASSIGN_OR_RETURN(
      uint32_t pred, vocab->InternPredicate(quality_pred, tuple.size()));

  datalog::ChaseOptions options;
  options.check_constraints = false;
  datalog::Instance instance = datalog::Instance::FromProgram(program);
  MDQA_RETURN_IF_ERROR(
      datalog::Chase::Run(program, &instance, options).status());

  std::vector<Term> terms;
  terms.reserve(tuple.size());
  for (const Value& v : tuple) terms.push_back(vocab->Const(v));
  Atom fact(pred, std::move(terms));
  MDQA_ASSIGN_OR_RETURN(datalog::WhyNotReport report,
                        datalog::ExplainAbsence(program, instance, fact));
  if (report.present) {
    return Status::FailedPrecondition(
        "tuple IS a quality tuple; use ExplainQualityTuple");
  }
  return vocab->AtomToString(fact) + " is not derivable:\n" +
         report.ToString();
}

Result<qa::AnswerSet> QualityContext::RawAnswers(const std::string& query_text,
                                                 qa::Engine engine) const {
  MDQA_ASSIGN_OR_RETURN(Program program, BuildProgram());
  MDQA_ASSIGN_OR_RETURN(
      ConjunctiveQuery query,
      Parser::ParseQuery(query_text, program.mutable_vocab()));
  return qa::Answer(engine, program, query);
}

Result<PreparedContext> QualityContext::Prepare() const {
  return Prepare(datalog::ChaseOptions{});
}

Result<PreparedContext> QualityContext::Prepare(
    const datalog::ChaseOptions& options) const {
  MDQA_ASSIGN_OR_RETURN(Program program, BuildProgram());
  auto analysis =
      std::make_shared<const datalog::ProgramAnalysis>(program);
  return Prepare(options, std::move(program), std::move(analysis));
}

Result<PreparedContext> QualityContext::Prepare(
    const datalog::ChaseOptions& options, Program program,
    std::shared_ptr<const datalog::ProgramAnalysis> analysis) const {
  return FinishPrepare(options, std::move(program), std::move(analysis),
                       /*rebuild=*/nullptr);
}

Result<PreparedContext> QualityContext::PrepareRestored(
    const datalog::ChaseOptions& options,
    const MaterializationRebuilder& rebuild) const {
  MDQA_ASSIGN_OR_RETURN(Program program, BuildProgram());
  auto analysis = std::make_shared<const datalog::ProgramAnalysis>(program);
  return FinishPrepare(options, std::move(program), std::move(analysis),
                       &rebuild);
}

Result<PreparedContext> QualityContext::FinishPrepare(
    const datalog::ChaseOptions& options, Program program,
    std::shared_ptr<const datalog::ProgramAnalysis> analysis,
    const MaterializationRebuilder* rebuild) const {
  // Thread the ontology's separability verdict into the chase options so
  // a later ApplyUpdate can maintain EGD programs incrementally when the
  // paper's §III sufficient condition holds, and the shared program
  // analysis so Chase::Extend can narrow its remaining fallbacks.
  datalog::ChaseOptions chase_options = options;
  MDQA_ASSIGN_OR_RETURN(core::OntologyProperties properties,
                        ontology_->Analyze());
  chase_options.egds_separable = properties.separable_egds;
  chase_options.analysis = analysis.get();
  // Pre-bind the per-relation S^q read-off queries while we are still
  // single-threaded: interning predicates and variables mutates the
  // shared Vocabulary, which concurrent QualityVersion calls must never
  // do (the parallel assessor fans out over relations).
  std::map<std::string, ConjunctiveQuery> queries;
  Vocabulary* vocab = program.mutable_vocab();
  for (const auto& [original, quality_pred] : quality_of_) {
    MDQA_ASSIGN_OR_RETURN(const Relation* rel,
                          database_.GetRelation(original));
    MDQA_ASSIGN_OR_RETURN(uint32_t pred,
                          vocab->InternPredicate(quality_pred, rel->arity()));
    ConjunctiveQuery query;
    query.name = quality_pred;
    std::vector<Term> vars;
    for (size_t i = 0; i < rel->arity(); ++i) {
      vars.push_back(vocab->Var("$q" + std::to_string(i)));
    }
    query.answer = vars;
    query.body.push_back(Atom(pred, vars));
    queries.emplace(original, std::move(query));
  }
  std::optional<qa::ChaseQa> chased;
  if (rebuild == nullptr) {
    MDQA_ASSIGN_OR_RETURN(qa::ChaseQa created,
                          qa::ChaseQa::Create(program, chase_options));
    chased.emplace(std::move(created));
  } else {
    // Checkpoint restore: the instance was rebuilt from a persisted image
    // of a completed chase over this very program — adopt it instead of
    // re-chasing (the whole point of durable resume).
    MDQA_ASSIGN_OR_RETURN(RestoredMaterialization mat, (*rebuild)(program));
    MDQA_ASSIGN_OR_RETURN(
        qa::ChaseQa adopted,
        qa::ChaseQa::Adopt(std::move(program), chase_options,
                           std::move(mat.instance), std::move(mat.stats)));
    chased.emplace(std::move(adopted));
  }
  PreparedContext out(quality_of_, std::move(queries), database_,
                      std::move(*chased));
  out.analysis_ = std::move(analysis);
  out.statistics_ = out.instance().CollectStatistics();
  return out;
}

std::vector<std::string> DeltaBatch::Relations() const {
  std::vector<std::string> out;
  out.reserve(deltas.size());
  for (const RelationDelta& d : deltas) out.push_back(d.relation);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

const datalog::InstanceStatistics& PreparedContext::EdbStatistics() const {
  std::lock_guard<std::mutex> lock(edb_stats_.mu);
  const uint64_t generation = program().generation();
  if (!edb_stats_.valid || edb_stats_.generation != generation) {
    edb_stats_.stats = analysis::CostModel::CollectEdbStats(program());
    edb_stats_.generation = generation;
    edb_stats_.valid = true;
  }
  // Safe to hand out by reference: the entry is only invalidated by a
  // program mutation, and a session's program is immutable once the
  // session is constructed (ApplyUpdate mutates its private copy before
  // returning it).
  return edb_stats_.stats;
}

Result<PreparedContext> PreparedContext::ApplyUpdate(
    const DeltaBatch& batch) const {
  // The copy shares every fact table with this session (copy-on-write
  // instances); only tables the update actually touches get cloned.
  PreparedContext next(*this);
  next.updated_relations_ = batch.Relations();
  Vocabulary* vocab = next.program().vocab().get();
  std::vector<Atom> inserts;
  std::vector<Atom> deletes;
  for (const RelationDelta& d : batch.deltas) {
    MDQA_ASSIGN_OR_RETURN(Relation * rel,
                          next.database_.GetMutableRelation(d.relation));
    MDQA_ASSIGN_OR_RETURN(uint32_t pred,
                          vocab->InternPredicate(d.relation, rel->arity()));
    if (!d.delete_rows.empty()) {
      std::unordered_set<Tuple, TupleHash> del;
      for (const Tuple& row : d.delete_rows) {
        if (row.size() != rel->arity()) {
          return Status::InvalidArgument(
              "delete row arity " + std::to_string(row.size()) +
              " does not match relation '" + d.relation + "'");
        }
        if (!rel->Contains(row)) {
          return Status::NotFound("cannot delete from '" + d.relation +
                                  "': row not present");
        }
        if (del.insert(row).second) {
          std::vector<Term> terms;
          terms.reserve(row.size());
          for (const Value& v : row) terms.push_back(vocab->Const(v));
          deletes.push_back(Atom(pred, std::move(terms)));
        }
      }
      *rel = rel->Select([&](const Tuple& t) { return del.count(t) == 0; });
    }
    for (const Tuple& row : d.insert_rows) {
      if (rel->Contains(row)) continue;  // set semantics: no-op insert
      MDQA_RETURN_IF_ERROR(rel->Insert(row));
      std::vector<Term> terms;
      terms.reserve(row.size());
      for (const Value& v : row) terms.push_back(vocab->Const(v));
      inserts.push_back(Atom(pred, std::move(terms)));
    }
  }
  MDQA_RETURN_IF_ERROR(next.chased_.Update(inserts, deletes).status());
  // New snapshot, new statistics — collected here, once, so concurrent
  // readers of the session never race on a lazily filled cache.
  next.statistics_ = next.instance().CollectStatistics();
  return next;
}

Result<qa::AnswerSet> PreparedContext::Evaluate(datalog::ConjunctiveQuery query,
                                                ExecutionBudget* budget) const {
  Status interruption;
  MDQA_ASSIGN_OR_RETURN(std::vector<std::vector<Term>> tuples,
                        chased_.Answers(query, budget, &interruption));
  qa::AnswerSet out = qa::AnswerSet::Of(std::move(tuples));
  if (!interruption.ok()) {
    out.completeness = Completeness::kTruncated;
    out.interruption = std::move(interruption);
  }
  return out;
}

Result<qa::AnswerSet> PreparedContext::RawAnswers(
    const std::string& query_text) const {
  MDQA_ASSIGN_OR_RETURN(
      ConjunctiveQuery query,
      Parser::ParseQuery(query_text, program().vocab().get()));
  return Evaluate(std::move(query));
}

Result<qa::AnswerSet> PreparedContext::CleanAnswers(
    const std::string& query_text) const {
  MDQA_ASSIGN_OR_RETURN(ConjunctiveQuery query,
                        PrepareCleanQuery(query_text));
  return Evaluate(std::move(query));
}

Result<ConjunctiveQuery> PreparedContext::PrepareCleanQuery(
    const std::string& query_text) const {
  Vocabulary* vocab = program().vocab().get();
  MDQA_ASSIGN_OR_RETURN(ConjunctiveQuery query,
                        Parser::ParseQuery(query_text, vocab));
  for (Atom& a : query.body) {
    const std::string& pred_name = vocab->PredicateName(a.predicate);
    auto it = quality_of_.find(pred_name);
    if (it == quality_of_.end()) continue;
    MDQA_ASSIGN_OR_RETURN(uint32_t q_pred,
                          vocab->InternPredicate(it->second, a.arity()));
    a.predicate = q_pred;
  }
  return query;
}

Result<ConjunctiveQuery> PreparedContext::PrepareRawQuery(
    const std::string& query_text) const {
  return Parser::ParseQuery(query_text, program().vocab().get());
}

Result<qa::AnswerSet> PreparedContext::Answer(const ConjunctiveQuery& query,
                                              ExecutionBudget* budget) const {
  return Evaluate(query, budget);
}

Result<Relation> PreparedContext::QualityVersion(const std::string& original,
                                                 ExecutionBudget* budget,
                                                 Status* interruption) const {
  if (interruption != nullptr) *interruption = Status::Ok();
  auto it = quality_of_.find(original);
  if (it == quality_of_.end()) {
    return Status::NotFound("no quality version defined for '" + original +
                            "'");
  }
  MDQA_ASSIGN_OR_RETURN(const Relation* rel, database_.GetRelation(original));
  const Vocabulary* vocab = program().vocab().get();
  // Pre-bound in Prepare: from here on this method only *reads* shared
  // state, which is what makes concurrent per-relation calls safe.
  auto qit = quality_queries_.find(original);
  if (qit == quality_queries_.end()) {
    return Status::Internal("quality query for '" + original +
                            "' was not prepared");
  }
  MDQA_ASSIGN_OR_RETURN(qa::AnswerSet answers, Evaluate(qit->second, budget));
  if (answers.completeness == Completeness::kTruncated &&
      interruption != nullptr) {
    *interruption = answers.interruption;
  }

  std::vector<Attribute> attrs = rel->schema().attributes();
  MDQA_ASSIGN_OR_RETURN(RelationSchema schema,
                        RelationSchema::Create(it->second, attrs));
  Relation out(std::move(schema));
  for (const std::vector<Term>& t : answers.tuples) {
    Tuple row;
    row.reserve(t.size());
    for (Term term : t) row.push_back(vocab->ConstantValue(term.id()));
    MDQA_RETURN_IF_ERROR(out.Insert(std::move(row)));
  }
  return out;
}

}  // namespace mdqa::quality
