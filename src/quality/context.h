#ifndef MDQA_QUALITY_CONTEXT_H_
#define MDQA_QUALITY_CONTEXT_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "base/result.h"
#include "core/md_ontology.h"
#include "datalog/analysis.h"
#include "datalog/instance.h"
#include "datalog/program.h"
#include "qa/engines.h"
#include "relational/database.h"

namespace mdqa::quality {

class PreparedContext;

/// An externally rebuilt materialization, produced by the checkpoint
/// restore path (storage/session_image.h): the chased instance
/// reconstructed over the program's vocabulary, plus the stats of the
/// chase run that originally produced it (frontier regenerated against
/// the rebuilt instance).
struct RestoredMaterialization {
  datalog::Instance instance;
  datalog::ChaseStats stats;
};

/// Builds a RestoredMaterialization against the freshly compiled
/// contextual program (interning its constants/nulls into the program's
/// vocabulary). Supplied by the storage layer to `PrepareRestored`, which
/// keeps the quality layer free of any dependency on on-disk formats.
using MaterializationRebuilder =
    std::function<Result<RestoredMaterialization>(datalog::Program&)>;

/// The paper's context for data quality assessment (Fig. 2): the original
/// instance `D` is mapped into a contextual schema `C` that embeds the MD
/// ontology `M`, contextual predicates, and quality predicates `P_i`;
/// quality versions `S^q` of the original relations are defined by rules
/// imposing the quality conditions, and queries over the original schema
/// are rewritten to their quality versions (`Q → Q^q`) — clean query
/// answering through dimensional navigation.
///
/// Everything shares the ontology's vocabulary; contextual and quality
/// rules are plain Datalog± text added with the methods below.
class QualityContext {
 public:
  explicit QualityContext(std::shared_ptr<core::MdOntology> ontology);

  const core::MdOntology& ontology() const { return *ontology_; }

  /// Loads (or extends) the database under assessment. Relation names
  /// must not collide with ontology predicates.
  Status SetDatabase(Database database);

  const Database& database() const { return database_; }

  /// Swaps in a recovered database (checkpoint restore): the same
  /// relations — names, arities, attribute types — with whatever rows the
  /// persisted generation had after its applied updates. Everything
  /// schema-derived (mappings, quality definitions, stored rules) remains
  /// valid; only the extensional rows change. Rejects a database whose
  /// relation set or schemas disagree with the current one.
  Status ReplaceDatabase(Database database);

  /// Maps an original relation into its contextual copy (the paper's
  /// `Measurements → Measurements_c` nickname mapping): adds the rule
  /// `contextual(x̄) :- original(x̄)`.
  Status MapRelationToContext(const std::string& original,
                              const std::string& contextual);

  /// The paper's footnote-4 variant: `original` is a *footprint* of a
  /// broader contextual relation carrying `extra_attributes` additional
  /// attributes whose values are unknown — adds the TGD
  /// `contextual(x̄, z̄) :- original(x̄)` with existential z̄ (the chase
  /// fills them with labeled nulls, which contextual rules or EGDs may
  /// later resolve).
  Status MapRelationAsFootprint(const std::string& original,
                                const std::string& contextual,
                                size_t extra_attributes);

  /// Adds contextual / quality predicate definitions (Datalog± text —
  /// e.g. the paper's TakenByNurse, TakenWithTherm, Measurements').
  /// Parsed HERE, once: syntax errors surface immediately (with source
  /// spans) and the stored ASTs are composed — never re-parsed — by
  /// every later `BuildProgram()` call.
  Status AddContextualRules(const std::string& text);

  /// Declares `quality_pred` as the quality version S^q of `original` and
  /// installs its defining rules. `quality_pred` must have the arity of
  /// `original`.
  Status DefineQualityVersion(const std::string& original,
                              const std::string& quality_pred,
                              const std::string& rules_text);

  /// The quality predicate registered for `original`, or NotFound.
  Result<std::string> QualityPredicateOf(const std::string& original) const;

  /// Original relations that have a quality version defined (sorted).
  std::vector<std::string> AssessedRelations() const;

  /// Assembles the full contextual program: ontology (facts + Σ_M) +
  /// original data + mapping/contextual/quality rules. Pure AST
  /// composition — the rules were parsed when they were added.
  Result<datalog::Program> BuildProgram() const;

  /// Computes the quality version S^q of `original` as a relation (same
  /// attribute names as the original), using `engine` for certain-answer
  /// computation.
  ///
  /// A non-null `budget` bounds the whole computation (chase/search and
  /// evaluation). On a budget trip the rows derived so far are returned
  /// — sound by monotonicity — and the truncation status is stored in
  /// `*interruption` (must be non-null when `budget` is; OK when the
  /// computation completed).
  Result<Relation> ComputeQualityVersion(
      const std::string& original, qa::Engine engine = qa::Engine::kChase,
      ExecutionBudget* budget = nullptr,
      Status* interruption = nullptr) const;

  /// Clean query answering: parses `query_text` (over original relation
  /// names), rewrites every atom over an original relation to its quality
  /// version (Q → Q^q), and answers over the contextual program.
  Result<qa::AnswerSet> CleanAnswers(
      const std::string& query_text,
      qa::Engine engine = qa::Engine::kChase) const;

  /// Answers `query_text` as-is over the contextual program (no quality
  /// rewriting) — the "dirty" baseline the paper contrasts with.
  Result<qa::AnswerSet> RawAnswers(
      const std::string& query_text,
      qa::Engine engine = qa::Engine::kChase) const;

  /// Explains *why* `tuple` belongs to the quality version of
  /// `original`: chases the contextual program with provenance and
  /// renders the derivation tree of the quality-predicate fact — the
  /// dimensional navigation and quality conditions, spelled out.
  /// NotFound if the tuple is not a quality tuple.
  Result<std::string> ExplainQualityTuple(const std::string& original,
                                          const Tuple& tuple) const;

  /// The inverse question: why is `tuple` NOT a quality tuple? Runs the
  /// why-not diagnosis against the chased contextual program and names
  /// the first quality condition / navigation step that blocks.
  /// FailedPrecondition if the tuple actually is quality.
  Result<std::string> ExplainDirtyTuple(const std::string& original,
                                        const Tuple& tuple) const;

  /// Builds and chases the contextual program ONCE, returning a session
  /// that answers any number of (clean) queries against the materialized
  /// instance — the `ComputeQualityVersion`/`CleanAnswers` methods above
  /// rebuild per call, which is wasteful in query-heavy workloads.
  /// Constraint violations surface here (kInconsistent).
  Result<PreparedContext> Prepare() const;

  /// As above with explicit chase options — in particular an
  /// `ExecutionBudget`, in which case a budget trip during
  /// materialization still yields a usable session over the partial
  /// (sound) instance; check `PreparedContext::chase_stats()`.
  Result<PreparedContext> Prepare(const datalog::ChaseOptions& options) const;

  /// As above with a pre-built contextual program (must equal
  /// `BuildProgram()`'s output, possibly with provably-dead TGDs pruned)
  /// and its shared analysis — so callers that already classified the
  /// program (the assessor's pre-run gate) don't build either twice. The
  /// analysis is threaded into `ChaseOptions::analysis` (narrowing the
  /// incremental-extension fallbacks of later `ApplyUpdate`s) and kept
  /// alive by the returned session.
  Result<PreparedContext> Prepare(
      const datalog::ChaseOptions& options, datalog::Program program,
      std::shared_ptr<const datalog::ProgramAnalysis> analysis) const;

  /// `Prepare` without the chase: builds the contextual program and all
  /// session plumbing (pre-bound S^q queries, shared analysis,
  /// separability verdict) exactly as `Prepare` does, but materializes
  /// the instance through `rebuild` — the storage layer's checkpoint
  /// restore — instead of running `ChaseQa::Create`. Call after
  /// `ReplaceDatabase` installed the recovered rows, so the compiled
  /// program's extensional facts match the image the rebuild replays.
  /// This is what lets `mdqa_serve --data-dir` resume at the last
  /// committed generation without re-chasing.
  Result<PreparedContext> PrepareRestored(
      const datalog::ChaseOptions& options,
      const MaterializationRebuilder& rebuild) const;

 private:
  friend class PreparedContext;

  /// Shared tail of Prepare/PrepareRestored: everything after the program
  /// is built. `rebuild == nullptr` runs the chase (`ChaseQa::Create`);
  /// otherwise the materialization comes from the callback
  /// (`ChaseQa::Adopt`).
  Result<PreparedContext> FinishPrepare(
      const datalog::ChaseOptions& options, datalog::Program program,
      std::shared_ptr<const datalog::ProgramAnalysis> analysis,
      const MaterializationRebuilder* rebuild) const;

  std::shared_ptr<core::MdOntology> ontology_;
  Database database_;
  std::vector<std::pair<std::string, std::string>> mappings_;
  std::map<std::string, std::string> quality_of_;  // original -> S^q pred
  /// Mapping/contextual/quality rules (and any ground facts in the rule
  /// text), parsed at add time and stored as ASTs over the ontology's
  /// vocabulary — BuildProgram composes them without re-parsing.
  std::vector<datalog::Rule> context_rules_;
  std::vector<datalog::Atom> context_facts_;
};

/// One relation's worth of changes in a `DeltaBatch`.
struct RelationDelta {
  std::string relation;  // an original relation of the database
  std::vector<Tuple> insert_rows;
  std::vector<Tuple> delete_rows;
};

/// A batch of updates to the database under assessment, applied
/// atomically by `PreparedContext::ApplyUpdate`. Within the batch,
/// deletions apply before insertions.
struct DeltaBatch {
  std::vector<RelationDelta> deltas;

  bool HasDeletions() const {
    for (const RelationDelta& d : deltas) {
      if (!d.delete_rows.empty()) return true;
    }
    return false;
  }

  /// Names of the relations the batch touches (sorted, deduplicated).
  std::vector<std::string> Relations() const;
};

/// A chase-once/query-many session over a QualityContext (obtain via
/// `QualityContext::Prepare`). All answers are certain answers against
/// the single materialized instance.
class PreparedContext {
 public:
  /// Answers `query_text` with the Q → Q^q quality rewriting applied.
  Result<qa::AnswerSet> CleanAnswers(const std::string& query_text) const;

  /// Answers `query_text` as written.
  Result<qa::AnswerSet> RawAnswers(const std::string& query_text) const;

  /// The parse/evaluate split the serve layer builds on. Parsing a query
  /// text interns new symbols into the shared (single-mutator)
  /// Vocabulary, while evaluating a *prepared* query only reads the
  /// materialized instance. `mdqa_serve` therefore serializes Prepare*
  /// calls behind a write lock and runs any number of `Answer` calls
  /// concurrently under a read lock (see docs/robustness.md); it also
  /// re-`Answer`s the same prepared query on budget-escalation retries
  /// without re-parsing.
  ///
  /// `PrepareCleanQuery` applies the Q → Q^q rewriting; `PrepareRawQuery`
  /// keeps the query as written.
  Result<datalog::ConjunctiveQuery> PrepareCleanQuery(
      const std::string& query_text) const;
  Result<datalog::ConjunctiveQuery> PrepareRawQuery(
      const std::string& query_text) const;

  /// Evaluates a query prepared above. Thread-safe: reads only the
  /// materialized instance and the pre-bound query. A non-null `budget`
  /// bounds the evaluation; a trip returns the answers found so far with
  /// `AnswerSet::completeness == kTruncated` (sound, by monotonicity).
  Result<qa::AnswerSet> Answer(const datalog::ConjunctiveQuery& query,
                               ExecutionBudget* budget = nullptr) const;

  /// The quality version of `original`, read off the materialized
  /// instance. A non-null `budget` bounds the read-off evaluation; on a
  /// budget trip the rows found so far are returned with the truncation
  /// status in `*interruption` (must be non-null when `budget` is).
  ///
  /// Thread-safe: the query was pre-bound by `Prepare` and evaluation
  /// only reads the materialized instance, so the assessor may call this
  /// concurrently for different relations (each call with its own
  /// budget/interruption).
  Result<Relation> QualityVersion(const std::string& original,
                                  ExecutionBudget* budget = nullptr,
                                  Status* interruption = nullptr) const;

  /// Applies `batch` to the database under assessment and returns a NEW
  /// session reflecting it; this session is unchanged and stays valid.
  /// The new session's instance *shares* every untouched fact table with
  /// this one (copy-on-write snapshots), and its materialization is
  /// maintained incrementally: insert-only batches resume the chase from
  /// the captured frontier (`Chase::Extend`); batches with deletions —
  /// and programs the incremental path cannot maintain — fall back to an
  /// exact full re-chase, recorded in the new session's `chase_stats()`.
  /// Deleted rows must exist (kNotFound otherwise); inserted rows must
  /// match the relation's schema.
  Result<PreparedContext> ApplyUpdate(const DeltaBatch& batch) const;

  /// Relations changed by the `ApplyUpdate` that created this session
  /// (sorted; empty for a session born from `Prepare`). The assessor's
  /// `Reassess` keys its dependency analysis off this.
  const std::vector<std::string>& updated_relations() const {
    return updated_relations_;
  }

  const datalog::Instance& instance() const { return chased_.instance(); }
  const datalog::ChaseStats& chase_stats() const { return chased_.stats(); }

  /// The compiled contextual program this session materialized, with its
  /// extensional facts kept in sync across `ApplyUpdate`s.
  const datalog::Program& program() const { return chased_.program(); }

  /// The shared syntactic analysis of the contextual program's rules
  /// (rules never change across updates, so neither does this). Kept
  /// alive by the session; `Assessor::Reassess` reuses it instead of
  /// re-classifying.
  const datalog::ProgramAnalysis& analysis() const { return *analysis_; }
  std::shared_ptr<const datalog::ProgramAnalysis> shared_analysis() const {
    return analysis_;
  }

  /// Table statistics of the materialized instance, collected once per
  /// snapshot (at Prepare and after each ApplyUpdate): row counts,
  /// per-position distinct counts, totals. Feeds the planner's cost
  /// model and the report's actual-cost field.
  const datalog::InstanceStatistics& statistics() const {
    return statistics_;
  }

  /// Statistics of the session program's *extensional* facts (the EDB
  /// the cost model prices engines against), computed lazily on first
  /// use and cached keyed on `Program::generation()` — `ApplyUpdate`
  /// hands the derived session a mutated fact list, whose bumped
  /// generation (plus the cache resetting on session copy) invalidates
  /// the cache. Thread-safe; `Assessor::Reassess` calls this instead of
  /// recomputing per reassessment.
  const datalog::InstanceStatistics& EdbStatistics() const;

  /// The database as this session sees it (after any applied updates).
  const Database& database() const { return database_; }

 private:
  friend class QualityContext;
  PreparedContext(std::map<std::string, std::string> quality_of,
                  std::map<std::string, datalog::ConjunctiveQuery> queries,
                  Database database, qa::ChaseQa chased)
      : quality_of_(std::move(quality_of)),
        quality_queries_(std::move(queries)),
        database_(std::move(database)),
        chased_(std::move(chased)) {}

  Result<qa::AnswerSet> Evaluate(datalog::ConjunctiveQuery query,
                                 ExecutionBudget* budget = nullptr) const;

  std::map<std::string, std::string> quality_of_;
  /// Per-relation S^q read-off queries, pre-bound in Prepare so that
  /// QualityVersion never touches the shared (not thread-safe)
  /// Vocabulary — the parallel assessor relies on this.
  std::map<std::string, datalog::ConjunctiveQuery> quality_queries_;
  Database database_;  // original relations (schemas for QualityVersion)
  qa::ChaseQa chased_;
  /// Shared with ChaseQa's options (raw pointer) — the shared_ptr here
  /// keeps it alive for the session and all sessions derived from it.
  std::shared_ptr<const datalog::ProgramAnalysis> analysis_;
  datalog::InstanceStatistics statistics_;
  std::vector<std::string> updated_relations_;  // set by ApplyUpdate

  /// Lazy EDB-statistics cache behind EdbStatistics(). Copying a session
  /// (ApplyUpdate's starting point) RESETS the cache rather than copying
  /// it: a rebuilt program (the deletion path constructs one from
  /// scratch) can coincidentally land on the parent's generation value
  /// with a different fact list, so inherited entries are never safe.
  struct EdbStatsCache {
    std::mutex mu;
    bool valid = false;
    uint64_t generation = 0;
    datalog::InstanceStatistics stats;
    EdbStatsCache() = default;
    EdbStatsCache(const EdbStatsCache&) {}  // fresh, invalid cache
    EdbStatsCache& operator=(const EdbStatsCache&) {
      valid = false;
      return *this;
    }
  };
  mutable EdbStatsCache edb_stats_;
};

}  // namespace mdqa::quality

#endif  // MDQA_QUALITY_CONTEXT_H_
