#ifndef MDQA_QUALITY_CQA_H_
#define MDQA_QUALITY_CQA_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "base/result.h"
#include "core/md_ontology.h"
#include "datalog/chase.h"
#include "datalog/program.h"
#include "qa/engines.h"

namespace mdqa::quality {

/// One violation of a dimensional constraint: the instantiated
/// constraint body (possibly over chase-derived atoms) plus the
/// *extensional* facts supporting it (derived witness atoms traced to
/// their provenance leaves).
struct Conflict {
  std::string constraint;                 ///< printed rule
  std::vector<datalog::Atom> witness;     ///< ground body match
  std::vector<datalog::Atom> suspects;    ///< extensional support
};

/// Conflict detection and repair-style querying over inconsistent data —
/// the paper's footnote 3 points at consistent query answering
/// (Bertossi); this is the denial-constraint fragment of it:
///
///  * `FindConflicts` materializes the chase (constraints off,
///    provenance on) and reports **every** negative-constraint match and
///    every EGD constant/constant clash, each traced to the extensional
///    facts it rests on.
///  * `ConflictFreeAnswers` removes every suspect extensional fact,
///    re-chases, and answers the query on the surviving data. For denial
///    constraints every repair keeps a subset of the non-suspect facts,
///    so the result is a sound **under-approximation of the consistent
///    answers** (every returned tuple holds in every repair; some
///    consistent answers may be missing). The paper's on-the-fly
///    cleaning, made executable.
class CqaEngine {
 public:
  explicit CqaEngine(const datalog::Program& program) : program_(&program) {}

  /// Marks a predicate as *structural*: its facts are never suspects and
  /// never dropped (the fault is assumed to lie with the data joined
  /// against them). Use for dimension membership and parent–child
  /// predicates — the dimensional structure is given, the categorical
  /// data is what gets repaired.
  void Protect(const std::string& predicate_name);

  /// Protects every category and parent-child predicate of `ontology`.
  void ProtectDimensionStructure(const core::MdOntology& ontology);

  Result<std::vector<Conflict>> FindConflicts(
      const datalog::ChaseOptions& chase_options =
          datalog::ChaseOptions()) const;

  /// Extensional facts appearing in at least one conflict's support,
  /// deduplicated.
  Result<std::vector<datalog::Atom>> SuspectFacts() const;

  Result<qa::AnswerSet> ConflictFreeAnswers(
      const datalog::ConjunctiveQuery& query,
      qa::Engine engine = qa::Engine::kChase) const;

  /// The program with all suspect facts removed (the "core" every
  /// denial-constraint repair contains).
  Result<datalog::Program> RepairCore() const;

 private:
  const datalog::Program* program_;
  std::unordered_set<uint32_t> protected_preds_;
};

}  // namespace mdqa::quality

#endif  // MDQA_QUALITY_CQA_H_
