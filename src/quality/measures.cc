#include "quality/measures.h"

#include <cstdio>

#include "base/json.h"

namespace mdqa::quality {

std::string QualityMeasures::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("relation").String(relation);
  w.Key("original_size").Number(original_size);
  w.Key("quality_size").Number(quality_size);
  w.Key("common").Number(common);
  w.Key("precision").Number(precision);
  w.Key("recall").Number(recall);
  w.Key("f1").Number(f1);
  w.EndObject();
  return w.TakeString();
}

std::string QualityMeasures::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%s: |D|=%zu |Dq|=%zu |D∩Dq|=%zu precision=%.3f recall=%.3f "
                "f1=%.3f",
                relation.c_str(), original_size, quality_size, common,
                precision, recall, f1);
  return buf;
}

Result<QualityMeasures> Measure(const Relation& original,
                                const Relation& quality) {
  if (original.arity() != quality.arity()) {
    return Status::InvalidArgument(
        "arity mismatch between '" + original.name() + "' and its quality "
        "version '" + quality.name() + "'");
  }
  QualityMeasures m;
  m.relation = original.name();
  m.original_size = original.size();
  m.quality_size = quality.size();
  for (const Tuple& t : original.rows()) {
    if (quality.Contains(t)) ++m.common;
  }
  m.precision = m.original_size == 0
                    ? 1.0
                    : static_cast<double>(m.common) /
                          static_cast<double>(m.original_size);
  m.recall = m.quality_size == 0 ? 1.0
                                 : static_cast<double>(m.common) /
                                       static_cast<double>(m.quality_size);
  m.f1 = (m.precision + m.recall) == 0.0
             ? 0.0
             : 2.0 * m.precision * m.recall / (m.precision + m.recall);
  return m;
}

}  // namespace mdqa::quality
