#include "quality/cqa.h"

#include <deque>
#include <unordered_set>

#include "datalog/provenance.h"
#include "datalog/unify.h"

namespace mdqa::quality {

using datalog::Atom;
using datalog::AtomHash;
using datalog::ChaseOptions;
using datalog::ConjunctiveQuery;
using datalog::CqEvaluator;
using datalog::Instance;
using datalog::Program;
using datalog::ProvenanceStore;
using datalog::Resolve;
using datalog::Rule;
using datalog::Subst;
using datalog::SubstAtom;
using datalog::Term;

namespace {

// Traces `atom` down to extensional leaves via provenance. Atoms without
// a derivation are the leaves themselves.
void TraceLeaves(const Atom& atom, const ProvenanceStore& provenance,
                 std::unordered_set<Atom, AtomHash>* seen,
                 std::vector<Atom>* out) {
  if (!seen->insert(atom).second) return;
  const ProvenanceStore::Derivation* d = provenance.Find(atom);
  if (d == nullptr) {
    out->push_back(atom);
    return;
  }
  for (const Atom& b : d->body) TraceLeaves(b, provenance, seen, out);
}

std::vector<Atom> SupportOf(const std::vector<Atom>& witness,
                            const ProvenanceStore& provenance,
                            const std::unordered_set<uint32_t>& protect) {
  std::vector<Atom> out;
  std::unordered_set<Atom, AtomHash> seen;
  for (const Atom& a : witness) TraceLeaves(a, provenance, &seen, &out);
  if (!protect.empty()) {
    std::vector<Atom> filtered;
    for (Atom& a : out) {
      if (protect.count(a.predicate) == 0) filtered.push_back(std::move(a));
    }
    out = std::move(filtered);
  }
  return out;
}

}  // namespace

void CqaEngine::Protect(const std::string& predicate_name) {
  uint32_t pred = program_->vocab()->FindPredicate(predicate_name);
  if (pred != StringPool::kNotFound) protected_preds_.insert(pred);
}

void CqaEngine::ProtectDimensionStructure(const core::MdOntology& ontology) {
  for (const std::string& dim_name : ontology.DimensionNames()) {
    const md::Dimension* dim = ontology.FindDimension(dim_name);
    const md::DimensionSchema& schema = dim->schema();
    for (const std::string& category : schema.categories()) {
      Protect(category);
      for (const std::string& parent : schema.Parents(category)) {
        Protect(md::Dimension::EdgePredicate(parent, category));
      }
    }
  }
}

Result<std::vector<Conflict>> CqaEngine::FindConflicts(
    const ChaseOptions& chase_options) const {
  ProvenanceStore provenance;
  ChaseOptions options = chase_options;
  options.check_constraints = false;
  options.egd_mode = datalog::EgdMode::kOff;  // clashes reported below
  options.provenance = &provenance;
  Instance instance = Instance::FromProgram(*program_);
  MDQA_RETURN_IF_ERROR(
      datalog::Chase::Run(*program_, &instance, options).status());

  const datalog::Vocabulary& vocab = *program_->vocab();
  std::vector<Conflict> conflicts;
  CqEvaluator eval(instance);

  for (const Rule& rule : program_->rules()) {
    if (rule.IsTgd()) continue;
    MDQA_RETURN_IF_ERROR(eval.Enumerate(
        rule.body, rule.negated, rule.comparisons, Subst{}, {},
        [&](const Subst& subst) {
          if (rule.IsEgd()) {
            Term a = Resolve(subst, rule.egd_lhs);
            Term b = Resolve(subst, rule.egd_rhs);
            // Only constant/constant disagreement is a hard violation;
            // null merges are the chase's job, not an inconsistency.
            if (!(a.IsConstant() && b.IsConstant() && a != b)) return true;
          }
          Conflict c;
          c.constraint = vocab.RuleToString(rule);
          c.witness.reserve(rule.body.size());
          for (const Atom& atom : rule.body) {
            c.witness.push_back(SubstAtom(subst, atom));
          }
          c.suspects = SupportOf(c.witness, provenance, protected_preds_);
          conflicts.push_back(std::move(c));
          return true;  // collect every violation
        }));
  }
  return conflicts;
}

Result<std::vector<Atom>> CqaEngine::SuspectFacts() const {
  MDQA_ASSIGN_OR_RETURN(std::vector<Conflict> conflicts, FindConflicts());
  std::vector<Atom> out;
  std::unordered_set<Atom, AtomHash> seen;
  for (const Conflict& c : conflicts) {
    for (const Atom& a : c.suspects) {
      if (seen.insert(a).second) out.push_back(a);
    }
  }
  return out;
}

Result<Program> CqaEngine::RepairCore() const {
  MDQA_ASSIGN_OR_RETURN(std::vector<Atom> suspects, SuspectFacts());
  std::unordered_set<Atom, AtomHash> drop(suspects.begin(), suspects.end());
  Program core(program_->vocab());
  for (const Rule& r : program_->rules()) {
    MDQA_RETURN_IF_ERROR(core.AddRule(r));
  }
  for (const Atom& f : program_->facts()) {
    if (drop.count(f) == 0) {
      MDQA_RETURN_IF_ERROR(core.AddFact(f));
    }
  }
  return core;
}

Result<qa::AnswerSet> CqaEngine::ConflictFreeAnswers(
    const ConjunctiveQuery& query, qa::Engine engine) const {
  MDQA_ASSIGN_OR_RETURN(Program core, RepairCore());
  return qa::Answer(engine, core, query);
}

}  // namespace mdqa::quality
