#include "serve/metrics.h"

#include "base/json.h"

namespace mdqa::serve {

namespace {

size_t BucketOf(uint64_t micros) {
  size_t b = 0;
  while (micros > 1 && b + 1 < LatencyHistogram::kBuckets) {
    micros >>= 1;
    ++b;
  }
  return b;
}

}  // namespace

void LatencyHistogram::Record(uint64_t micros) {
  buckets_[BucketOf(micros)].fetch_add(1, std::memory_order_relaxed);
}

uint64_t LatencyHistogram::Count() const {
  uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

uint64_t LatencyHistogram::PercentileMicros(double p) const {
  uint64_t snapshot[kBuckets];
  uint64_t total = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    snapshot[i] = buckets_[i].load(std::memory_order_relaxed);
    total += snapshot[i];
  }
  if (total == 0) return 0;
  // Rank of the p-quantile, clamped to [1, total] so p<=0 still lands on
  // the smallest recorded value instead of an empty leading bucket.
  uint64_t target = static_cast<uint64_t>(p * static_cast<double>(total) + 0.5);
  if (target < 1) target = 1;
  if (target > total) target = total;
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    seen += snapshot[i];
    if (seen >= target) return 1ull << (i + 1);  // bucket upper bound
  }
  return 1ull << kBuckets;
}

std::string ServerMetrics::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  auto n = [&w](const char* key, const std::atomic<uint64_t>& v) {
    w.Key(key).Number(static_cast<int64_t>(v.load(std::memory_order_relaxed)));
  };
  n("connections_accepted", connections_accepted);
  n("requests_parsed", requests_parsed);
  n("shed_queue_full", shed_queue_full);
  n("shed_tenant_rate", shed_tenant_rate);
  n("rejected_malformed", rejected_malformed);
  n("completed_ok", completed_ok);
  n("degraded_responses", degraded_responses);
  n("retries", retries);
  n("watchdog_cancels", watchdog_cancels);
  n("updates_applied", updates_applied);
  n("update_fallbacks", update_fallbacks);
  n("internal_errors", internal_errors);
  n("quota_reloads", quota_reloads);
  n("wal_appends", wal_appends);
  w.Key("latency_count").Number(static_cast<int64_t>(latency.Count()));
  w.Key("latency_p50_us")
      .Number(static_cast<int64_t>(latency.PercentileMicros(0.50)));
  w.Key("latency_p95_us")
      .Number(static_cast<int64_t>(latency.PercentileMicros(0.95)));
  w.Key("latency_p99_us")
      .Number(static_cast<int64_t>(latency.PercentileMicros(0.99)));
  w.EndObject();
  return w.TakeString();
}

}  // namespace mdqa::serve
