#ifndef MDQA_SERVE_ADMISSION_H_
#define MDQA_SERVE_ADMISSION_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "base/thread_annotations.h"

namespace mdqa::serve {

/// Per-tenant resource envelope: how fast a tenant may send (token
/// bucket) and how large each admitted request's `ExecutionBudget` slice
/// is (counter caps + deadline ceiling). The budget slice is the second
/// half of admission control — passing the bucket gets a request *in*,
/// the slice bounds what it can *do* once in, so a single tenant's
/// pathological queries degrade (kTruncated, labeled) instead of starving
/// the process.
struct TenantQuota {
  /// Token bucket: sustained requests/second and burst capacity.
  double requests_per_sec = 200.0;
  double burst = 50.0;
  /// Per-request ExecutionBudget caps (0 = uncapped).
  uint64_t max_steps_per_request = 0;
  uint64_t max_facts_per_request = 0;
  /// Ceiling on the per-request deadline (a client-requested deadline is
  /// clamped to this).
  std::chrono::milliseconds max_deadline{2000};
};

/// A standard token bucket: capacity `burst`, refill `rate` tokens/sec.
/// Thread-safe; time is passed in so tests drive it deterministically.
class TokenBucket {
 public:
  TokenBucket(double rate_per_sec, double burst);

  /// Takes one token if available. On refusal returns false and sets
  /// `*retry_after_sec` to the time until a token will exist — the
  /// value the server sends as `Retry-After`.
  bool TryAcquire(std::chrono::steady_clock::time_point now,
                  double* retry_after_sec);

 private:
  Mutex mu_;
  /// Immutable after construction, but kept under the lock with the rest
  /// of the bucket state so the invariant is one annotation, not prose.
  double rate_ MDQA_GUARDED_BY(mu_);
  double burst_ MDQA_GUARDED_BY(mu_);
  double tokens_ MDQA_GUARDED_BY(mu_);
  bool started_ MDQA_GUARDED_BY(mu_) = false;
  std::chrono::steady_clock::time_point last_ MDQA_GUARDED_BY(mu_);
};

/// Per-tenant admission: a token bucket per tenant id (created on demand
/// with the default quota; `SetQuota` installs overrides). Unknown
/// tenants are admitted under the default quota rather than rejected —
/// quotas are a protection mechanism, not an authentication one.
class AdmissionController {
 public:
  explicit AdmissionController(TenantQuota default_quota)
      : default_quota_(default_quota) {}

  void SetQuota(const std::string& tenant, TenantQuota quota);

  struct Decision {
    bool admitted = false;
    double retry_after_sec = 0.0;
    TenantQuota quota;  // the tenant's quota, for budget-slice sizing
  };

  Decision Admit(const std::string& tenant) {
    return AdmitAt(tenant, std::chrono::steady_clock::now());
  }
  /// Deterministic variant for tests.
  Decision AdmitAt(const std::string& tenant,
                   std::chrono::steady_clock::time_point now);

  size_t NumTenantsSeen() const;

 private:
  struct Tenant {
    TenantQuota quota;
    /// shared_ptr so an Admit caller can release the registry lock while
    /// it talks to the bucket, even if SetQuota concurrently replaces it.
    std::shared_ptr<TokenBucket> bucket;
  };

  mutable Mutex mu_;
  TenantQuota default_quota_ MDQA_GUARDED_BY(mu_);
  std::map<std::string, Tenant> tenants_ MDQA_GUARDED_BY(mu_);
};

}  // namespace mdqa::serve

#endif  // MDQA_SERVE_ADMISSION_H_
