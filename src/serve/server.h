#ifndef MDQA_SERVE_SERVER_H_
#define MDQA_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "base/budget.h"
#include "base/thread_annotations.h"
#include "base/json.h"
#include "base/net.h"
#include "quality/assessor.h"
#include "quality/context.h"
#include "serve/access_log.h"
#include "serve/admission.h"
#include "serve/http.h"
#include "serve/metrics.h"
#include "storage/kb_store.h"

namespace mdqa::serve {

/// Tuning knobs for one `AssessmentServer`. The defaults are sized for
/// the soak/bench harnesses (loopback, hospital-scale KB); a production
/// deployment would raise the quotas and caps together.
struct ServerOptions {
  /// 0 picks an ephemeral port (read back with `port()`).
  uint16_t port = 0;
  int worker_threads = 4;
  /// Bounded accepted-connection queue. When full, new connections are
  /// shed immediately with 429 + Retry-After — admission control's last
  /// line: the queue is where latency hides, so it must not grow.
  size_t queue_capacity = 64;
  /// Seconds a shed client is told to back off (`Retry-After`).
  int shed_retry_after_sec = 1;
  /// Bounded writer queue for /update batches; full = 429.
  size_t update_queue_capacity = 32;

  /// Default per-tenant quota (admission rate + budget slice); override
  /// per tenant via `AssessmentServer::SetTenantQuota`.
  TenantQuota default_quota;
  /// Default per-request deadline when the client sends none
  /// (X-Mdqa-Deadline-Ms), clamped to the tenant quota's ceiling.
  std::chrono::milliseconds default_deadline{1000};

  /// Bounded retry with exponential backoff: a query whose evaluation
  /// trips its *counter* budget (kTruncated, not deadline/cancel) is
  /// retried up to `max_retries` more times, counter caps escalated by
  /// `escalation_factor` each attempt, sleeping backoff_base * 2^attempt
  /// between attempts — all inside the request's original deadline.
  int max_retries = 2;
  double escalation_factor = 4.0;
  std::chrono::milliseconds retry_backoff_base{2};

  /// Watchdog: every `watchdog_period`, requests running past their
  /// deadline by more than `watchdog_grace` get their CancellationToken
  /// cancelled; the engines unwind cooperatively at the next probe.
  std::chrono::milliseconds watchdog_period{20};
  std::chrono::milliseconds watchdog_grace{200};

  /// Socket/parse limits for request reading.
  HttpLimits http_limits;
  /// Parse limits for request *bodies* (stricter than the library default:
  /// a request body has no business nesting 64 levels deep).
  JsonLimits json_limits{/*max_depth=*/32, /*max_bytes=*/1 * 1024 * 1024};

  /// Chaos hook: attached to every per-request budget, so armed probes
  /// ("cq:row", ...) fire inside request evaluation. Not owned. The
  /// writer's ApplyUpdate/Reassess runs WITHOUT the injector — update
  /// application is exact or failed, never silently partial, which is
  /// what keeps the drain-time oracle byte-comparison meaningful.
  FaultInjector* fault_injector = nullptr;

  /// Durability (docs/durability.md). When non-null: Start() recovers the
  /// newest durable state and resumes at its committed generation WITHOUT
  /// re-running the chase (checkpoint restore + WAL roll-forward, then a
  /// fresh collapsing checkpoint); the writer thread WAL-appends (fsync)
  /// every DeltaBatch after it validates and BEFORE its snapshot
  /// publishes — the append is the commit point; and Shutdown writes a
  /// final checkpoint of the drained state. Not owned.
  storage::KbStore* store = nullptr;
  /// Fingerprint of the program/scenario this server runs, stamped into
  /// every checkpoint. Recovery refuses a checkpoint stamped with a
  /// different scenario (resuming a foreign KB would silently marry rows
  /// to the wrong rules).
  std::string scenario;

  /// Structured access logging: one JSON line per handled request
  /// (tenant, generation, engine, status, latency, outcome — including
  /// sheds, timeouts, and parse rejections). Capped and fsync-free by
  /// the AccessLog contract. Not owned.
  AccessLog* access_log = nullptr;
};

/// A long-lived multi-tenant assessment daemon: HTTP/1.1 + JSON over
/// loopback, serving concurrent quality queries against immutable
/// `PreparedContext` snapshots while a single writer thread applies
/// `DeltaBatch` updates (`ApplyUpdate` + `Reassess`) and publishes new
/// snapshots under a monotone generation counter.
///
/// Concurrency model (docs/robustness.md has the full failure model):
///  - Readers pin the current snapshot (shared_ptr) and serve entirely
///    from it — a response can never observe two generations (torn read).
///  - The shared Vocabulary is single-mutator: query parsing and update
///    application take the write side of `vocab_mu_`; evaluation and
///    answer rendering take the read side.
///  - Admission: per-tenant token buckets (429 + Retry-After on refusal),
///    then a bounded connection queue (shed when full), then a per-request
///    `ExecutionBudget` slice cut from the tenant quota.
///  - Every response computed from partial work is *labeled*
///    ("degraded": true + the interruption status); the watchdog cancels
///    requests that outlive their deadline.
///  - Drain (`Shutdown`, or SIGTERM in mdqa_serve): stop accepting,
///    finish queued + in-flight requests against their pinned snapshots,
///    quiesce the writer, then verify the drained state is internally
///    consistent (`DrainStatus`).
///
/// Endpoints: GET /healthz, GET /stats, GET /report, POST /query,
/// POST /assess, POST /update. Tenant id rides in X-Mdqa-Tenant
/// (default "anonymous"); deadlines in X-Mdqa-Deadline-Ms.
class AssessmentServer {
 public:
  /// Builds the initial snapshot (Prepare + full Assess — constraint
  /// violations and lint errors surface here), binds the listener, and
  /// starts the accept/worker/writer/watchdog threads.
  static Result<std::unique_ptr<AssessmentServer>> Start(
      quality::QualityContext context, const ServerOptions& options);

  ~AssessmentServer();
  AssessmentServer(const AssessmentServer&) = delete;
  AssessmentServer& operator=(const AssessmentServer&) = delete;

  uint16_t port() const { return listener_.port(); }

  void SetTenantQuota(const std::string& tenant, TenantQuota quota) {
    admission_.SetQuota(tenant, quota);
  }

  /// Hot tenant-quota reload (POST /admin/quotas, and SIGHUP in
  /// mdqa_serve): a JSON object mapping tenant id to a quota spec —
  /// {"acme": {"requests_per_sec": 50, "burst": 10, "max_deadline_ms":
  /// 500, "max_steps": 100000, "max_facts": 50000}} — with every field
  /// optional (defaults from ServerOptions::default_quota). All-or-
  /// nothing: every entry is validated before any is applied, so a
  /// malformed config is rejected (kInvalidArgument) and changes NO
  /// quota.
  Status ApplyQuotaConfig(const std::string& json_text);

  /// Graceful drain; idempotent, returns when every thread has exited.
  void Shutdown();

  /// Marks the server draining without blocking (async-signal-unfriendly
  /// work deferred: the signal handler in mdqa_serve only flips an atomic
  /// and the main thread calls Shutdown).
  void RequestDrain() { draining_.store(true, std::memory_order_release); }
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  /// Post-drain internal consistency check: queues empty, no in-flight
  /// requests, published generation == base generation + applied updates,
  /// final snapshot's report present and complete, final checkpoint (when
  /// a store is attached) written. kInternal on violation.
  Status DrainStatus() const;

  /// Generation of the initial snapshot: 1 for a fresh start, the
  /// recovered generation (checkpoint + WAL roll-forward) with a store.
  uint64_t base_generation() const { return base_generation_; }
  /// The store's degradation report from recovery (corrupt checkpoints
  /// fallen past, torn WAL tails cut). Empty for a clean start. Loud by
  /// design: mdqa_serve prints these at startup.
  const std::vector<std::string>& recovery_degradations() const {
    return recovery_degradations_;
  }
  /// Outcome of the drain-time checkpoint (Ok before Shutdown, and
  /// always Ok without a store). Read after Shutdown() returns.
  const Status& final_persist_status() const { return final_persist_status_; }

  uint64_t generation() const;
  /// The current (or, post-drain, final) published report, as rendered at
  /// publish time.
  std::string CurrentReportJson() const;
  /// The current snapshot's session, pinned — post-drain its database is
  /// the from-scratch oracle's input (tests rebuild a fresh context
  /// around a copy and byte-compare full Assess output).
  std::shared_ptr<const quality::PreparedContext> CurrentSession() const;

  const ServerMetrics& metrics() const { return metrics_; }

 private:
  /// One published world-state: everything a request needs, immutable.
  struct Snapshot {
    uint64_t generation = 0;
    std::shared_ptr<const quality::PreparedContext> session;
    std::shared_ptr<const quality::AssessmentReport> report;
    /// Rendered once at publish (on the writer, under the vocab write
    /// lock), so /report and /assess never touch the vocabulary.
    std::string report_json;
  };

  struct UpdateJob {
    quality::DeltaBatch batch;
    std::promise<Result<uint64_t>> done;  // new generation on success
  };

  /// Per-worker watchdog slot. The deadline is stored as steady-clock
  /// nanoseconds in an atomic so the watchdog's scan never races a
  /// worker re-arming the slot for its next request. A watchdog decision
  /// made a scan-period ago can in principle cancel the *next* request on
  /// the slot; that is harmless — cancellation is cooperative and the
  /// response is labeled degraded either way.
  struct RequestSlot {
    std::atomic<bool> active{false};
    std::atomic<int64_t> hard_deadline_ns{0};
    CancellationToken token;
  };

  AssessmentServer(quality::QualityContext context, ServerOptions options)
      : context_(std::move(context)), options_(options),
        admission_(options.default_quota) {}

  std::shared_ptr<const Snapshot> Pin() const;
  void Publish(std::shared_ptr<const Snapshot> snap);

  void AcceptLoop();
  void WorkerLoop(size_t worker_index);
  void WriterLoop();
  void WatchdogLoop();

  void HandleConnection(net::Socket sock, RequestSlot* slot);
  /// Route dispatch; returns the full serialized response.
  std::string Dispatch(const HttpRequest& req, RequestSlot* slot);
  std::string HandleHealth();
  std::string HandleStats();
  std::string HandleReport();
  std::string HandleQuery(const HttpRequest& req, RequestSlot* slot);
  std::string HandleAssess(const HttpRequest& req);
  std::string HandleUpdate(const HttpRequest& req, RequestSlot* slot);
  std::string HandleAdminQuotas(const HttpRequest& req);

  quality::QualityContext context_;
  ServerOptions options_;
  AdmissionController admission_;
  ServerMetrics metrics_;

  net::Listener listener_;

  mutable Mutex snapshot_mu_;
  std::shared_ptr<const Snapshot> snapshot_ MDQA_GUARDED_BY(snapshot_mu_);

  /// Guards the shared Vocabulary: write = parse/intern/update, read =
  /// evaluate/render. See the class comment. (The vocabulary itself is
  /// reached through the pinned snapshot, so the annotation lives on the
  /// lock discipline, not on a member.)
  mutable SharedMutex vocab_mu_;

  mutable Mutex conn_mu_;
  CondVar conn_cv_;
  std::deque<net::Socket> conn_queue_ MDQA_GUARDED_BY(conn_mu_);

  mutable Mutex update_mu_;
  CondVar update_cv_;
  std::deque<UpdateJob> update_queue_ MDQA_GUARDED_BY(update_mu_);

  std::vector<std::unique_ptr<RequestSlot>> slots_;
  std::atomic<uint64_t> in_flight_{0};

  std::atomic<bool> draining_{false};
  std::atomic<bool> accept_done_{false};
  std::atomic<bool> workers_done_{false};
  std::atomic<bool> stop_watchdog_{false};

  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  std::thread writer_thread_;
  std::thread watchdog_thread_;
  bool shut_down_ = false;  // Shutdown() already ran (main thread only)

  /// Durability state (set once in Start; final_persist_status_ written
  /// by Shutdown on the owning thread, read after it returns).
  uint64_t base_generation_ = 1;
  std::vector<std::string> recovery_degradations_;
  Status final_persist_status_;
};

}  // namespace mdqa::serve

#endif  // MDQA_SERVE_SERVER_H_
