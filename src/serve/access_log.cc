#include "serve/access_log.h"

#include <utility>

#include "base/json.h"

namespace mdqa::serve {

AccessLog::AccessLog(std::unique_ptr<storage::WritableFile> sink,
                     uint64_t max_bytes)
    : sink_(std::move(sink)), max_bytes_(max_bytes) {}

Result<std::unique_ptr<AccessLog>> AccessLog::Open(storage::Env* env,
                                                   const std::string& path,
                                                   uint64_t max_bytes) {
  MDQA_ASSIGN_OR_RETURN(std::unique_ptr<storage::WritableFile> sink,
                        env->NewAppendableFile(path));
  return std::make_unique<AccessLog>(std::move(sink), max_bytes);
}

void AccessLog::Record(const Entry& entry) {
  JsonWriter w;
  w.BeginObject();
  w.Key("tenant").String(entry.tenant);
  w.Key("method").String(entry.method);
  w.Key("target").String(entry.target);
  w.Key("generation").Number(static_cast<int64_t>(entry.generation));
  w.Key("engine").String(entry.engine);
  w.Key("status").Number(static_cast<int64_t>(entry.http_status));
  w.Key("latency_us").Number(static_cast<int64_t>(entry.latency_us));
  w.Key("outcome").String(entry.outcome);
  w.EndObject();
  std::string line = w.TakeString();
  line.push_back('\n');

  MutexLock lock(&mu_);
  if (max_bytes_ != 0 && bytes_written_ + line.size() > max_bytes_) {
    ++lines_dropped_;  // capped: count, never block or grow
    return;
  }
  // Append only — no Sync. A crash may lose tail lines; that is the
  // documented trade (the WAL owns durability, the log owns visibility).
  if (!sink_->Append(line).ok()) {
    ++lines_dropped_;
    return;
  }
  bytes_written_ += line.size();
  ++lines_written_;
}

uint64_t AccessLog::lines_written() const {
  MutexLock lock(&mu_);
  return lines_written_;
}

uint64_t AccessLog::lines_dropped() const {
  MutexLock lock(&mu_);
  return lines_dropped_;
}

uint64_t AccessLog::bytes_written() const {
  MutexLock lock(&mu_);
  return bytes_written_;
}

}  // namespace mdqa::serve
