#include "serve/http.h"

#include <algorithm>
#include <cctype>

namespace mdqa::serve {

namespace {

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

const std::string* FindIn(
    const std::vector<std::pair<std::string, std::string>>& headers,
    std::string_view name) {
  for (const auto& [k, v] : headers) {
    if (EqualsIgnoreCase(k, name)) return &v;
  }
  return nullptr;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

/// Splits a raw header block (after the start line) into name/value pairs.
Status ParseHeaderLines(
    std::string_view block,
    std::vector<std::pair<std::string, std::string>>* out) {
  size_t pos = 0;
  while (pos < block.size()) {
    size_t eol = block.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = block.size();
    std::string_view line = block.substr(pos, eol - pos);
    pos = eol + 2 > block.size() ? block.size() : eol + 2;
    if (line.empty()) continue;
    size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      return Status::InvalidArgument("http: malformed header line");
    }
    out->emplace_back(std::string(Trim(line.substr(0, colon))),
                      std::string(Trim(line.substr(colon + 1))));
  }
  return Status::Ok();
}

/// Reads from `sock` into `buf` until `buf` contains `want` bytes or, when
/// `until_eof`, the peer closes. Cap enforced by the caller.
Status ReadUpTo(net::Socket& sock, std::string* buf, size_t want) {
  char chunk[4096];
  while (buf->size() < want) {
    size_t cap = std::min(sizeof(chunk), want - buf->size());
    MDQA_ASSIGN_OR_RETURN(size_t n, sock.ReadSome(chunk, cap));
    if (n == 0) {
      return Status::NotFound("http: connection closed mid-message");
    }
    buf->append(chunk, n);
  }
  return Status::Ok();
}

Result<size_t> ParseContentLength(const std::string& text) {
  size_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("http: malformed Content-Length");
    }
    value = value * 10 + static_cast<size_t>(c - '0');
    if (value > (1ull << 40)) {
      return Status::InvalidArgument("http: absurd Content-Length");
    }
  }
  return value;
}

}  // namespace

const std::string* HttpRequest::FindHeader(std::string_view name) const {
  return FindIn(headers, name);
}

const std::string* HttpResponse::FindHeader(std::string_view name) const {
  return FindIn(headers, name);
}

const char* HttpStatusReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 409: return "Conflict";
    case 412: return "Precondition Failed";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

Result<HttpRequest> ReadHttpRequest(net::Socket& sock,
                                    const HttpLimits& limits) {
  MDQA_RETURN_IF_ERROR(sock.SetRecvTimeout(limits.read_timeout));

  // Header phase: read until the blank line, never past the header cap.
  std::string buf;
  size_t header_end = std::string::npos;
  while (true) {
    header_end = buf.find("\r\n\r\n");
    if (header_end != std::string::npos) break;
    if (buf.size() >= limits.max_header_bytes) {
      return Status::ResourceExhausted("http: headers exceed " +
                                       std::to_string(limits.max_header_bytes) +
                                       " bytes");
    }
    char chunk[4096];
    size_t cap = std::min(sizeof(chunk), limits.max_header_bytes - buf.size());
    MDQA_ASSIGN_OR_RETURN(size_t n, sock.ReadSome(chunk, cap));
    if (n == 0) {
      if (buf.empty()) return Status::NotFound("http: peer closed");
      return Status::NotFound("http: connection closed mid-headers");
    }
    buf.append(chunk, n);
  }

  std::string_view head(buf.data(), header_end);
  size_t line_end = head.find("\r\n");
  std::string_view start_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);

  HttpRequest req;
  size_t sp1 = start_line.find(' ');
  size_t sp2 = sp1 == std::string_view::npos
                   ? std::string_view::npos
                   : start_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    return Status::InvalidArgument("http: malformed request line");
  }
  req.method = std::string(start_line.substr(0, sp1));
  std::string_view target = start_line.substr(sp1 + 1, sp2 - sp1 - 1);
  std::string_view version = start_line.substr(sp2 + 1);
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    return Status::InvalidArgument("http: unsupported version");
  }
  size_t qmark = target.find('?');
  req.target = std::string(
      qmark == std::string_view::npos ? target : target.substr(0, qmark));

  if (line_end != std::string_view::npos) {
    MDQA_RETURN_IF_ERROR(
        ParseHeaderLines(head.substr(line_end + 2), &req.headers));
  }

  if (req.FindHeader("Transfer-Encoding") != nullptr) {
    return Status::Unimplemented("http: chunked bodies not supported");
  }

  size_t body_start = header_end + 4;
  size_t content_length = 0;
  if (const std::string* cl = req.FindHeader("Content-Length")) {
    MDQA_ASSIGN_OR_RETURN(content_length, ParseContentLength(*cl));
  }
  if (content_length > limits.max_body_bytes) {
    return Status::ResourceExhausted("http: body of " +
                                     std::to_string(content_length) +
                                     " bytes exceeds the " +
                                     std::to_string(limits.max_body_bytes) +
                                     "-byte limit");
  }
  MDQA_RETURN_IF_ERROR(ReadUpTo(sock, &buf, body_start + content_length));
  req.body = buf.substr(body_start, content_length);
  return req;
}

std::string SerializeHttpResponse(
    int status, std::string_view body,
    const std::vector<std::pair<std::string, std::string>>& extra_headers) {
  std::string out;
  out.reserve(128 + body.size());
  out += "HTTP/1.1 ";
  out += std::to_string(status);
  out += ' ';
  out += HttpStatusReason(status);
  out += "\r\nContent-Type: application/json\r\nConnection: close\r\n";
  for (const auto& [k, v] : extra_headers) {
    out += k;
    out += ": ";
    out += v;
    out += "\r\n";
  }
  out += "Content-Length: ";
  out += std::to_string(body.size());
  out += "\r\n\r\n";
  out += body;
  return out;
}

Result<HttpResponse> HttpRoundTrip(
    net::Socket& sock, std::string_view method, std::string_view target,
    std::string_view body,
    const std::vector<std::pair<std::string, std::string>>& headers,
    const HttpLimits& limits) {
  std::string req;
  req.reserve(128 + body.size());
  req += method;
  req += ' ';
  req += target;
  req += " HTTP/1.1\r\nHost: 127.0.0.1\r\nConnection: close\r\n";
  for (const auto& [k, v] : headers) {
    req += k;
    req += ": ";
    req += v;
    req += "\r\n";
  }
  req += "Content-Length: ";
  req += std::to_string(body.size());
  req += "\r\n\r\n";
  req += body;
  MDQA_RETURN_IF_ERROR(sock.SetSendTimeout(limits.read_timeout));
  MDQA_RETURN_IF_ERROR(sock.SendAll(req));
  MDQA_RETURN_IF_ERROR(sock.SetRecvTimeout(limits.read_timeout));

  // The server closes after one response: read headers, then body to
  // Content-Length (or EOF), under the same caps as the server side.
  std::string buf;
  size_t header_end = std::string::npos;
  while (true) {
    header_end = buf.find("\r\n\r\n");
    if (header_end != std::string::npos) break;
    if (buf.size() >= limits.max_header_bytes) {
      return Status::ResourceExhausted("http: response headers too large");
    }
    char chunk[4096];
    MDQA_ASSIGN_OR_RETURN(size_t n, sock.ReadSome(chunk, sizeof(chunk)));
    if (n == 0) return Status::NotFound("http: closed mid-response");
    buf.append(chunk, n);
  }
  std::string_view head(buf.data(), header_end);
  size_t line_end = head.find("\r\n");
  std::string_view status_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  HttpResponse resp;
  size_t sp1 = status_line.find(' ');
  if (sp1 == std::string_view::npos || sp1 + 4 > status_line.size()) {
    return Status::InvalidArgument("http: malformed status line");
  }
  resp.status = 0;
  for (size_t i = sp1 + 1;
       i < status_line.size() && std::isdigit(static_cast<unsigned char>(
                                     status_line[i]));
       ++i) {
    resp.status = resp.status * 10 + (status_line[i] - '0');
  }
  if (line_end != std::string_view::npos) {
    MDQA_RETURN_IF_ERROR(
        ParseHeaderLines(head.substr(line_end + 2), &resp.headers));
  }
  size_t body_start = header_end + 4;
  size_t content_length = 0;
  if (const std::string* cl = resp.FindHeader("Content-Length")) {
    MDQA_ASSIGN_OR_RETURN(content_length, ParseContentLength(*cl));
    if (content_length > limits.max_body_bytes) {
      return Status::ResourceExhausted("http: response body too large");
    }
    MDQA_RETURN_IF_ERROR(ReadUpTo(sock, &buf, body_start + content_length));
    resp.body = buf.substr(body_start, content_length);
  } else {
    // Read to EOF under the body cap.
    char chunk[4096];
    while (buf.size() < body_start + limits.max_body_bytes) {
      MDQA_ASSIGN_OR_RETURN(size_t n, sock.ReadSome(chunk, sizeof(chunk)));
      if (n == 0) break;
      buf.append(chunk, n);
    }
    resp.body = buf.substr(body_start);
  }
  return resp;
}

}  // namespace mdqa::serve
