#ifndef MDQA_SERVE_METRICS_H_
#define MDQA_SERVE_METRICS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace mdqa::serve {

/// Lock-free latency histogram: power-of-two microsecond buckets
/// (bucket i covers [2^i, 2^(i+1)) µs), relaxed atomic counters. Record
/// is one fetch_add on the hot path; percentiles are computed from a
/// snapshot and are exact to bucket resolution (~2x), which is plenty for
/// p50/p95/p99 reporting — this is an operational dial, not a paper
/// artifact.
class LatencyHistogram {
 public:
  static constexpr size_t kBuckets = 40;  // up to ~2^39 µs ≈ 6 days

  void Record(uint64_t micros);

  uint64_t Count() const;
  /// `p` in (0, 1]; returns the upper bound (µs) of the bucket containing
  /// the p-quantile, 0 when empty.
  uint64_t PercentileMicros(double p) const;

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
};

/// Operational counters for one server instance, exported at /stats and
/// into BENCH_serve.json. All relaxed atomics — these are monotone tallies
/// read for observability, never for synchronization.
struct ServerMetrics {
  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> requests_parsed{0};
  std::atomic<uint64_t> shed_queue_full{0};     // 429: connection queue full
  std::atomic<uint64_t> shed_tenant_rate{0};    // 429: token bucket refusal
  std::atomic<uint64_t> rejected_malformed{0};  // 4xx parse/limit refusals
  std::atomic<uint64_t> completed_ok{0};        // 2xx responses
  std::atomic<uint64_t> degraded_responses{0};  // 2xx but labeled degraded
  std::atomic<uint64_t> retries{0};             // budget-escalation retries
  std::atomic<uint64_t> watchdog_cancels{0};
  std::atomic<uint64_t> updates_applied{0};
  std::atomic<uint64_t> update_fallbacks{0};  // full re-chase fallbacks
  std::atomic<uint64_t> internal_errors{0};   // 5xx responses
  std::atomic<uint64_t> quota_reloads{0};     // accepted quota configs
  std::atomic<uint64_t> wal_appends{0};       // durable update commits
  LatencyHistogram latency;

  /// One JSON object with every counter plus p50/p95/p99 latency (µs).
  std::string ToJson() const;
};

}  // namespace mdqa::serve

#endif  // MDQA_SERVE_METRICS_H_
