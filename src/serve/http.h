#ifndef MDQA_SERVE_HTTP_H_
#define MDQA_SERVE_HTTP_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "base/net.h"
#include "base/result.h"

namespace mdqa::serve {

/// Caps applied while reading a request from an untrusted client. Every
/// limit trips with a clean Status (mapped to 431/413/408 by the server)
/// instead of unbounded buffering — a misbehaving tenant can cost the
/// daemon at most `max_header_bytes + max_body_bytes` of memory and
/// `read_timeout` of one worker's time.
struct HttpLimits {
  size_t max_header_bytes = 16 * 1024;
  size_t max_body_bytes = 1 * 1024 * 1024;
  std::chrono::milliseconds read_timeout{5000};
};

/// One parsed HTTP/1.1 request. The serve layer speaks
/// one-request-per-connection (`Connection: close`) — keep-alive would
/// complicate the drain/backpressure story for no benefit at loopback
/// latencies.
struct HttpRequest {
  std::string method;  // "GET", "POST"
  std::string target;  // path only; the query string is stripped
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// Case-insensitive header lookup; nullptr when absent.
  const std::string* FindHeader(std::string_view name) const;
};

/// A parsed HTTP response (client side — the soak harness, the load
/// generator, and `mdqa_serve --smoke` all drive the daemon through real
/// sockets, not an in-process shortcut).
struct HttpResponse {
  int status = 0;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  const std::string* FindHeader(std::string_view name) const;
};

/// Reads and parses one request from `sock` under `limits`.
/// Error statuses: kInvalidArgument (malformed), kResourceExhausted
/// (header/body over cap, read timeout), kUnimplemented (chunked
/// encoding), kNotFound (peer closed before a full request).
Result<HttpRequest> ReadHttpRequest(net::Socket& sock,
                                    const HttpLimits& limits);

/// Serializes a response with Content-Length, Content-Type:
/// application/json, and Connection: close added automatically.
std::string SerializeHttpResponse(
    int status, std::string_view body,
    const std::vector<std::pair<std::string, std::string>>& extra_headers =
        {});

/// Client side: sends `method target` with `body` (adding Content-Length
/// and Host) and reads the full response (the server closes after one
/// response, so body reads run to EOF or Content-Length).
Result<HttpResponse> HttpRoundTrip(
    net::Socket& sock, std::string_view method, std::string_view target,
    std::string_view body,
    const std::vector<std::pair<std::string, std::string>>& headers,
    const HttpLimits& limits);

/// Canonical reason phrase for the status codes this server emits.
const char* HttpStatusReason(int status);

}  // namespace mdqa::serve

#endif  // MDQA_SERVE_HTTP_H_
