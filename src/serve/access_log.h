#ifndef MDQA_SERVE_ACCESS_LOG_H_
#define MDQA_SERVE_ACCESS_LOG_H_

#include <cstdint>
#include <memory>
#include <string>

#include "base/result.h"
#include "base/thread_annotations.h"
#include "storage/env.h"

namespace mdqa::serve {

/// Bounded structured access logging: one JSON object per line per
/// request. Deliberately fsync-free — observability must never pay
/// durability's latency (the WAL does that; see docs/durability.md) —
/// and byte-capped: once the cap is hit, lines are counted as dropped
/// instead of written, so a hot loop cannot fill the disk. Thread-safe;
/// workers call `Record` concurrently.
class AccessLog {
 public:
  struct Entry {
    std::string tenant;   // sanitized (or "anonymous" / "-" pre-parse)
    std::string method;   // "-" when the request never parsed
    std::string target;
    uint64_t generation = 0;  // snapshot generation the request observed
    std::string engine;       // engine of the observed snapshot's report
    int http_status = 0;
    uint64_t latency_us = 0;
    /// "ok", "degraded", "shed", "timeout", "rejected", or "error" —
    /// every response is classified, including sheds and read failures.
    std::string outcome;
  };

  /// `max_bytes` caps total bytes written over the log's lifetime
  /// (0 = uncapped).
  AccessLog(std::unique_ptr<storage::WritableFile> sink, uint64_t max_bytes);

  /// Opens `path` for appending via `env` (storage::Env::Posix() for the
  /// real daemon; a FaultyEnv in tests).
  static Result<std::unique_ptr<AccessLog>> Open(storage::Env* env,
                                                 const std::string& path,
                                                 uint64_t max_bytes);

  void Record(const Entry& entry);

  uint64_t lines_written() const;
  uint64_t lines_dropped() const;
  uint64_t bytes_written() const;

 private:
  mutable Mutex mu_;
  std::unique_ptr<storage::WritableFile> sink_ MDQA_GUARDED_BY(mu_);
  const uint64_t max_bytes_;
  uint64_t bytes_written_ MDQA_GUARDED_BY(mu_) = 0;
  uint64_t lines_written_ MDQA_GUARDED_BY(mu_) = 0;
  uint64_t lines_dropped_ MDQA_GUARDED_BY(mu_) = 0;
};

}  // namespace mdqa::serve

#endif  // MDQA_SERVE_ACCESS_LOG_H_
