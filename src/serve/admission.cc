#include "serve/admission.h"

#include <algorithm>

namespace mdqa::serve {

TokenBucket::TokenBucket(double rate_per_sec, double burst)
    : rate_(std::max(rate_per_sec, 1e-9)),
      burst_(std::max(burst, 1.0)),
      tokens_(burst_) {}

bool TokenBucket::TryAcquire(std::chrono::steady_clock::time_point now,
                             double* retry_after_sec) {
  MutexLock lock(&mu_);
  if (!started_) {
    started_ = true;
    last_ = now;
  }
  const double elapsed =
      std::chrono::duration<double>(now - last_).count();
  if (elapsed > 0) {
    tokens_ = std::min(burst_, tokens_ + elapsed * rate_);
    last_ = now;
  }
  if (tokens_ >= 1.0) {
    tokens_ -= 1.0;
    return true;
  }
  if (retry_after_sec != nullptr) {
    *retry_after_sec = (1.0 - tokens_) / rate_;
  }
  return false;
}

void AdmissionController::SetQuota(const std::string& tenant,
                                   TenantQuota quota) {
  MutexLock lock(&mu_);
  Tenant& t = tenants_[tenant];
  t.quota = quota;
  t.bucket = std::make_shared<TokenBucket>(quota.requests_per_sec,
                                           quota.burst);
}

AdmissionController::Decision AdmissionController::AdmitAt(
    const std::string& tenant, std::chrono::steady_clock::time_point now) {
  std::shared_ptr<TokenBucket> bucket;
  Decision d;
  {
    MutexLock lock(&mu_);
    auto it = tenants_.find(tenant);
    if (it == tenants_.end()) {
      Tenant t;
      t.quota = default_quota_;
      t.bucket = std::make_shared<TokenBucket>(
          default_quota_.requests_per_sec, default_quota_.burst);
      it = tenants_.emplace(tenant, std::move(t)).first;
    }
    d.quota = it->second.quota;
    bucket = it->second.bucket;
  }
  // The registry lock is released before the bucket's own lock is taken —
  // a hot tenant's bucket contention never serializes other tenants'
  // admission. The shared_ptr keeps the bucket alive across a concurrent
  // SetQuota replacement.
  d.admitted = bucket->TryAcquire(now, &d.retry_after_sec);
  return d;
}

size_t AdmissionController::NumTenantsSeen() const {
  MutexLock lock(&mu_);
  return tenants_.size();
}

}  // namespace mdqa::serve
