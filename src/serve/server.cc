#include "serve/server.h"

#include <algorithm>
#include <cctype>
#include <optional>

#include "datalog/rule.h"
#include "storage/session_image.h"

namespace mdqa::serve {

namespace {

using quality::DeltaBatch;
using quality::PreparedContext;
using quality::RelationDelta;

int64_t NowNs() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

std::string ErrorBody(const Status& s) {
  JsonWriter w;
  w.BeginObject();
  w.Key("error").String(StatusCodeToString(s.code()));
  w.Key("message").String(s.message());
  w.EndObject();
  return w.TakeString();
}

std::string ErrorResponse(int http_status, const Status& s) {
  return SerializeHttpResponse(http_status, ErrorBody(s));
}

std::string ShedResponse(double retry_after_sec, const char* what) {
  JsonWriter w;
  w.BeginObject();
  w.Key("error").String("ResourceExhausted");
  w.Key("message").String(what);
  w.Key("retry_after_sec").Number(retry_after_sec);
  w.EndObject();
  int whole = static_cast<int>(retry_after_sec) + 1;
  return SerializeHttpResponse(
      429, w.TakeString(),
      {{"Retry-After", std::to_string(whole)}});
}

/// Maps a request-reading failure to the response (nullptr = just close:
/// the peer went away before sending anything useful).
std::unique_ptr<std::string> ResponseForReadError(const Status& s) {
  switch (s.code()) {
    case StatusCode::kNotFound:
      return nullptr;
    case StatusCode::kInvalidArgument:
      return std::make_unique<std::string>(ErrorResponse(400, s));
    case StatusCode::kUnimplemented:
      return std::make_unique<std::string>(ErrorResponse(501, s));
    case StatusCode::kResourceExhausted: {
      int code = 408;  // timeout by default
      if (s.message().find("headers") != std::string::npos) code = 431;
      if (s.message().find("body") != std::string::npos) code = 413;
      return std::make_unique<std::string>(ErrorResponse(code, s));
    }
    default:
      return std::make_unique<std::string>(ErrorResponse(400, s));
  }
}

/// Tenant ids come off the wire: bound the length and the alphabet so a
/// hostile client cannot grow the admission registry with garbage keys.
Result<std::string> SanitizeTenant(const HttpRequest& req) {
  const std::string* hdr = req.FindHeader("X-Mdqa-Tenant");
  std::string tenant = hdr != nullptr ? *hdr : "anonymous";
  if (tenant.empty() || tenant.size() > 64) {
    return Status::InvalidArgument("serve: tenant id must be 1..64 chars");
  }
  for (char c : tenant) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '-' &&
        c != '_' && c != '.') {
      return Status::InvalidArgument("serve: tenant id has invalid chars");
    }
  }
  return tenant;
}

Result<Tuple> RowFromJson(const JsonValue& row, size_t arity) {
  if (!row.is_array()) {
    return Status::InvalidArgument("serve: row must be a JSON array");
  }
  if (row.Items().size() != arity) {
    return Status::InvalidArgument(
        "serve: row arity " + std::to_string(row.Items().size()) +
        " does not match relation arity " + std::to_string(arity));
  }
  Tuple t;
  t.reserve(arity);
  for (const JsonValue& cell : row.Items()) {
    if (cell.is_string()) {
      // Same conversion as CSV/InsertText ingestion: numeric-looking
      // strings become numbers, everything else stays a string.
      t.push_back(Value::FromText(cell.AsString()));
    } else if (cell.is_number()) {
      t.push_back(Value::Real(cell.AsNumber()));
    } else {
      return Status::InvalidArgument(
          "serve: row cells must be strings or numbers");
    }
  }
  return t;
}

/// RAII arm/disarm of a watchdog slot around one budgeted request.
class SlotGuard {
 public:
  SlotGuard(std::atomic<bool>* active, std::atomic<int64_t>* deadline_ns,
            CancellationToken* token, int64_t hard_deadline_ns)
      : active_(active) {
    token->Reset();
    deadline_ns->store(hard_deadline_ns, std::memory_order_relaxed);
    active_->store(true, std::memory_order_release);
  }
  ~SlotGuard() { active_->store(false, std::memory_order_release); }

 private:
  std::atomic<bool>* active_;
};

}  // namespace

Result<std::unique_ptr<AssessmentServer>> AssessmentServer::Start(
    quality::QualityContext context, const ServerOptions& options) {
  std::unique_ptr<AssessmentServer> server(
      new AssessmentServer(std::move(context), options));

  // Initial snapshot. With a store: recover the newest durable state and
  // resume at its committed generation without re-chasing. Without one
  // (or with an empty store): materialize once, assess fully. Constraint
  // violations (kInconsistent) and lint errors refuse startup either way
  // — a daemon must not come up serving a world it knows to be broken.
  std::shared_ptr<const storage::KbImage> image;
  std::vector<storage::WalRecord> wal_records;
  if (options.store != nullptr) {
    MDQA_ASSIGN_OR_RETURN(storage::RecoveredState rec,
                          options.store->Recover());
    server->recovery_degradations_ = std::move(rec.degradations);
    if (rec.has_checkpoint) {
      if (rec.image.meta.scenario != options.scenario) {
        return Status::FailedPrecondition(
            "serve: checkpoint was written by scenario '" +
            rec.image.meta.scenario + "', not '" + options.scenario +
            "'; refusing to resume from a foreign knowledge base");
      }
      image = std::make_shared<const storage::KbImage>(std::move(rec.image));
      wal_records = std::move(rec.wal_records);
    }
  }

  quality::Assessor assessor(&server->context_);
  std::optional<PreparedContext> prepared;
  std::optional<quality::AssessmentReport> report;
  uint64_t generation = 1;
  if (image != nullptr) {
    // Restore: swap in the persisted database, rebuild the materialized
    // instance from the image (no chase), and recompute the report off
    // the materialization (Reassess against an empty previous recomputes
    // every relation).
    MDQA_ASSIGN_OR_RETURN(Database db, storage::DatabaseFromImage(*image));
    MDQA_RETURN_IF_ERROR(server->context_.ReplaceDatabase(std::move(db)));
    MDQA_ASSIGN_OR_RETURN(
        PreparedContext restored,
        server->context_.PrepareRestored(datalog::ChaseOptions{},
                                         storage::ImageRebuilder(image)));
    quality::AssessmentReport none;
    MDQA_ASSIGN_OR_RETURN(quality::AssessmentReport rep,
                          assessor.Reassess(restored, none));
    prepared = std::move(restored);
    report = std::move(rep);
    generation = image->meta.generation;

    // Roll the WAL forward: each committed-but-not-checkpointed batch is
    // re-applied exactly as the writer thread originally did.
    for (const storage::WalRecord& wr : wal_records) {
      if (wr.target_generation <= generation) continue;
      MDQA_ASSIGN_OR_RETURN(PreparedContext next,
                            prepared->ApplyUpdate(wr.batch));
      MDQA_ASSIGN_OR_RETURN(quality::AssessmentReport rep2,
                            assessor.Reassess(next, *report));
      prepared = std::move(next);
      report = std::move(rep2);
      generation = wr.target_generation;
    }
  } else {
    MDQA_ASSIGN_OR_RETURN(PreparedContext fresh, server->context_.Prepare());
    MDQA_ASSIGN_OR_RETURN(quality::AssessmentReport rep, assessor.Assess());
    prepared = std::move(fresh);
    report = std::move(rep);
  }

  if (options.store != nullptr) {
    // Collapse recovery into a fresh checkpoint: replayed WAL records are
    // folded in and the log rotates, so the next restart replays nothing;
    // a fresh store gets its durable base (AppendBatch needs an open WAL).
    MDQA_ASSIGN_OR_RETURN(
        storage::KbImage captured,
        storage::CaptureSessionImage(*prepared, generation, generation - 1,
                                     options.scenario));
    MDQA_RETURN_IF_ERROR(options.store->WriteCheckpoint(captured));
  }

  server->base_generation_ = generation;
  auto snap = std::make_shared<Snapshot>();
  snap->generation = generation;
  snap->session =
      std::make_shared<const PreparedContext>(std::move(*prepared));
  snap->report_json = report->ToJson();
  snap->report = std::make_shared<const quality::AssessmentReport>(
      std::move(*report));
  server->snapshot_ = std::move(snap);

  MDQA_ASSIGN_OR_RETURN(server->listener_,
                        net::Listener::Bind(options.port));

  const int workers = std::max(1, options.worker_threads);
  server->slots_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    server->slots_.push_back(std::make_unique<RequestSlot>());
  }
  AssessmentServer* raw = server.get();
  server->accept_thread_ = std::thread([raw] { raw->AcceptLoop(); });
  for (int i = 0; i < workers; ++i) {
    server->workers_.emplace_back(
        [raw, i] { raw->WorkerLoop(static_cast<size_t>(i)); });
  }
  server->writer_thread_ = std::thread([raw] { raw->WriterLoop(); });
  server->watchdog_thread_ = std::thread([raw] { raw->WatchdogLoop(); });
  return server;
}

AssessmentServer::~AssessmentServer() { Shutdown(); }

void AssessmentServer::Shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  draining_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  accept_done_.store(true, std::memory_order_release);
  conn_cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_done_.store(true, std::memory_order_release);
  update_cv_.notify_all();
  if (writer_thread_.joinable()) writer_thread_.join();
  stop_watchdog_.store(true, std::memory_order_release);
  if (watchdog_thread_.joinable()) watchdog_thread_.join();

  if (options_.store != nullptr) {
    // Drain-time checkpoint: the final generation becomes the restart
    // base, so the next process resumes here without replaying the WAL.
    // Failure is recorded, never swallowed — DrainStatus reports it.
    // A null snapshot means Start failed before the first publish (this
    // runs from the destructor of the half-built server): nothing was
    // served, so there is nothing to persist.
    auto snap = Pin();
    if (snap == nullptr) return;
    auto image = storage::CaptureSessionImage(
        *snap->session, snap->generation, snap->generation - 1,
        options_.scenario);
    final_persist_status_ = image.ok()
                                ? options_.store->WriteCheckpoint(*image)
                                : image.status();
  }
}

Status AssessmentServer::DrainStatus() const {
  {
    MutexLock lock(&conn_mu_);
    if (!conn_queue_.empty()) {
      return Status::Internal("drain: connection queue not empty");
    }
  }
  {
    MutexLock lock(&update_mu_);
    if (!update_queue_.empty()) {
      return Status::Internal("drain: update queue not empty");
    }
  }
  if (in_flight_.load(std::memory_order_acquire) != 0) {
    return Status::Internal("drain: requests still in flight");
  }
  auto snap = Pin();
  const uint64_t applied =
      metrics_.updates_applied.load(std::memory_order_relaxed);
  if (snap->generation != base_generation_ + applied) {
    return Status::Internal(
        "drain: generation " + std::to_string(snap->generation) + " != " +
        std::to_string(base_generation_) + " (base) + " +
        std::to_string(applied) + " applied updates");
  }
  if (snap->report == nullptr || snap->report_json.empty()) {
    return Status::Internal("drain: no published report");
  }
  if (!final_persist_status_.ok()) {
    return Status::Internal("drain: final checkpoint failed: " +
                            final_persist_status_.ToString());
  }
  return Status::Ok();
}

Status AssessmentServer::ApplyQuotaConfig(const std::string& json_text) {
  auto cfg = JsonValue::Parse(json_text, options_.json_limits);
  if (!cfg.ok()) return cfg.status();
  if (!cfg->is_object()) {
    return Status::InvalidArgument(
        "serve: quota config must be a JSON object of tenant -> quota");
  }
  // Validate everything before applying anything: a config with one bad
  // entry must not half-apply.
  std::vector<std::pair<std::string, TenantQuota>> parsed;
  for (const auto& [tenant, spec] : cfg->Members()) {
    if (tenant.empty() || tenant.size() > 64) {
      return Status::InvalidArgument(
          "serve: quota config: tenant id must be 1..64 chars");
    }
    if (!spec.is_object()) {
      return Status::InvalidArgument("serve: quota config: entry for '" +
                                     tenant + "' must be an object");
    }
    TenantQuota quota = options_.default_quota;
    for (const auto& [key, value] : spec.Members()) {
      if (!value.is_number() || value.AsNumber() < 0) {
        return Status::InvalidArgument(
            "serve: quota config: '" + tenant + "." + key +
            "' must be a non-negative number");
      }
      const double n = value.AsNumber();
      if (key == "requests_per_sec") {
        if (n <= 0) {
          return Status::InvalidArgument(
              "serve: quota config: '" + tenant +
              ".requests_per_sec' must be positive");
        }
        quota.requests_per_sec = n;
      } else if (key == "burst") {
        if (n <= 0) {
          return Status::InvalidArgument("serve: quota config: '" + tenant +
                                         ".burst' must be positive");
        }
        quota.burst = n;
      } else if (key == "max_deadline_ms") {
        if (n < 1 || n > 3600 * 1000) {
          return Status::InvalidArgument(
              "serve: quota config: '" + tenant +
              ".max_deadline_ms' out of range [1, 3600000]");
        }
        quota.max_deadline = std::chrono::milliseconds(
            static_cast<int64_t>(n));
      } else if (key == "max_steps") {
        quota.max_steps_per_request = static_cast<uint64_t>(n);
      } else if (key == "max_facts") {
        quota.max_facts_per_request = static_cast<uint64_t>(n);
      } else {
        return Status::InvalidArgument("serve: quota config: unknown key '" +
                                       tenant + "." + key + "'");
      }
    }
    parsed.emplace_back(tenant, quota);
  }
  for (auto& [tenant, quota] : parsed) {
    admission_.SetQuota(tenant, quota);
  }
  metrics_.quota_reloads.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

std::shared_ptr<const AssessmentServer::Snapshot> AssessmentServer::Pin()
    const {
  MutexLock lock(&snapshot_mu_);
  return snapshot_;
}

void AssessmentServer::Publish(std::shared_ptr<const Snapshot> snap) {
  MutexLock lock(&snapshot_mu_);
  snapshot_ = std::move(snap);
}

uint64_t AssessmentServer::generation() const { return Pin()->generation; }

std::string AssessmentServer::CurrentReportJson() const {
  return Pin()->report_json;
}

std::shared_ptr<const quality::PreparedContext>
AssessmentServer::CurrentSession() const {
  return Pin()->session;
}

void AssessmentServer::AcceptLoop() {
  // Mutex-free fast check on conn_mu_ would be racy; size reads take the
  // lock — accepts are not the hot path, handling is.
  while (!draining()) {
    auto accepted = listener_.Accept(std::chrono::milliseconds(50));
    if (!accepted.ok()) continue;  // timeout or transient error: poll again
    metrics_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    net::Socket sock = std::move(*accepted);
    bool shed = false;
    {
      MutexLock lock(&conn_mu_);
      if (conn_queue_.size() >= options_.queue_capacity) {
        shed = true;
      } else {
        conn_queue_.push_back(std::move(sock));
      }
    }
    if (shed) {
      metrics_.shed_queue_full.fetch_add(1, std::memory_order_relaxed);
      sock.SetSendTimeout(std::chrono::milliseconds(1000));
      sock.SendAll(ShedResponse(options_.shed_retry_after_sec,
                                "serve: request queue full"));
      // close on scope exit
    } else {
      conn_cv_.notify_one();
    }
  }
  listener_.Close();
}

void AssessmentServer::WorkerLoop(size_t worker_index) {
  RequestSlot* slot = slots_[worker_index].get();
  while (true) {
    net::Socket sock;
    {
      MutexLock lock(&conn_mu_);
      while (conn_queue_.empty() &&
             !accept_done_.load(std::memory_order_acquire)) {
        conn_cv_.wait(conn_mu_);
      }
      if (conn_queue_.empty()) {
        if (accept_done_.load(std::memory_order_acquire)) return;
        continue;
      }
      sock = std::move(conn_queue_.front());
      conn_queue_.pop_front();
    }
    in_flight_.fetch_add(1, std::memory_order_acq_rel);
    HandleConnection(std::move(sock), slot);
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

namespace {

/// Status code off a serialized response ("HTTP/1.1 NNN ..."); 0 when
/// the prefix is malformed (never the case for our own serializer).
int StatusOfResponse(const std::string& response) {
  if (response.size() < 12 || response.compare(0, 9, "HTTP/1.1 ") != 0) {
    return 0;
  }
  int code = 0;
  for (size_t i = 9; i < 12; ++i) {
    char c = response[i];
    if (c < '0' || c > '9') return 0;
    code = code * 10 + (c - '0');
  }
  return code;
}

/// Wire-status → outcome label. A 200 whose body is labeled degraded
/// (partial answers under a tripped budget) logs as "degraded" — the
/// body is our own serializer's output, so the marker probe is exact.
const char* OutcomeOf(int status, const std::string& response) {
  if (status == 429) return "shed";
  if (status == 408) return "timeout";
  if (status >= 500) return "error";
  if (status >= 400) return "rejected";
  if (response.find("\"degraded\":true") != std::string::npos) {
    return "degraded";
  }
  return "ok";
}

}  // namespace

void AssessmentServer::HandleConnection(net::Socket sock, RequestSlot* slot) {
  const auto start = std::chrono::steady_clock::now();
  auto req = ReadHttpRequest(sock, options_.http_limits);
  sock.SetSendTimeout(options_.http_limits.read_timeout);
  AccessLog::Entry log_entry;
  if (options_.access_log != nullptr) {
    auto snap = Pin();
    log_entry.generation = snap->generation;
    log_entry.engine = qa::EngineToString(snap->report->engine_used);
  }
  auto finish = [&](const std::string& response, bool record_latency) {
    const auto end = std::chrono::steady_clock::now();
    const auto us = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(end - start)
            .count());
    if (record_latency) metrics_.latency.Record(us);
    if (options_.access_log == nullptr) return;
    log_entry.latency_us = us;
    log_entry.http_status = StatusOfResponse(response);
    log_entry.outcome = OutcomeOf(log_entry.http_status, response);
    options_.access_log->Record(log_entry);
  };
  if (!req.ok()) {
    log_entry.tenant = "-";
    log_entry.method = "-";
    log_entry.target = "-";
    auto resp = ResponseForReadError(req.status());
    if (resp != nullptr) {
      metrics_.rejected_malformed.fetch_add(1, std::memory_order_relaxed);
      sock.SendAll(*resp);
      finish(*resp, /*record_latency=*/false);
    }
    return;
  }
  log_entry.method = req->method;
  log_entry.target = req->target;
  if (const std::string* t = req->FindHeader("X-Mdqa-Tenant")) {
    log_entry.tenant = t->substr(0, 64);
  } else {
    log_entry.tenant = "anonymous";
  }
  metrics_.requests_parsed.fetch_add(1, std::memory_order_relaxed);
  std::string response = Dispatch(*req, slot);
  sock.SendAll(response);
  finish(response, /*record_latency=*/true);
}

std::string AssessmentServer::Dispatch(const HttpRequest& req,
                                       RequestSlot* slot) {
  if (req.method == "GET") {
    if (req.target == "/healthz") return HandleHealth();
    if (req.target == "/stats") return HandleStats();
    if (req.target == "/report") return HandleReport();
  } else if (req.method == "POST") {
    if (req.target == "/query") return HandleQuery(req, slot);
    if (req.target == "/assess") return HandleAssess(req);
    if (req.target == "/update") return HandleUpdate(req, slot);
    if (req.target == "/admin/quotas") return HandleAdminQuotas(req);
  } else {
    metrics_.rejected_malformed.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(405,
                         Status::InvalidArgument("serve: unsupported method"));
  }
  metrics_.rejected_malformed.fetch_add(1, std::memory_order_relaxed);
  return ErrorResponse(
      404, Status::NotFound("serve: no route " + req.method + " " +
                            req.target));
}

std::string AssessmentServer::HandleHealth() {
  auto snap = Pin();
  JsonWriter w;
  w.BeginObject();
  w.Key("status").String(draining() ? "draining" : "ok");
  w.Key("generation").Number(static_cast<int64_t>(snap->generation));
  w.EndObject();
  metrics_.completed_ok.fetch_add(1, std::memory_order_relaxed);
  return SerializeHttpResponse(200, w.TakeString());
}

std::string AssessmentServer::HandleStats() {
  auto snap = Pin();
  std::string body = "{\"generation\":" + std::to_string(snap->generation) +
                     ",\"tenants_seen\":" +
                     std::to_string(admission_.NumTenantsSeen()) +
                     ",\"metrics\":" + metrics_.ToJson() + "}";
  metrics_.completed_ok.fetch_add(1, std::memory_order_relaxed);
  return SerializeHttpResponse(200, body);
}

std::string AssessmentServer::HandleReport() {
  auto snap = Pin();
  const bool degraded =
      snap->report->completeness != Completeness::kComplete ||
      !snap->report->degraded.empty();
  std::string body = "{\"generation\":" + std::to_string(snap->generation) +
                     ",\"degraded\":" + (degraded ? "true" : "false") +
                     ",\"report\":" + snap->report_json +
                     ",\"generation_check\":" +
                     std::to_string(snap->generation) + "}";
  metrics_.completed_ok.fetch_add(1, std::memory_order_relaxed);
  if (degraded) {
    metrics_.degraded_responses.fetch_add(1, std::memory_order_relaxed);
  }
  return SerializeHttpResponse(200, body);
}

std::string AssessmentServer::HandleQuery(const HttpRequest& req,
                                          RequestSlot* slot) {
  auto tenant = SanitizeTenant(req);
  if (!tenant.ok()) {
    metrics_.rejected_malformed.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(400, tenant.status());
  }
  AdmissionController::Decision decision = admission_.Admit(*tenant);
  if (!decision.admitted) {
    metrics_.shed_tenant_rate.fetch_add(1, std::memory_order_relaxed);
    return ShedResponse(decision.retry_after_sec,
                        "serve: tenant rate limit exceeded");
  }

  auto body = JsonValue::Parse(req.body, options_.json_limits);
  if (!body.ok()) {
    metrics_.rejected_malformed.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(
        body.status().code() == StatusCode::kResourceExhausted ? 413 : 400,
        body.status());
  }
  const JsonValue* qtext = body->Find("query");
  if (qtext == nullptr || !qtext->is_string()) {
    metrics_.rejected_malformed.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(
        400, Status::InvalidArgument("serve: missing string field 'query'"));
  }
  const JsonValue* clean_field = body->Find("clean");
  const bool clean = clean_field == nullptr || clean_field->AsBool();

  // Deadline: client ask, clamped to the tenant's ceiling.
  std::chrono::milliseconds deadline = options_.default_deadline;
  if (const std::string* hdr = req.FindHeader("X-Mdqa-Deadline-Ms")) {
    int64_t ms = 0;
    for (char c : *hdr) {
      if (c < '0' || c > '9') { ms = -1; break; }
      ms = ms * 10 + (c - '0');
      if (ms > 3600 * 1000) break;
    }
    if (ms > 0) deadline = std::chrono::milliseconds(ms);
  }
  deadline = std::min(deadline, decision.quota.max_deadline);
  const auto overall_deadline = std::chrono::steady_clock::now() + deadline;

  auto snap = Pin();
  const PreparedContext& session = *snap->session;

  datalog::ConjunctiveQuery query;
  {
    WriterMutexLock lock(&vocab_mu_);
    session.program().vocab()->BindToCurrentThread();
    auto parsed = clean ? session.PrepareCleanQuery(qtext->AsString())
                        : session.PrepareRawQuery(qtext->AsString());
    if (!parsed.ok()) {
      metrics_.rejected_malformed.fetch_add(1, std::memory_order_relaxed);
      return ErrorResponse(400, parsed.status());
    }
    query = std::move(*parsed);
  }

  SlotGuard guard(&slot->active, &slot->hard_deadline_ns, &slot->token,
                  (overall_deadline + options_.watchdog_grace)
                      .time_since_epoch()
                      .count());

  qa::AnswerSet answers;
  int attempts = 0;
  bool degraded = false;
  for (int attempt = 0;; ++attempt) {
    ExecutionBudget budget;
    budget.SetDeadline(overall_deadline);
    budget.set_cancellation(&slot->token);
    if (options_.fault_injector != nullptr) {
      budget.set_fault_injector(options_.fault_injector);
    }
    uint64_t escalation = 1;
    for (int i = 0; i < attempt; ++i) {
      escalation *= static_cast<uint64_t>(options_.escalation_factor);
    }
    if (decision.quota.max_steps_per_request > 0) {
      budget.set_max_steps(decision.quota.max_steps_per_request * escalation);
    }
    if (decision.quota.max_facts_per_request > 0) {
      budget.set_max_facts(decision.quota.max_facts_per_request * escalation);
    }

    Result<qa::AnswerSet> r = Status::Internal("unreached");
    {
      ReaderMutexLock lock(&vocab_mu_);
      r = session.Answer(query, &budget);
    }
    ++attempts;
    if (!r.ok()) {
      // A non-truncation status (e.g. an injected kInternal simulating an
      // allocation failure) is a hard error: 500, never a silent partial.
      metrics_.internal_errors.fetch_add(1, std::memory_order_relaxed);
      return ErrorResponse(500, r.status());
    }
    answers = std::move(*r);
    if (answers.completeness == Completeness::kComplete) break;

    // Truncated: retry only when it plausibly helps — counters (or an
    // injected exhaustion) tripped while deadline remains and nobody
    // cancelled us. Deadline and cancellation trips re-fire immediately,
    // so retrying them would only burn queue time.
    const bool cancelled =
        answers.interruption.code() == StatusCode::kCancelled;
    const auto now = std::chrono::steady_clock::now();
    const bool deadline_left =
        now + options_.retry_backoff_base < overall_deadline;
    if (!cancelled && deadline_left && attempt < options_.max_retries) {
      metrics_.retries.fetch_add(1, std::memory_order_relaxed);
      auto backoff = options_.retry_backoff_base * (1 << attempt);
      auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
          overall_deadline - now);
      std::this_thread::sleep_for(std::min(backoff, remaining));
      continue;
    }
    degraded = true;
    break;
  }

  std::string response_body;
  {
    // Rendering reads the vocabulary (TermToDisplayString).
    ReaderMutexLock lock(&vocab_mu_);
    const datalog::Vocabulary& vocab = *session.program().vocab();
    JsonWriter w;
    w.BeginObject();
    w.Key("generation").Number(static_cast<int64_t>(snap->generation));
    w.Key("tenant").String(*tenant);
    w.Key("clean").Bool(clean);
    w.Key("degraded").Bool(degraded);
    w.Key("completeness")
        .String(CompletenessToString(answers.completeness));
    w.Key("interruption").String(answers.interruption.ToString());
    w.Key("attempts").Number(static_cast<int64_t>(attempts));
    w.Key("answers").BeginArray();
    for (const auto& tuple : answers.tuples) {
      w.BeginArray();
      for (const datalog::Term& t : tuple) {
        w.String(vocab.TermToDisplayString(t));
      }
      w.EndArray();
    }
    w.EndArray();
    // Re-read from the pinned snapshot after all rendering: the wire-level
    // witness that this response observed exactly one generation.
    w.Key("generation_check")
        .Number(static_cast<int64_t>(snap->generation));
    w.EndObject();
    response_body = w.TakeString();
  }
  metrics_.completed_ok.fetch_add(1, std::memory_order_relaxed);
  if (degraded) {
    metrics_.degraded_responses.fetch_add(1, std::memory_order_relaxed);
  }
  return SerializeHttpResponse(200, response_body);
}

std::string AssessmentServer::HandleAssess(const HttpRequest& req) {
  auto tenant = SanitizeTenant(req);
  if (!tenant.ok()) {
    metrics_.rejected_malformed.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(400, tenant.status());
  }
  AdmissionController::Decision decision = admission_.Admit(*tenant);
  if (!decision.admitted) {
    metrics_.shed_tenant_rate.fetch_add(1, std::memory_order_relaxed);
    return ShedResponse(decision.retry_after_sec,
                        "serve: tenant rate limit exceeded");
  }
  auto body = JsonValue::Parse(req.body.empty() ? "{}" : req.body,
                               options_.json_limits);
  if (!body.ok()) {
    metrics_.rejected_malformed.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(
        body.status().code() == StatusCode::kResourceExhausted ? 413 : 400,
        body.status());
  }

  auto snap = Pin();
  const JsonValue* relation = body->Find("relation");
  if (relation == nullptr) return HandleReport();

  const std::string& name = relation->AsString();
  const quality::AssessmentReport& report = *snap->report;
  for (const quality::QualityMeasures& m : report.per_relation) {
    if (m.relation != name) continue;
    std::string out =
        "{\"generation\":" + std::to_string(snap->generation) +
        ",\"degraded\":false,\"measures\":" + m.ToJson() +
        ",\"generation_check\":" + std::to_string(snap->generation) + "}";
    metrics_.completed_ok.fetch_add(1, std::memory_order_relaxed);
    return SerializeHttpResponse(200, out);
  }
  for (const quality::RelationFailure& f : report.degraded) {
    if (f.relation != name) continue;
    JsonWriter w;
    w.BeginObject();
    w.Key("generation").Number(static_cast<int64_t>(snap->generation));
    w.Key("degraded").Bool(true);
    w.Key("status").String(f.status.ToString());
    w.Key("attempts").Number(static_cast<int64_t>(f.attempts));
    w.Key("generation_check")
        .Number(static_cast<int64_t>(snap->generation));
    w.EndObject();
    metrics_.completed_ok.fetch_add(1, std::memory_order_relaxed);
    metrics_.degraded_responses.fetch_add(1, std::memory_order_relaxed);
    return SerializeHttpResponse(200, w.TakeString());
  }
  metrics_.rejected_malformed.fetch_add(1, std::memory_order_relaxed);
  return ErrorResponse(
      404, Status::NotFound("serve: no assessed relation '" + name + "'"));
}

std::string AssessmentServer::HandleUpdate(const HttpRequest& req,
                                           RequestSlot* slot) {
  (void)slot;  // updates are bounded by the writer queue + wait deadline
  auto tenant = SanitizeTenant(req);
  if (!tenant.ok()) {
    metrics_.rejected_malformed.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(400, tenant.status());
  }
  AdmissionController::Decision decision = admission_.Admit(*tenant);
  if (!decision.admitted) {
    metrics_.shed_tenant_rate.fetch_add(1, std::memory_order_relaxed);
    return ShedResponse(decision.retry_after_sec,
                        "serve: tenant rate limit exceeded");
  }

  auto body = JsonValue::Parse(req.body, options_.json_limits);
  if (!body.ok()) {
    metrics_.rejected_malformed.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(
        body.status().code() == StatusCode::kResourceExhausted ? 413 : 400,
        body.status());
  }
  const JsonValue* relation = body->Find("relation");
  if (relation == nullptr || !relation->is_string()) {
    metrics_.rejected_malformed.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(400, Status::InvalidArgument(
                                  "serve: missing string field 'relation'"));
  }

  auto snap = Pin();
  auto rel = snap->session->database().GetRelation(relation->AsString());
  if (!rel.ok()) {
    metrics_.rejected_malformed.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(404, rel.status());
  }
  const size_t arity = (*rel)->arity();

  RelationDelta delta;
  delta.relation = relation->AsString();
  for (const char* field : {"insert", "delete"}) {
    const JsonValue* rows = body->Find(field);
    if (rows == nullptr) continue;
    if (!rows->is_array()) {
      metrics_.rejected_malformed.fetch_add(1, std::memory_order_relaxed);
      return ErrorResponse(400, Status::InvalidArgument(
                                    std::string("serve: '") + field +
                                    "' must be an array of rows"));
    }
    for (const JsonValue& row : rows->Items()) {
      auto tuple = RowFromJson(row, arity);
      if (!tuple.ok()) {
        metrics_.rejected_malformed.fetch_add(1, std::memory_order_relaxed);
        return ErrorResponse(400, tuple.status());
      }
      if (field[0] == 'i') {
        delta.insert_rows.push_back(std::move(*tuple));
      } else {
        delta.delete_rows.push_back(std::move(*tuple));
      }
    }
  }
  if (delta.insert_rows.empty() && delta.delete_rows.empty()) {
    metrics_.rejected_malformed.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(
        400, Status::InvalidArgument("serve: empty update batch"));
  }

  const auto overall_deadline =
      std::chrono::steady_clock::now() +
      std::min(options_.default_deadline, decision.quota.max_deadline);

  std::future<Result<uint64_t>> done;
  {
    MutexLock lock(&update_mu_);
    if (draining()) {
      return ErrorResponse(
          503, Status::FailedPrecondition("serve: draining, not accepting "
                                          "updates"));
    }
    if (update_queue_.size() >= options_.update_queue_capacity) {
      metrics_.shed_queue_full.fetch_add(1, std::memory_order_relaxed);
      return ShedResponse(options_.shed_retry_after_sec,
                          "serve: update queue full");
    }
    UpdateJob job;
    job.batch.deltas.push_back(std::move(delta));
    done = job.done.get_future();
    update_queue_.push_back(std::move(job));
  }
  update_cv_.notify_one();

  if (done.wait_until(overall_deadline) != std::future_status::ready) {
    // The batch stays queued and WILL apply (FIFO); the client just
    // stopped waiting. Labeled as pending, never silently dropped.
    JsonWriter w;
    w.BeginObject();
    w.Key("applied").String("pending");
    w.Key("generation_min")
        .Number(static_cast<int64_t>(snap->generation));
    w.EndObject();
    metrics_.completed_ok.fetch_add(1, std::memory_order_relaxed);
    return SerializeHttpResponse(202, w.TakeString());
  }
  Result<uint64_t> applied = done.get();
  if (!applied.ok()) {
    const Status& s = applied.status();
    int code = 500;
    if (s.code() == StatusCode::kNotFound) code = 404;
    if (s.code() == StatusCode::kInvalidArgument) code = 400;
    if (s.code() == StatusCode::kInconsistent) code = 409;
    if (code == 500) {
      metrics_.internal_errors.fetch_add(1, std::memory_order_relaxed);
    } else {
      metrics_.rejected_malformed.fetch_add(1, std::memory_order_relaxed);
    }
    return ErrorResponse(code, s);
  }
  JsonWriter w;
  w.BeginObject();
  w.Key("applied").Bool(true);
  w.Key("generation").Number(static_cast<int64_t>(*applied));
  w.EndObject();
  metrics_.completed_ok.fetch_add(1, std::memory_order_relaxed);
  return SerializeHttpResponse(200, w.TakeString());
}

std::string AssessmentServer::HandleAdminQuotas(const HttpRequest& req) {
  Status applied = ApplyQuotaConfig(req.body);
  if (!applied.ok()) {
    metrics_.rejected_malformed.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(400, applied);
  }
  JsonWriter w;
  w.BeginObject();
  w.Key("applied").Bool(true);
  w.EndObject();
  metrics_.completed_ok.fetch_add(1, std::memory_order_relaxed);
  return SerializeHttpResponse(200, w.TakeString());
}

void AssessmentServer::WriterLoop() {
  while (true) {
    UpdateJob job;
    {
      MutexLock lock(&update_mu_);
      while (update_queue_.empty() &&
             !workers_done_.load(std::memory_order_acquire)) {
        update_cv_.wait(update_mu_);
      }
      if (update_queue_.empty()) {
        if (workers_done_.load(std::memory_order_acquire)) return;
        continue;
      }
      job = std::move(update_queue_.front());
      update_queue_.pop_front();
    }

    auto snap = Pin();
    Result<uint64_t> outcome = Status::Internal("unreached");
    {
      // Update application mutates the shared vocabulary (new constants,
      // fresh nulls): exclusive access, deliberately handed to this
      // thread. Readers keep serving the old snapshot meanwhile — only
      // parse/render waits.
      WriterMutexLock lock(&vocab_mu_);
      snap->session->program().vocab()->BindToCurrentThread();
      auto next = snap->session->ApplyUpdate(job.batch);
      if (!next.ok()) {
        outcome = next.status();
      } else {
        quality::Assessor assessor(&context_);
        auto report = assessor.Reassess(*next, *snap->report);
        // The WAL append (fsync) is the commit point: a batch that cannot
        // be made durable fails the request and never publishes — a
        // client ack must survive a crash.
        Status logged =
            report.ok() && options_.store != nullptr
                ? options_.store->AppendBatch(job.batch, snap->generation + 1)
                : Status::Ok();
        if (report.ok() && options_.store != nullptr && logged.ok()) {
          metrics_.wal_appends.fetch_add(1, std::memory_order_relaxed);
        }
        if (!report.ok()) {
          outcome = report.status();
        } else if (!logged.ok()) {
          outcome = logged;
        } else {
          const bool fallback = next->chase_stats().extend_fallback;
          auto ns = std::make_shared<Snapshot>();
          ns->generation = snap->generation + 1;
          ns->session =
              std::make_shared<const PreparedContext>(std::move(*next));
          ns->report_json = report->ToJson();
          ns->report = std::make_shared<const quality::AssessmentReport>(
              std::move(*report));
          const uint64_t gen = ns->generation;
          Publish(std::move(ns));
          metrics_.updates_applied.fetch_add(1, std::memory_order_relaxed);
          if (fallback) {
            metrics_.update_fallbacks.fetch_add(1,
                                                std::memory_order_relaxed);
          }
          outcome = gen;
        }
      }
    }
    job.done.set_value(std::move(outcome));
  }
}

void AssessmentServer::WatchdogLoop() {
  while (!stop_watchdog_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(options_.watchdog_period);
    const int64_t now_ns = NowNs();
    for (const auto& slot : slots_) {
      if (!slot->active.load(std::memory_order_acquire)) continue;
      const int64_t deadline_ns =
          slot->hard_deadline_ns.load(std::memory_order_relaxed);
      if (deadline_ns != 0 && now_ns > deadline_ns) {
        slot->token.Cancel();
        metrics_.watchdog_cancels.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
}

}  // namespace mdqa::serve
